//! End-to-end kill-drill: a real `fcds-server` process, SIGKILLed
//! mid-checkpoint, restarted against the same data dir. Sized down from
//! the bench-gate drill so it fits a test run; the contracts checked
//! are the same ones `bench_gate` enforces on `BENCH_serve.json`.

use fcds_load::{find_server_bin, run_crash_drill, CrashDrillConfig};
use std::time::Duration;

#[test]
fn kill_drill_recovers_every_stream_and_rejects_corruption() {
    let Some(bin) = find_server_bin() else {
        eprintln!("skipping: no fcds-server binary near this test executable");
        return;
    };
    let cfg = CrashDrillConfig {
        streams: 4,
        items_per_stream: 8_000,
        snapshot_interval: Duration::from_millis(100),
        churn: Duration::from_millis(250),
        recovery_timeout: Duration::from_secs(15),
        server_bin: Some(bin),
        ..CrashDrillConfig::default()
    };
    let report = run_crash_drill(&cfg).expect("crash drill");

    assert_eq!(
        report.recovered_streams, cfg.streams,
        "every durable stream must answer after the kill"
    );
    assert!(
        report.recovery.is_some(),
        "recovery timed out ({:?})",
        cfg.recovery_timeout
    );
    // Recovered counts sit between the durable oracle and oracle+churn,
    // padded by the Θ/HLL estimator envelope.
    assert!(
        report.worst_relative_error <= 0.2,
        "worst relative error {} (per family: {:?})",
        report.worst_relative_error,
        report.family_relerr
    );
    assert_eq!(
        report.corrupt_accepted, 0,
        "a CRC-invalid record was served after restart"
    );
    assert!(
        report.quarantined >= 2,
        "both planted corruptions must be quarantined, saw {}",
        report.quarantined
    );
}
