//! Short-window runs of the multi-stream and replica-sync drills — the
//! same code paths the CI bench leg drives at full length, kept in
//! tier-1 so a regression fails fast rather than at the bench gate.

use fcds_load::{run_multistream, run_sync_drill, MultiStreamConfig, SyncConfig};
use fcds_server::frame::NackCode;
use std::time::Duration;

#[test]
fn multistream_drill_isolates_and_types_every_failure() {
    let report = run_multistream(&MultiStreamConfig {
        streams: 8,
        batch_size: 256,
        window: Duration::from_millis(600),
        ..MultiStreamConfig::default()
    })
    .expect("multistream drill");
    assert_eq!(report.streams, 8);
    assert!(report.items_acked > 0, "no traffic reached the streams");
    assert_eq!(report.untyped_failures, 0, "silent failure detected");
    assert_eq!(
        report.isolation, 1.0,
        "poisoned stream bled into its neighbours"
    );
    assert_eq!(report.streams_converged, 8);
    assert!(report.taxonomy.nacks(NackCode::UnknownStream) >= 1);
    assert!(report.taxonomy.nacks(NackCode::FamilyMismatch) >= 1);
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn sync_drill_converges_every_stream_within_tolerance() {
    let report = run_sync_drill(&SyncConfig {
        streams: 4,
        items_per_stream: 10_000,
        sync_period: Duration::from_millis(100),
        timeout: Duration::from_secs(10),
    })
    .expect("sync drill");
    assert_eq!(report.converged, report.streams);
    assert!(
        report.worst_relative_error <= 0.08,
        "worst relative error {}",
        report.worst_relative_error
    );
    assert!(report.convergence.is_some());
    assert!(report.pushes > 0, "replica pusher never delivered");
    assert_eq!(report.leaked_threads, 0);
}
