//! Short-run integration of the full scenario: an in-process
//! `fcds-server` behind the fault proxy, all five fault classes
//! injected, recovery measured. This is the CI-speed version of the
//! `fcds-load` binary — tiny windows, same code path end to end.

use fcds_load::{run_scenario, FaultMode, LoadConfig};
use fcds_server::{serve, ServerConfig};
use std::time::Duration;

fn short_config() -> LoadConfig {
    LoadConfig {
        writers: 2,
        queriers: 1,
        batch_size: 256,
        rate_items_per_s: 0,
        baseline: Duration::from_millis(400),
        fault_hold: Duration::from_millis(120),
        recovery_timeout: Duration::from_secs(5),
    }
}

#[test]
fn scenario_survives_every_fault_class_with_typed_errors_only() {
    let handle = serve(ServerConfig::default()).unwrap();
    let report = run_scenario(handle.local_addr(), &short_config()).unwrap();

    // Every fault class ran, and the server answered a clean request
    // after each one.
    assert_eq!(report.phases.len(), FaultMode::ALL.len());
    for phase in &report.phases {
        assert!(
            phase.survived,
            "server must survive fault class {:?}",
            phase.mode
        );
    }

    // The baseline window made real progress and measured latencies.
    assert!(report.items_acked > 0, "baseline must ack items");
    assert!(report.ingest_items_per_s > 0.0);
    assert!(report.ingest_latency.count() > 0);
    assert!(report.query_latency.count() > 0);

    // The silent-drop detector: every failed request carried a typed
    // outcome (NACK code or transport error) — nothing vanished.
    assert_eq!(
        report.untyped_failures, 0,
        "all failures must be typed; untyped replies mean a contract hole"
    );

    // The live estimate stays consistent with the acked set: writers
    // re-send ranges whose outcome was unknown and Θ dedups, so the
    // estimate must cover the acked distinct items (within sketch
    // error) and never balloon past what was sent.
    assert!(
        report.estimate_ratio > 0.8 && report.estimate_ratio < 1.2,
        "estimate/acked ratio {} should be near 1",
        report.estimate_ratio
    );

    // Injected faults leave typed traces. The exact mix depends on
    // timing (a severed connection may surface as an I/O error before
    // or after a frame boundary), so assert on the aggregate.
    assert!(
        report.taxonomy.total_typed() > 0,
        "five fault classes must produce at least one typed failure"
    );

    // The server itself comes out clean: a graceful drain with no
    // leaked threads and no worker panics.
    let drain = handle.shutdown();
    assert_eq!(drain.leaked_threads, 0);
    assert_eq!(drain.workers_panicked, 0);
    assert_eq!(drain.stats.conn_panics, 0);
}

#[test]
fn recovery_is_measured_after_faults_clear() {
    let handle = serve(ServerConfig::default()).unwrap();
    let report = run_scenario(handle.local_addr(), &short_config()).unwrap();

    // Recovery may legitimately take a few buckets (reconnect + breaker
    // cooldown), but within the generous timeout every class must get
    // back to ≥ 50% of baseline throughput.
    for phase in &report.phases {
        assert!(
            phase.recovery.is_some(),
            "fault class {:?} must recover within the timeout",
            phase.mode
        );
    }
    handle.shutdown();
}
