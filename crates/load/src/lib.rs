//! `fcds-load`: rate-controlled load generator and fault-injection
//! harness for `fcds-server`.
//!
//! The harness runs writer workers (batched ingest through the frame
//! protocol) and concurrent query workers (live-engine estimates)
//! against a server, recording latency histograms and a typed error
//! taxonomy. In fault mode the ingest path is routed through a
//! [`FaultProxy`] that can delay, truncate, bit-flip, or sever the
//! stream mid-frame, or disconnect outright — the fault classes a
//! long-lived TCP ingest tier actually meets — and the harness measures
//! how long the server takes to recover baseline throughput after each
//! fault clears.
//!
//! The binary emits `BENCH_serve.json` with the acceptance ratios and
//! thresholds `bench_gate` enforces (see `fcds_bench::gate`'s `SERVE_*`
//! constants).

use fcds_server::client::{Client, Reply};
use fcds_server::frame::NackCode;
use fcds_server::{serve, ServerConfig};
use fcds_sketches::wire::{LadderWireView, MgWireView, SketchFamily};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Histogram bucket layout: log2 major buckets × 16 linear minor
/// buckets, covering the full `u64` nanosecond range with ≤ 6.25%
/// relative resolution per bucket.
const HIST_MINORS: usize = 16;
const HIST_BUCKETS: usize = 64 * HIST_MINORS;

/// A latency histogram with logarithmic major buckets and 16 linear
/// minor buckets each — constant memory, no allocation on record, good
/// enough resolution for p50/p99 at any scale.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0u64; HIST_BUCKETS],
            count: 0,
            max_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < HIST_MINORS as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros() as usize;
        let minor = ((ns >> (major - 4)) & 0xF) as usize;
        major * HIST_MINORS + minor
    }

    /// Lower bound of the bucket at `idx` (the value reported for
    /// quantiles that land in it).
    fn bucket_floor(idx: usize) -> u64 {
        let major = idx / HIST_MINORS;
        let minor = (idx % HIST_MINORS) as u64;
        if major < 4 {
            // Sub-16ns values land in buckets [0, 16) directly.
            return (major * HIST_MINORS) as u64 + minor;
        }
        (1u64 << major) | (minor << (major - 4))
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The value at quantile `q` ∈ [0, 1], in nanoseconds (0 when
    /// empty). Reported as the floor of the containing bucket.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        self.max_ns
    }

    /// Maximum recorded sample, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }
}

/// Counts of every failure outcome the workers observed, keyed by the
/// protocol's own taxonomy. `other_nacks` catches codes added later
/// (the counter vector is sized for today's twelve, through
/// `UnknownStream` and `FamilyMismatch`).
#[derive(Debug, Default)]
pub struct ErrorTaxonomy {
    nack_counts: [AtomicU64; 12],
    other_nacks: AtomicU64,
    /// Transport-level failures (resets, EOF, timeouts) — typed at the
    /// I/O layer rather than the protocol layer.
    io_errors: AtomicU64,
    /// Reconnections the workers performed after a transport failure.
    reconnects: AtomicU64,
}

impl ErrorTaxonomy {
    fn nack_slot(code: NackCode) -> usize {
        (code as u16 as usize) - 1
    }

    /// Records a NACK.
    pub fn record_nack(&self, code: NackCode) {
        let slot = Self::nack_slot(code);
        match self.nack_counts.get(slot) {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => self.other_nacks.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records a transport-level failure.
    pub fn record_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a reconnect.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Count for one NACK code.
    pub fn nacks(&self, code: NackCode) -> u64 {
        self.nack_counts[Self::nack_slot(code)].load(Ordering::Relaxed)
    }

    /// Total typed failures (NACKs of any code + transport errors).
    pub fn total_typed(&self) -> u64 {
        let nacks: u64 = self
            .nack_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        nacks + self.other_nacks.load(Ordering::Relaxed) + self.io_errors.load(Ordering::Relaxed)
    }

    /// Transport-level failure count.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Reconnect count.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// `(name, count)` rows for every nonzero counter.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (i, c) in self.nack_counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                let code = NackCode::from_code((i + 1) as u16).expect("slot maps to code");
                out.push((format!("nack_{code:?}").to_lowercase(), n));
            }
        }
        let other = self.other_nacks.load(Ordering::Relaxed);
        if other > 0 {
            out.push(("nack_other".to_string(), other));
        }
        let io = self.io_errors();
        if io > 0 {
            out.push(("io_error".to_string(), io));
        }
        out
    }
}

/// The fault classes the proxy can inject on the client→server path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultMode {
    /// Pass-through.
    Off = 0,
    /// Hold each forwarded chunk for 100 ms (stalls frames mid-flight,
    /// driving the server's read deadline).
    Delay = 1,
    /// Drop the second half of each chunk (desynchronises the frame
    /// stream — the server sees garbage at the next boundary).
    Truncate = 2,
    /// Flip one bit per chunk (drives the payload checksum).
    Corrupt = 3,
    /// Forward half a chunk, then kill the connection (mid-frame
    /// disconnect).
    Sever = 4,
    /// Kill the connection before forwarding anything.
    Disconnect = 5,
}

impl FaultMode {
    /// All injectable (non-`Off`) modes, in the order the harness
    /// drills them.
    pub const ALL: [FaultMode; 5] = [
        FaultMode::Delay,
        FaultMode::Truncate,
        FaultMode::Corrupt,
        FaultMode::Sever,
        FaultMode::Disconnect,
    ];

    fn from_u8(v: u8) -> FaultMode {
        match v {
            1 => FaultMode::Delay,
            2 => FaultMode::Truncate,
            3 => FaultMode::Corrupt,
            4 => FaultMode::Sever,
            5 => FaultMode::Disconnect,
            _ => FaultMode::Off,
        }
    }

    /// Harness label for this mode.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::Off => "off",
            FaultMode::Delay => "delay",
            FaultMode::Truncate => "truncate",
            FaultMode::Corrupt => "corrupt",
            FaultMode::Sever => "sever",
            FaultMode::Disconnect => "disconnect",
        }
    }
}

/// A TCP proxy that forwards client connections to an upstream server
/// and injects the currently selected [`FaultMode`] into the
/// client→server byte stream. Server→client bytes always pass through
/// clean: the faults under test are ingest-path faults.
pub struct FaultProxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    stop: Arc<AtomicBool>,
    accept_join: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy in front of `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors.
    pub fn start(upstream: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mode = Arc::new(AtomicU8::new(FaultMode::Off as u8));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_join = {
            let mode = Arc::clone(&mode);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fault-proxy".to_string())
                .spawn(move || proxy_accept_loop(listener, upstream, &mode, &stop))
                .expect("spawn proxy")
        };
        Ok(FaultProxy {
            addr,
            mode,
            stop,
            accept_join: Some(accept_join),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Selects the fault injected into subsequent traffic.
    pub fn set_mode(&self, mode: FaultMode) {
        self.mode.store(mode as u8, Ordering::Release);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
    }
}

fn proxy_accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    mode: &Arc<AtomicU8>,
    stop: &Arc<AtomicBool>,
) {
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                pumps.retain(|j| !j.is_finished());
                let mode_c2s = Arc::clone(mode);
                let stop_c2s = Arc::clone(stop);
                pumps.push(
                    std::thread::Builder::new()
                        .name("proxy-c2s".to_string())
                        .spawn(move || pump_with_faults(client, server, &mode_c2s, &stop_c2s))
                        .expect("spawn pump"),
                );
                let stop_s2c = Arc::clone(stop);
                pumps.push(
                    std::thread::Builder::new()
                        .name("proxy-s2c".to_string())
                        .spawn(move || pump_clean(server2, client2, &stop_s2c))
                        .expect("spawn pump"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for j in pumps {
        let _ = j.join();
    }
}

/// Client→server pump, applying the current fault mode chunk by chunk.
fn pump_with_faults(mut from: TcpStream, mut to: TcpStream, mode: &AtomicU8, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        match FaultMode::from_u8(mode.load(Ordering::Acquire)) {
            FaultMode::Off => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            FaultMode::Delay => {
                std::thread::sleep(Duration::from_millis(100));
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            FaultMode::Truncate => {
                // Drop the tail; later bytes arrive misaligned, so the
                // server sees a desynchronised stream.
                if to.write_all(&buf[..n.div_ceil(2)]).is_err() {
                    return;
                }
            }
            FaultMode::Corrupt => {
                let mut corrupted = buf[..n].to_vec();
                // Deterministically flip one bit past the header so the
                // checksum (not the magic) catches it.
                let idx = if n > 20 { 20 } else { n - 1 };
                corrupted[idx] ^= 0x10;
                if to.write_all(&corrupted).is_err() {
                    return;
                }
            }
            FaultMode::Sever => {
                let _ = to.write_all(&buf[..n.div_ceil(2)]);
                return; // drops both ends of this connection
            }
            FaultMode::Disconnect => {
                return;
            }
        }
    }
}

/// Server→client pump: always clean.
fn pump_clean(mut from: TcpStream, mut to: TcpStream, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Ingest writer workers (each its own connection through the
    /// proxy).
    pub writers: usize,
    /// Concurrent query workers (connected directly to the server).
    pub queriers: usize,
    /// Items per ingest batch.
    pub batch_size: usize,
    /// Target aggregate ingest rate in items/s; 0 = unthrottled.
    pub rate_items_per_s: u64,
    /// Baseline measurement window.
    pub baseline: Duration,
    /// How long each fault stays injected.
    pub fault_hold: Duration,
    /// Maximum time to wait for post-fault recovery.
    pub recovery_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            writers: 2,
            queriers: 1,
            batch_size: 512,
            rate_items_per_s: 0,
            baseline: Duration::from_millis(1500),
            fault_hold: Duration::from_millis(300),
            recovery_timeout: Duration::from_secs(5),
        }
    }
}

/// Width of one throughput sample bucket.
pub const SAMPLE_BUCKET: Duration = Duration::from_millis(50);

/// Outcome of one fault-injection phase.
#[derive(Debug, Clone)]
pub struct FaultPhase {
    /// The injected fault class.
    pub mode: FaultMode,
    /// Time from clearing the fault to the first 50 ms bucket at ≥ 50%
    /// of baseline throughput (`None` = never recovered in time).
    pub recovery: Option<Duration>,
    /// Whether the server answered a clean request after the phase.
    pub survived: bool,
}

/// Everything one scenario run measured.
pub struct ScenarioReport {
    /// Baseline ingest throughput, items/s.
    pub ingest_items_per_s: f64,
    /// Baseline batch-ACK round-trip latency.
    pub ingest_latency: LatencyHistogram,
    /// Concurrent query latency (live-engine estimates during the
    /// baseline window).
    pub query_latency: LatencyHistogram,
    /// The error taxonomy across the whole run.
    pub taxonomy: ErrorTaxonomy,
    /// One entry per injected fault class.
    pub phases: Vec<FaultPhase>,
    /// Total items ACKed across the run.
    pub items_acked: u64,
    /// Requests that failed without any typed signal (must be 0; this
    /// is the silent-drop detector).
    pub untyped_failures: u64,
    /// Final live-engine estimate over distinct items acked.
    pub estimate_ratio: f64,
}

struct WriterShared {
    stop: AtomicBool,
    items_acked: AtomicU64,
    batches_acked: AtomicU64,
    untyped_failures: AtomicU64,
    taxonomy: ErrorTaxonomy,
    ingest_hist: Mutex<LatencyHistogram>,
    query_hist: Mutex<LatencyHistogram>,
}

fn writer_loop(
    shared: &WriterShared,
    proxy_addr: SocketAddr,
    writer_index: usize,
    cfg: &LoadConfig,
) {
    let mut next_item: u64 = (writer_index as u64) << 40;
    let mut client: Option<Client> = None;
    let per_writer_rate = if cfg.rate_items_per_s == 0 {
        0
    } else {
        (cfg.rate_items_per_s / cfg.writers as u64).max(1)
    };
    let mut window_start = Instant::now();
    let mut window_items = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        // Rate control: simple windowed pacing, good to a few percent.
        if per_writer_rate > 0 {
            let elapsed = window_start.elapsed().as_secs_f64();
            if elapsed >= 1.0 {
                window_start = Instant::now();
                window_items = 0;
            } else if window_items >= (per_writer_rate as f64 * elapsed.max(0.01)) as u64 {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
        }
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(proxy_addr, Duration::from_secs(2)) {
                Ok(c) => {
                    shared.taxonomy.record_reconnect();
                    client.insert(c)
                }
                Err(_) => {
                    shared.taxonomy.record_io_error();
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let batch: Vec<u64> = (next_item..next_item + cfg.batch_size as u64).collect();
        let sent = Instant::now();
        match c.ingest(&batch) {
            Ok(Reply::Ack { .. }) => {
                next_item += cfg.batch_size as u64;
                window_items += cfg.batch_size as u64;
                shared
                    .items_acked
                    .fetch_add(cfg.batch_size as u64, Ordering::Relaxed);
                shared.batches_acked.fetch_add(1, Ordering::Relaxed);
                shared
                    .ingest_hist
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(sent.elapsed());
            }
            Ok(Reply::Nack { code, .. }) => {
                // Typed rejection: the batch was shed, not lost
                // silently. Back off, then re-send the same range.
                shared.taxonomy.record_nack(code);
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(_) => {
                shared.untyped_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Transport failure: typed at the I/O layer. The batch
                // outcome is unknown, so re-send the same range — Θ
                // dedups, which is exactly why the protocol can retry
                // without a dedup layer.
                shared.taxonomy.record_io_error();
                client = None;
            }
        }
    }
}

fn query_loop(shared: &WriterShared, server_addr: SocketAddr) {
    let mut client: Option<Client> = None;
    while !shared.stop.load(Ordering::Acquire) {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(server_addr, Duration::from_secs(2)) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    shared.taxonomy.record_io_error();
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let sent = Instant::now();
        match c.query_estimate(0) {
            Ok(Reply::Estimate { .. }) => {
                shared
                    .query_hist
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(sent.elapsed());
            }
            Ok(Reply::Nack { code, .. }) => shared.taxonomy.record_nack(code),
            Ok(_) => {
                shared.untyped_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.taxonomy.record_io_error();
                client = None;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs the full scenario — baseline, then every fault class with
/// recovery measurement — against the server at `server_addr`, routing
/// ingest through a fresh [`FaultProxy`].
///
/// # Errors
///
/// Propagates proxy bind errors.
pub fn run_scenario(server_addr: SocketAddr, cfg: &LoadConfig) -> std::io::Result<ScenarioReport> {
    let proxy = FaultProxy::start(server_addr)?;
    let proxy_addr = proxy.local_addr();
    let shared = Arc::new(WriterShared {
        stop: AtomicBool::new(false),
        items_acked: AtomicU64::new(0),
        batches_acked: AtomicU64::new(0),
        untyped_failures: AtomicU64::new(0),
        taxonomy: ErrorTaxonomy::default(),
        ingest_hist: Mutex::new(LatencyHistogram::new()),
        query_hist: Mutex::new(LatencyHistogram::new()),
    });

    let mut joins = Vec::new();
    for w in 0..cfg.writers {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("load-writer-{w}"))
                .spawn(move || writer_loop(&shared, proxy_addr, w, &cfg))
                .expect("spawn writer"),
        );
    }
    for q in 0..cfg.queriers {
        let shared = Arc::clone(&shared);
        joins.push(
            std::thread::Builder::new()
                .name(format!("load-query-{q}"))
                .spawn(move || query_loop(&shared, server_addr))
                .expect("spawn querier"),
        );
    }

    // Phase 1: baseline.
    let baseline_start_items = shared.items_acked.load(Ordering::Relaxed);
    let baseline_started = Instant::now();
    std::thread::sleep(cfg.baseline);
    let baseline_elapsed = baseline_started.elapsed();
    let baseline_items = shared.items_acked.load(Ordering::Relaxed) - baseline_start_items;
    let ingest_items_per_s = baseline_items as f64 / baseline_elapsed.as_secs_f64();
    let baseline_bucket_items = ingest_items_per_s * SAMPLE_BUCKET.as_secs_f64();

    // Phase 2: fault classes, one at a time, with recovery measurement.
    let mut phases = Vec::new();
    for mode in FaultMode::ALL {
        proxy.set_mode(mode);
        std::thread::sleep(cfg.fault_hold);
        proxy.set_mode(FaultMode::Off);
        let cleared = Instant::now();

        // Recovery: first 50 ms bucket back at ≥ 50% of baseline rate.
        let mut recovery = None;
        let mut last = shared.items_acked.load(Ordering::Relaxed);
        while cleared.elapsed() < cfg.recovery_timeout {
            std::thread::sleep(SAMPLE_BUCKET);
            let now = shared.items_acked.load(Ordering::Relaxed);
            if (now - last) as f64 >= baseline_bucket_items * 0.5 {
                recovery = Some(cleared.elapsed());
                break;
            }
            last = now;
        }

        // Survival probe: a clean request on a fresh direct connection.
        let survived = Client::connect(server_addr, Duration::from_secs(2))
            .and_then(|mut c| c.ping())
            .map(|r| matches!(r, Reply::Pong { .. }))
            .unwrap_or(false);
        phases.push(FaultPhase {
            mode,
            recovery,
            survived,
        });
    }

    shared.stop.store(true, Ordering::Release);
    for j in joins {
        let _ = j.join();
    }
    drop(proxy);

    // Final consistency probe: the live estimate should account for the
    // acked distinct items (writers re-send on unknown outcomes, and Θ
    // dedups, so the acked distinct set is a subset of what was sent).
    let items_acked = shared.items_acked.load(Ordering::Relaxed);
    let estimate = Client::connect(server_addr, Duration::from_secs(2))
        .and_then(|mut c| c.query_estimate(0))
        .ok()
        .and_then(|r| match r {
            Reply::Estimate { value, .. } => Some(value),
            _ => None,
        })
        .unwrap_or(0.0);
    let estimate_ratio = if items_acked == 0 {
        0.0
    } else {
        estimate / items_acked as f64
    };

    let shared = Arc::try_unwrap(shared).ok().expect("workers joined");
    Ok(ScenarioReport {
        ingest_items_per_s,
        ingest_latency: shared
            .ingest_hist
            .into_inner()
            .unwrap_or_else(|e| e.into_inner()),
        query_latency: shared
            .query_hist
            .into_inner()
            .unwrap_or_else(|e| e.into_inner()),
        taxonomy: shared.taxonomy,
        phases,
        items_acked,
        untyped_failures: shared.untyped_failures.load(Ordering::Relaxed),
        estimate_ratio,
    })
}

/// The four wire families, in the order multi-stream drills assign
/// them to streams (stream `i` gets `FAMILIES[i % 4]`).
pub const FAMILIES: [SketchFamily; 4] = [
    SketchFamily::Theta,
    SketchFamily::Hll,
    SketchFamily::Quantiles,
    SketchFamily::Frequency,
];

/// The poison item the multi-stream drill plants (the in-process
/// server is started with `fault_panic_on` set to this value).
const POISON_ITEM: u64 = u64::MAX;

/// Multi-stream drill parameters.
#[derive(Debug, Clone)]
pub struct MultiStreamConfig {
    /// Named streams to host (round-robin across all four families;
    /// the acceptance floor is 8).
    pub streams: usize,
    /// Items per v2 ingest batch.
    pub batch_size: usize,
    /// Measurement window for the round-robin ingest/query load.
    pub window: Duration,
    /// Target aggregate ingest rate in items/s, split evenly across
    /// the per-stream writers; 0 = unthrottled. The default keeps 2×
    /// headroom over the gate floor while leaving the scheduler room
    /// for the concurrent query latency measurement (one writer thread
    /// per stream plus each stream's workers oversubscribe a small CI
    /// container when unthrottled).
    pub rate_items_per_s: u64,
}

impl Default for MultiStreamConfig {
    fn default() -> Self {
        MultiStreamConfig {
            streams: 8,
            batch_size: 512,
            window: Duration::from_millis(1500),
            rate_items_per_s: 2_000_000,
        }
    }
}

/// Everything the multi-stream drill measured.
pub struct MultiStreamReport {
    /// Streams hosted (excluding the server's default stream).
    pub streams: usize,
    /// Aggregate v2 ingest throughput across all streams, items/s.
    pub ingest_items_per_s: f64,
    /// v2 batch-ACK round-trip latency across all streams.
    pub ingest_latency: LatencyHistogram,
    /// v2 stream-addressed estimate-query latency (Θ/HLL streams).
    /// Image queries on the Quantiles/Frequency streams are exercised
    /// concurrently but not recorded here: they are bulk exports whose
    /// cost scales with stream size, not latency-path queries.
    pub query_latency: LatencyHistogram,
    /// The typed error taxonomy across the drill, including the
    /// provoked `UnknownStream` and `FamilyMismatch` NACKs and the
    /// poisoned stream's failures.
    pub taxonomy: ErrorTaxonomy,
    /// Items ACKed across all streams.
    pub items_acked: u64,
    /// Replies fitting no contract (must be 0).
    pub untyped_failures: u64,
    /// Fraction of healthy-stream requests ACKed *after* one stream was
    /// poisoned — the isolation metric; the gate requires 1.0.
    pub isolation: f64,
    /// Streams whose fanned-in count converged on their acked count
    /// (within the family's error envelope; excludes the poisoned
    /// stream).
    pub streams_converged: usize,
    /// Threads the in-process server leaked on drain (must be 0).
    pub leaked_threads: usize,
}

/// One stream's identity within a drill.
fn drill_key(prefix: &str, i: usize) -> Vec<u8> {
    format!("{prefix}-{i}").into_bytes()
}

/// The stream's observed count through its family's natural v2 query:
/// the estimate for Θ/HLL, the image's exact item count for Q/F.
/// `None` while the stream is unknown or the reply is a NACK.
fn stream_count(c: &mut Client, family: SketchFamily, key: &[u8]) -> std::io::Result<Option<f64>> {
    match family {
        SketchFamily::Theta | SketchFamily::Hll => {
            Ok(match c.query_stream_estimate(family, key)? {
                Reply::Estimate { value, .. } => Some(value),
                _ => None,
            })
        }
        SketchFamily::Quantiles => Ok(match c.query_stream_image(family, key)? {
            Reply::Image { bytes, .. } => LadderWireView::<u64>::parse(&bytes)
                .ok()
                .map(|v| v.n() as f64),
            _ => None,
        }),
        SketchFamily::Frequency => Ok(match c.query_stream_image(family, key)? {
            Reply::Image { bytes, .. } => {
                MgWireView::<u64>::parse(&bytes).ok().map(|v| v.n() as f64)
            }
            _ => None,
        }),
    }
}

fn stream_writer_loop(
    shared: &WriterShared,
    addr: SocketAddr,
    family: SketchFamily,
    key: &[u8],
    batch_size: usize,
    rate_items_per_s: u64,
    stream_acked: &AtomicU64,
) {
    let mut next_item: u64 = 0;
    let mut client: Option<Client> = None;
    let mut window_start = Instant::now();
    let mut window_items = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        // Same windowed pacing as the single-stream writer loop.
        if rate_items_per_s > 0 {
            let elapsed = window_start.elapsed().as_secs_f64();
            if elapsed >= 1.0 {
                window_start = Instant::now();
                window_items = 0;
            } else if window_items >= (rate_items_per_s as f64 * elapsed.max(0.01)) as u64 {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
        }
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr, Duration::from_secs(2)) {
                Ok(c) => {
                    shared.taxonomy.record_reconnect();
                    client.insert(c)
                }
                Err(_) => {
                    shared.taxonomy.record_io_error();
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let batch: Vec<u64> = (next_item..next_item + batch_size as u64).collect();
        let sent = Instant::now();
        match c.ingest_stream(family, key, &batch) {
            Ok(Reply::Ack { .. }) => {
                next_item += batch_size as u64;
                window_items += batch_size as u64;
                stream_acked.fetch_add(batch_size as u64, Ordering::Relaxed);
                shared
                    .items_acked
                    .fetch_add(batch_size as u64, Ordering::Relaxed);
                shared
                    .ingest_hist
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(sent.elapsed());
            }
            Ok(Reply::Nack { code, .. }) => {
                shared.taxonomy.record_nack(code);
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(_) => {
                shared.untyped_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.taxonomy.record_io_error();
                client = None;
            }
        }
    }
}

fn stream_query_loop(shared: &WriterShared, addr: SocketAddr, streams: usize, prefix: &str) {
    let mut client: Option<Client> = None;
    let mut i = 0usize;
    while !shared.stop.load(Ordering::Acquire) {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr, Duration::from_secs(2)) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    shared.taxonomy.record_io_error();
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let family = FAMILIES[i % 4];
        let key = drill_key(prefix, i);
        i = (i + 1) % streams;
        // Only the Θ/HLL estimate queries feed the gated latency
        // histogram — they are the latency-path operation the p99
        // threshold models. Image queries on the Quantiles/Frequency
        // streams are still issued every round to exercise their fan-in
        // path, but they are bulk exports whose size grows with the
        // stream (megabytes under this unthrottled load), not
        // fixed-cost queries.
        let measured = matches!(family, SketchFamily::Theta | SketchFamily::Hll);
        let sent = Instant::now();
        match stream_count(c, family, &key) {
            Ok(Some(_)) => {
                if measured {
                    shared
                        .query_hist
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(sent.elapsed());
                }
            }
            // NACKs (e.g. UnknownStream before the writer's first
            // batch) are typed and expected during warm-up; the writer
            // loop records its own. Skip the latency sample.
            Ok(None) => {}
            Err(_) => {
                shared.taxonomy.record_io_error();
                client = None;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs the multi-stream drill: an in-process server hosts
/// `cfg.streams` named streams round-robined across all four families,
/// one writer connection per stream plus a round-robin querier, for
/// `cfg.window`. Afterwards the drill provokes the stream-addressed
/// NACKs (`UnknownStream`, `FamilyMismatch`), poisons the last
/// stream's single worker, and measures isolation: the fraction of
/// healthy-stream requests still ACKed while the poisoned stream is
/// dead.
///
/// # Errors
///
/// Propagates server-start and probe-connection I/O errors.
///
/// # Panics
///
/// Panics if a drill worker thread panics.
pub fn run_multistream(cfg: &MultiStreamConfig) -> std::io::Result<MultiStreamReport> {
    let streams = cfg.streams.max(1);
    let server = serve(ServerConfig {
        fault_panic_on: Some(POISON_ITEM),
        stream_workers: 1,
        max_streams: (streams + 8).max(64),
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr();

    let shared = Arc::new(WriterShared {
        stop: AtomicBool::new(false),
        items_acked: AtomicU64::new(0),
        batches_acked: AtomicU64::new(0),
        untyped_failures: AtomicU64::new(0),
        taxonomy: ErrorTaxonomy::default(),
        ingest_hist: Mutex::new(LatencyHistogram::new()),
        query_hist: Mutex::new(LatencyHistogram::new()),
    });
    let per_stream_acked: Arc<Vec<AtomicU64>> =
        Arc::new((0..streams).map(|_| AtomicU64::new(0)).collect());

    let mut joins = Vec::new();
    for i in 0..streams {
        let shared = Arc::clone(&shared);
        let acked = Arc::clone(&per_stream_acked);
        let batch_size = cfg.batch_size;
        let per_writer_rate = if cfg.rate_items_per_s == 0 {
            0
        } else {
            (cfg.rate_items_per_s / streams as u64).max(1)
        };
        joins.push(
            std::thread::Builder::new()
                .name(format!("mstream-writer-{i}"))
                .spawn(move || {
                    stream_writer_loop(
                        &shared,
                        addr,
                        FAMILIES[i % 4],
                        &drill_key("load", i),
                        batch_size,
                        per_writer_rate,
                        &acked[i],
                    );
                })
                .expect("spawn stream writer"),
        );
    }
    {
        let shared = Arc::clone(&shared);
        joins.push(
            std::thread::Builder::new()
                .name("mstream-query".to_string())
                .spawn(move || stream_query_loop(&shared, addr, streams, "load"))
                .expect("spawn stream querier"),
        );
    }

    let started = Instant::now();
    std::thread::sleep(cfg.window);
    shared.stop.store(true, Ordering::Release);
    for j in joins {
        j.join().expect("drill worker panicked");
    }
    let elapsed = started.elapsed();
    let items_acked = shared.items_acked.load(Ordering::Relaxed);
    let ingest_items_per_s = items_acked as f64 / elapsed.as_secs_f64();

    let mut probe = Client::connect(addr, Duration::from_secs(2))?;

    // Provoke the stream-addressed NACKs so typed coverage includes the
    // new taxonomy rows. A query on an absent key must not create it;
    // re-declaring stream 0 (Θ) as HLL must be refused.
    match probe.query_stream_estimate(SketchFamily::Theta, b"load-missing")? {
        Reply::Nack { code, .. } if code == NackCode::UnknownStream => {
            shared.taxonomy.record_nack(code);
        }
        other => panic!("query of absent stream: {other:?}"),
    }
    match probe.ingest_stream(SketchFamily::Hll, &drill_key("load", 0), &[1])? {
        Reply::Nack { code, .. } if code == NackCode::FamilyMismatch => {
            shared.taxonomy.record_nack(code);
        }
        other => panic!("family re-declaration: {other:?}"),
    }

    // Convergence: each stream's fanned-in count vs. its acked count.
    let mut streams_converged = 0;
    for i in 0..streams {
        let acked = per_stream_acked[i].load(Ordering::Relaxed) as f64;
        if acked == 0.0 {
            continue;
        }
        let mut ok = false;
        for _ in 0..100 {
            if let Some(got) = stream_count(&mut probe, FAMILIES[i % 4], &drill_key("load", i))? {
                if (got - acked).abs() / acked <= 0.1 {
                    ok = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if ok {
            streams_converged += 1;
        }
    }

    // Poison the last stream (single worker dies on the planted item),
    // wait for its ingest path to fail typed, then measure isolation:
    // every other stream must still ACK everything.
    let victim = streams - 1;
    let victim_key = drill_key("load", victim);
    let _ = probe.ingest_stream(FAMILIES[victim % 4], &victim_key, &[POISON_ITEM])?;
    let mut victim_dead = false;
    for _ in 0..200 {
        match probe.ingest_stream(FAMILIES[victim % 4], &victim_key, &[1, 2, 3])? {
            Reply::Nack { code, .. } => {
                shared.taxonomy.record_nack(code);
                victim_dead = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let (mut healthy_attempts, mut healthy_acks) = (0u64, 0u64);
    if streams > 1 {
        for i in 0..victim {
            for _ in 0..10 {
                healthy_attempts += 1;
                match probe.ingest_stream(FAMILIES[i % 4], &drill_key("load", i), &[7])? {
                    Reply::Ack { .. } => healthy_acks += 1,
                    Reply::Nack { code, .. } => shared.taxonomy.record_nack(code),
                    _ => {
                        shared.untyped_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    let isolation = if !victim_dead {
        // The poison never landed (e.g. zero-length window): isolation
        // was not exercised, report it as failed rather than vacuous.
        0.0
    } else if healthy_attempts == 0 {
        1.0
    } else {
        healthy_acks as f64 / healthy_attempts as f64
    };

    drop(probe);
    let drain = server.shutdown();
    let shared = Arc::try_unwrap(shared).ok().expect("workers joined");
    Ok(MultiStreamReport {
        streams,
        ingest_items_per_s,
        ingest_latency: shared
            .ingest_hist
            .into_inner()
            .unwrap_or_else(|e| e.into_inner()),
        query_latency: shared
            .query_hist
            .into_inner()
            .unwrap_or_else(|e| e.into_inner()),
        taxonomy: shared.taxonomy,
        items_acked,
        untyped_failures: shared.untyped_failures.load(Ordering::Relaxed),
        isolation,
        streams_converged,
        leaked_threads: drain.leaked_threads,
    })
}

/// Replica-sync drill parameters.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Streams to replicate (round-robin families; the gate floor
    /// is 4 — one per family).
    pub streams: usize,
    /// Distinct items ingested into each stream on the source server.
    pub items_per_stream: u64,
    /// The source server's replica push period.
    pub sync_period: Duration,
    /// How long to wait for the peer to converge before giving up.
    pub timeout: Duration,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            streams: 4,
            items_per_stream: 20_000,
            sync_period: Duration::from_millis(100),
            timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of the two-server replica-sync drill.
pub struct SyncReport {
    /// Streams replicated.
    pub streams: usize,
    /// Streams whose peer-side count converged within tolerance.
    pub converged: usize,
    /// Worst peer-side relative error across converged streams (1.0
    /// for streams that never converged).
    pub worst_relative_error: f64,
    /// Time from the last source-side ACK until every stream had
    /// converged on the peer (`None` if any stream timed out).
    pub convergence: Option<Duration>,
    /// Replica pushes the source's background pusher delivered.
    pub pushes: u64,
    /// Leaked threads across both servers' drains (must be 0).
    pub leaked_threads: usize,
}

/// Runs the replica-sync drill: two in-process servers, A configured to
/// push every stream's wire image to B each `sync_period`. The drill
/// ingests `items_per_stream` distinct items into each of A's streams,
/// then polls B's stream-addressed queries until every stream's count
/// lands within the family's error envelope (8% for the probabilistic
/// Θ/HLL estimates, exact item counts for Quantiles/Frequency images).
///
/// # Errors
///
/// Propagates server-start and probe I/O errors.
///
/// # Panics
///
/// Panics if source-side ingest is NACKed (nothing contends in this
/// drill).
pub fn run_sync_drill(cfg: &SyncConfig) -> std::io::Result<SyncReport> {
    let streams = cfg.streams.max(1);
    let peer = serve(ServerConfig::default())?;
    let source = serve(ServerConfig {
        replica_peer: Some(peer.local_addr().to_string()),
        replica_interval: cfg.sync_period,
        replica_source_id: 1,
        ..ServerConfig::default()
    })?;

    let mut ca = Client::connect(source.local_addr(), Duration::from_secs(5))?;
    for i in 0..streams {
        let family = FAMILIES[i % 4];
        let key = drill_key("sync", i);
        let base = i as u64 * cfg.items_per_stream;
        let items: Vec<u64> = (base..base + cfg.items_per_stream).collect();
        for chunk in items.chunks(512) {
            match ca.ingest_stream(family, &key, chunk)? {
                Reply::Ack { .. } => {}
                other => panic!("sync drill source ingest: {other:?}"),
            }
        }
    }
    // Wait for the source's own workers to drain so the pushed images
    // carry the full stream before we start the convergence clock.
    for i in 0..streams {
        let expect = cfg.items_per_stream as f64;
        let deadline = Instant::now() + cfg.timeout;
        loop {
            if let Some(got) = stream_count(&mut ca, FAMILIES[i % 4], &drill_key("sync", i))? {
                if (got - expect).abs() / expect <= 0.08 {
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "source stream {i} never absorbed its items"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let clock_start = Instant::now();
    let mut cb = Client::connect(peer.local_addr(), Duration::from_secs(5))?;
    let mut converged = 0usize;
    let mut worst_relerr = 0.0f64;
    let mut all_converged_at = None;
    for i in 0..streams {
        let family = FAMILIES[i % 4];
        let key = drill_key("sync", i);
        let expect = cfg.items_per_stream as f64;
        let deadline = clock_start + cfg.timeout;
        let mut stream_relerr = 1.0f64;
        while Instant::now() < deadline {
            // Queries on B return UnknownStream until A's first push
            // creates the stream (create-on-first-merge).
            if let Some(got) = stream_count(&mut cb, family, &key)? {
                let relerr = (got - expect).abs() / expect;
                stream_relerr = relerr;
                if relerr <= 0.08 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if stream_relerr <= 0.08 {
            converged += 1;
            all_converged_at = Some(clock_start.elapsed());
        }
        worst_relerr = worst_relerr.max(stream_relerr);
    }

    let drain_source = source.shutdown();
    let drain_peer = peer.shutdown();
    Ok(SyncReport {
        streams,
        converged,
        worst_relative_error: worst_relerr,
        convergence: if converged == streams {
            all_converged_at
        } else {
            None
        },
        pushes: drain_source.stats.replica_pushes,
        leaked_threads: drain_source.leaked_threads + drain_peer.leaked_threads,
    })
}

/// Locates the `fcds-server` binary for the crash drill: the
/// `FCDS_SERVER_BIN` env var if set, else a sibling of the current
/// executable (covers `target/{profile}/` for the `fcds-load` binary
/// and `target/{profile}/deps/` for integration tests).
pub fn find_server_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("FCDS_SERVER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        for name in ["fcds-server", "fcds-server.exe"] {
            let cand = dir.join(name);
            if cand.is_file() {
                return Some(cand);
            }
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

/// Crash-drill parameters.
#[derive(Debug, Clone)]
pub struct CrashDrillConfig {
    /// Streams to host (round-robin families; the gate floor is 8 —
    /// two per family).
    pub streams: usize,
    /// Distinct items ingested (and verified durable) into each stream
    /// before the kill.
    pub items_per_stream: u64,
    /// The server's checkpoint period — the documented bounded-loss
    /// window.
    pub snapshot_interval: Duration,
    /// How long to keep ingesting small churn batches (the traffic
    /// inside the loss window) before the SIGKILL. Spanning several
    /// snapshot intervals makes the kill land mid-checkpoint.
    pub churn: Duration,
    /// Items per churn batch. Kept small relative to
    /// `items_per_stream` so the recovered count stays inside the
    /// documented relative-error window.
    pub churn_batch: usize,
    /// How long the restarted server gets to answer for every stream.
    pub recovery_timeout: Duration,
    /// Server binary override (`None` = [`find_server_bin`]).
    pub server_bin: Option<PathBuf>,
}

impl Default for CrashDrillConfig {
    fn default() -> Self {
        CrashDrillConfig {
            streams: 8,
            items_per_stream: 20_000,
            snapshot_interval: Duration::from_millis(150),
            churn: Duration::from_millis(450),
            churn_batch: 32,
            recovery_timeout: Duration::from_secs(10),
            server_bin: None,
        }
    }
}

/// Outcome of the kill-drill.
pub struct CrashDrillReport {
    /// Streams the drill ingested into before the kill.
    pub streams: usize,
    /// Streams answering their family's v2 query after the restart.
    pub recovered_streams: usize,
    /// Time from restarting the process until every stream answered
    /// (`None` if any stream timed out) — includes process startup and
    /// the boot-time snapshot scan.
    pub recovery: Option<Duration>,
    /// Worst per-stream relative error of the recovered count vs the
    /// pre-kill durable oracle (`items_per_stream`), across all
    /// streams. Churn ingested inside the loss window may legitimately
    /// surface, so the bound is churn fraction + the probabilistic
    /// families' estimate envelope.
    pub worst_relative_error: f64,
    /// Worst relative error per family (Θ, HLL, Quantiles, Frequency).
    pub family_relerr: [f64; 4],
    /// Whether the planted CRC-invalid record was served after restart
    /// (must be 0 — corrupt records are quarantined, never trusted).
    pub corrupt_accepted: usize,
    /// `.quarantine` files found in the data dir after restart (the
    /// drill plants two invalid records, so ≥ 2).
    pub quarantined: usize,
    /// Churn items ACKed inside the loss window (context for the
    /// relative-error bound).
    pub churn_items: u64,
    /// Typed errors met while driving the drill.
    pub taxonomy: ErrorTaxonomy,
}

/// Monotone suffix for drill data dirs, so drills in one process
/// (binary run + tests) never collide.
static CRASH_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Spawns a real `fcds-server` process on a free port with the
/// durability tier pointed at `dir`, and parses the listening address
/// off its stdout (printed only after recovery completes, so the
/// returned address is immediately queryable).
fn spawn_server_process(
    bin: &Path,
    dir: &Path,
    snapshot_interval: Duration,
) -> std::io::Result<(Child, SocketAddr)> {
    use std::io::BufRead as _;
    let mut child = Command::new(bin)
        .arg("--addr=127.0.0.1:0")
        .arg(format!("--data-dir={}", dir.display()))
        .arg(format!("--snapshot-ms={}", snapshot_interval.as_millis()))
        .arg("--fsync=interval")
        // Safety net: a drill that dies without killing its child must
        // not leave an orphan server running forever.
        .arg("--secs=120")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF: the child died before listening
        }
        if let Some(rest) = line.trim().strip_prefix("fcds-server listening on ") {
            addr = rest.parse::<SocketAddr>().ok();
            break;
        }
    }
    // Keep draining stdout so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    match addr {
        Some(a) => Ok((child, a)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other(
                "fcds-server process exited before reporting its listening address",
            ))
        }
    }
}

fn connect_retry(addr: SocketAddr, deadline: Instant) -> std::io::Result<Client> {
    loop {
        match Client::connect(addr, Duration::from_secs(5)) {
            Ok(c) => return Ok(c),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Ingests one chunk, retrying typed back-pressure NACKs (recorded in
/// the taxonomy) until acked or the deadline passes.
fn ingest_acked(
    c: &mut Client,
    taxonomy: &ErrorTaxonomy,
    family: SketchFamily,
    key: &[u8],
    chunk: &[u64],
) -> std::io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match c.ingest_stream(family, key, chunk)? {
            Reply::Ack { .. } => return Ok(()),
            Reply::Nack { code, .. } => {
                taxonomy.record_nack(code);
                if Instant::now() >= deadline {
                    return Err(std::io::Error::other(format!(
                        "drill ingest NACKed past deadline: {code:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            other => {
                return Err(std::io::Error::other(format!(
                    "unexpected ingest reply: {other:?}"
                )))
            }
        }
    }
}

/// Runs the kill-drill against a **real server process**:
///
/// 1. spawn `fcds-server` with a data dir and a short
///    `snapshot_interval`;
/// 2. ingest `items_per_stream` distinct items into each of `streams`
///    streams (round-robin across all four families) and wait until
///    every stream's on-disk snapshot provably covers that base (the
///    records are decoded with the server's own
///    [`fcds_server::recover::decode_record`] and their sequence
///    checked);
/// 3. keep ingesting small churn batches across several checkpoint
///    intervals, then SIGKILL the process mid-flight;
/// 4. plant two invalid snapshot records in the data dir (pure garbage
///    and a structurally valid record whose CRC is wrong);
/// 5. restart the server on the same dir and measure: time until every
///    stream answers, per-family relative error vs the durable oracle,
///    whether the corrupt record was served (it must NACK
///    `UnknownStream`), and how many files were quarantined.
///
/// # Errors
///
/// Propagates process-spawn and probe I/O errors; fails with a typed
/// error when the `fcds-server` binary cannot be found (build it with
/// `cargo build -p fcds-server` or set `FCDS_SERVER_BIN`).
pub fn run_crash_drill(cfg: &CrashDrillConfig) -> std::io::Result<CrashDrillReport> {
    use fcds_server::persist::{encode_record, snapshot_file_name};
    use fcds_server::recover::decode_record;

    let bin = cfg
        .server_bin
        .clone()
        .or_else(find_server_bin)
        .ok_or_else(|| {
            std::io::Error::other(
                "fcds-server binary not found; run `cargo build -p fcds-server` \
                 or set FCDS_SERVER_BIN",
            )
        })?;
    let streams = cfg.streams.max(1);
    let dir = std::env::temp_dir().join(format!(
        "fcds-crash-{}-{}",
        std::process::id(),
        CRASH_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let taxonomy = ErrorTaxonomy::default();

    // Phase 1: base ingest into a fresh server.
    let (mut child, addr) = spawn_server_process(&bin, &dir, cfg.snapshot_interval)?;
    let drill = (|| -> std::io::Result<CrashDrillReport> {
        let mut c = connect_retry(addr, Instant::now() + Duration::from_secs(5))?;
        for i in 0..streams {
            let family = FAMILIES[i % 4];
            let key = drill_key("crash", i);
            let base = i as u64 * cfg.items_per_stream;
            let items: Vec<u64> = (base..base + cfg.items_per_stream).collect();
            for chunk in items.chunks(512) {
                ingest_acked(&mut c, &taxonomy, family, &key, chunk)?;
            }
        }
        // Wait until every stream absorbed its base (worker queues can
        // lag the ACKs), then until every on-disk snapshot covers it —
        // that makes `items_per_stream` a *durable* oracle the
        // post-crash assertions may rely on.
        let absorb_deadline = Instant::now() + Duration::from_secs(30);
        for i in 0..streams {
            let expect = cfg.items_per_stream as f64;
            loop {
                if let Some(got) = stream_count(&mut c, FAMILIES[i % 4], &drill_key("crash", i))? {
                    if (got - expect).abs() / expect <= 0.08 {
                        break;
                    }
                }
                if Instant::now() >= absorb_deadline {
                    return Err(std::io::Error::other(format!(
                        "stream {i} never absorbed its base ingest"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let durable_deadline = Instant::now() + Duration::from_secs(30);
        for i in 0..streams {
            let path = dir.join(snapshot_file_name(&drill_key("crash", i)));
            loop {
                // Reads race benignly with the checkpointer's atomic
                // rename: we see the old record or the new one, and a
                // stale read just means another poll.
                let covered = std::fs::read(&path)
                    .ok()
                    .and_then(|bytes| decode_record(&bytes).ok())
                    .is_some_and(|rec| rec.seq >= cfg.items_per_stream);
                if covered {
                    break;
                }
                if Instant::now() >= durable_deadline {
                    return Err(std::io::Error::other(format!(
                        "stream {i}'s snapshot never covered its base ingest"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        // Phase 2: churn inside the loss window, then SIGKILL. The
        // churn spans several checkpoint intervals, so the kill lands
        // while snapshots are actively being rewritten.
        let mut churn_items = 0u64;
        let mut churn_next = (streams as u64) * cfg.items_per_stream;
        let churn_until = Instant::now() + cfg.churn;
        'churn: while Instant::now() < churn_until {
            for i in 0..streams {
                let family = FAMILIES[i % 4];
                let key = drill_key("crash", i);
                let batch: Vec<u64> = (churn_next..churn_next + cfg.churn_batch as u64).collect();
                churn_next += cfg.churn_batch as u64;
                ingest_acked(&mut c, &taxonomy, family, &key, &batch)?;
                churn_items += cfg.churn_batch as u64;
                if Instant::now() >= churn_until {
                    break 'churn;
                }
            }
            // Paced, not flat-out: the churn models a trickle inside
            // the loss window, and everything the last pre-kill
            // checkpoint captured legitimately surfaces in the
            // recovered counts — unthrottled loopback churn would dwarf
            // the oracle and turn the relative-error bound meaningless.
            std::thread::sleep(Duration::from_millis(10));
        }
        child.kill()?; // SIGKILL: no drain, no final checkpoint
        child.wait()?;

        // Phase 3: plant invalid records. (a) pure garbage under a
        // plausible name; (b) a structurally valid record for a key the
        // drill never ingested, with its CRC corrupted — accepting it
        // would materialise stream "crash-corrupt".
        std::fs::write(dir.join("s-00.snap"), b"definitely not a snapshot")?;
        let corrupt_key = b"crash-corrupt".to_vec();
        let donor = std::fs::read(dir.join(snapshot_file_name(&drill_key("crash", 0))))?;
        let donor_rec = decode_record(&donor)
            .map_err(|e| std::io::Error::other(format!("donor snapshot invalid: {e}")))?;
        let mut forged = encode_record(
            donor_rec.family,
            &corrupt_key,
            donor_rec.seq,
            &donor_rec.image,
        );
        forged[24] ^= 0xFF; // flip a CRC byte
        std::fs::write(dir.join(snapshot_file_name(&corrupt_key)), &forged)?;

        // Phase 4: restart on the same dir and measure recovery.
        let restart_started = Instant::now();
        let (child2, addr2) = spawn_server_process(&bin, &dir, cfg.snapshot_interval)?;
        let mut child2 = child2;
        let outcome = (|| -> std::io::Result<CrashDrillReport> {
            let recovery_deadline = restart_started + cfg.recovery_timeout;
            let mut probe = connect_retry(addr2, recovery_deadline)?;
            let mut recovered_streams = 0usize;
            let mut worst_relerr = 0.0f64;
            let mut family_relerr = [0.0f64; 4];
            for i in 0..streams {
                let family = FAMILIES[i % 4];
                let key = drill_key("crash", i);
                let expect = cfg.items_per_stream as f64;
                let mut answered = false;
                while Instant::now() < recovery_deadline {
                    if let Some(got) = stream_count(&mut probe, family, &key)? {
                        let relerr = (got - expect).abs() / expect;
                        worst_relerr = worst_relerr.max(relerr);
                        family_relerr[i % 4] = family_relerr[i % 4].max(relerr);
                        answered = true;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                if answered {
                    recovered_streams += 1;
                } else {
                    worst_relerr = 1.0;
                    family_relerr[i % 4] = 1.0;
                }
            }
            let recovery = (recovered_streams == streams).then(|| restart_started.elapsed());

            // The forged record must have been quarantined, never
            // served: its stream may not exist.
            let corrupt_accepted =
                match probe.query_stream_estimate(SketchFamily::Theta, &corrupt_key)? {
                    Reply::Nack {
                        code: NackCode::UnknownStream,
                        ..
                    } => 0,
                    _ => 1,
                };
            let quarantined = std::fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .ends_with(fcds_server::persist::QUARANTINE_SUFFIX)
                })
                .count();

            let _ = probe.request_shutdown();
            Ok(CrashDrillReport {
                streams,
                recovered_streams,
                recovery,
                worst_relative_error: worst_relerr,
                family_relerr,
                corrupt_accepted,
                quarantined,
                churn_items,
                taxonomy: ErrorTaxonomy::default(), // replaced by caller below
            })
        })();
        // Always reap the restarted process, drill outcome or not.
        let drain_deadline = Instant::now() + Duration::from_secs(15);
        loop {
            match child2.try_wait()? {
                Some(_) => break,
                None if Instant::now() >= drain_deadline => {
                    let _ = child2.kill();
                    let _ = child2.wait();
                    break;
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        outcome
    })();
    // Never leave the phase-1 process running on an early error.
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
    drill.map(|mut report| {
        report.taxonomy = taxonomy;
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Bucket resolution is 1/16: accept ±10%.
        assert!(
            (450_000..=550_000).contains(&p50),
            "p50 {p50} should be near 500µs"
        );
        assert!(
            (900_000..=1_050_000).contains(&p99),
            "p99 {p99} should be near 990µs"
        );
        assert!(p50 <= p99);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_handles_empty_and_extremes() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(0.0) <= h.quantile_ns(1.0));
        assert!(h.max_ns() >= 3_600_000_000_000);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(20));
        b.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn taxonomy_counts_by_code() {
        let t = ErrorTaxonomy::default();
        t.record_nack(NackCode::Overload);
        t.record_nack(NackCode::Overload);
        t.record_nack(NackCode::Checksum);
        t.record_io_error();
        assert_eq!(t.nacks(NackCode::Overload), 2);
        assert_eq!(t.nacks(NackCode::Checksum), 1);
        assert_eq!(t.total_typed(), 4);
        let rows = t.rows();
        assert!(rows.iter().any(|(n, c)| n == "nack_overload" && *c == 2));
        assert!(rows.iter().any(|(n, c)| n == "io_error" && *c == 1));
    }

    #[test]
    fn taxonomy_covers_stream_nack_codes() {
        let t = ErrorTaxonomy::default();
        t.record_nack(NackCode::UnknownStream);
        t.record_nack(NackCode::FamilyMismatch);
        assert_eq!(t.nacks(NackCode::UnknownStream), 1);
        assert_eq!(t.nacks(NackCode::FamilyMismatch), 1);
        assert_eq!(t.other_nacks.load(Ordering::Relaxed), 0);
        let rows = t.rows();
        assert!(rows
            .iter()
            .any(|(n, c)| n == "nack_unknownstream" && *c == 1));
        assert!(rows
            .iter()
            .any(|(n, c)| n == "nack_familymismatch" && *c == 1));
    }

    #[test]
    fn fault_mode_roundtrip() {
        for m in FaultMode::ALL {
            assert_eq!(FaultMode::from_u8(m as u8), m);
            assert_ne!(m.name(), "off");
        }
        assert_eq!(FaultMode::from_u8(0), FaultMode::Off);
        assert_eq!(FaultMode::from_u8(99), FaultMode::Off);
    }
}
