//! `fcds-load` binary: drive an `fcds-server` (in-process by default)
//! through the baseline + fault-injection scenario and emit
//! `BENCH_serve.json` for the CI bench gate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fcds-load [--out=DIR] [--addr=HOST:PORT]
//!     [--writers=N] [--queriers=N] [--batch=N] [--rate=ITEMS_PER_S]
//!     [--baseline-ms=N] [--fault-hold-ms=N] [--streams=N]
//!     [--sync-period-ms=N] [--snapshot-ms=N] [--full]
//! ```
//!
//! Without `--addr` the harness starts its own server in-process (the
//! CI mode: one command, no orchestration); with it, the harness
//! targets an already-running server. After the fault scenario the
//! harness always runs the multi-stream drill (`--streams` named
//! streams round-robined over all four families, FCF1 v2 framing,
//! default 8), the two-server replica-sync drill (`--sync-period-ms`
//! push period), and the crash drill (a real `fcds-server` process
//! with `--snapshot-ms` checkpoints, SIGKILLed mid-checkpoint and
//! restarted against its data dir). `--full` lengthens every window
//! for lower-variance numbers.

use fcds_bench::gate::{
    DURABILITY_CORRUPT_ACCEPTED_MAX, DURABILITY_RECOVERY_S_MAX, DURABILITY_RELERR_MAX,
    DURABILITY_STREAMS_RECOVERED_MIN, SERVE_FAULT_CLASSES_SURVIVED_MIN,
    SERVE_INGEST_MITEMS_PER_S_MIN, SERVE_MULTISTREAM_INGEST_MITEMS_PER_S_MIN,
    SERVE_MULTISTREAM_ISOLATION_MIN, SERVE_MULTISTREAM_QUERY_P99_MS_MAX,
    SERVE_MULTISTREAM_TYPED_COVERAGE_MIN, SERVE_QUERY_P99_MS_MAX, SERVE_RECOVERY_MS_MAX,
    SERVE_TYPED_ERROR_COVERAGE_MIN, SYNC_CONVERGENCE_RELERR_MAX, SYNC_CONVERGENCE_STREAMS_MIN,
};
use fcds_bench::report::{HarnessArgs, Table};
use fcds_load::{
    run_crash_drill, run_multistream, run_scenario, run_sync_drill, CrashDrillConfig,
    CrashDrillReport, LoadConfig, MultiStreamConfig, MultiStreamReport, ScenarioReport, SyncConfig,
    SyncReport, FAMILIES,
};
use fcds_server::frame::NackCode;
use fcds_server::{serve, ServerConfig};
use std::fmt::Write as _;
use std::time::Duration;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");

    let mut cfg = LoadConfig::default();
    if let Some(w) = args.get("writers").and_then(|v| v.parse().ok()) {
        cfg.writers = w;
    }
    if let Some(q) = args.get("queriers").and_then(|v| v.parse().ok()) {
        cfg.queriers = q;
    }
    if let Some(b) = args.get("batch").and_then(|v| v.parse().ok()) {
        cfg.batch_size = b;
    }
    if let Some(r) = args.get("rate").and_then(|v| v.parse().ok()) {
        cfg.rate_items_per_s = r;
    }
    if let Some(b) = args.get("baseline-ms").and_then(|v| v.parse().ok()) {
        cfg.baseline = Duration::from_millis(b);
    }
    if let Some(h) = args.get("fault-hold-ms").and_then(|v| v.parse().ok()) {
        cfg.fault_hold = Duration::from_millis(h);
    }
    if args.full {
        cfg.baseline = Duration::from_secs(5);
        cfg.fault_hold = Duration::from_millis(750);
    }

    let mut ms_cfg = MultiStreamConfig::default();
    if let Some(s) = args.get("streams").and_then(|v| v.parse().ok()) {
        ms_cfg.streams = s;
    }
    ms_cfg.batch_size = cfg.batch_size;
    let mut sync_cfg = SyncConfig::default();
    if let Some(p) = args.get("sync-period-ms").and_then(|v| v.parse().ok()) {
        sync_cfg.sync_period = Duration::from_millis(p);
    }
    let mut crash_cfg = CrashDrillConfig::default();
    if let Some(ms) = args.get("snapshot-ms").and_then(|v| v.parse().ok()) {
        crash_cfg.snapshot_interval = Duration::from_millis(std::cmp::max(ms, 1));
        crash_cfg.churn = Duration::from_millis(std::cmp::max(ms, 1) * 3);
    }
    if args.full {
        ms_cfg.window = Duration::from_secs(4);
        sync_cfg.items_per_stream = 100_000;
        crash_cfg.items_per_stream = 50_000;
    }

    // In-process server unless the caller points at a running one.
    let (server, addr) = match args.get("addr") {
        Some(a) => (None, a.parse().expect("--addr must be HOST:PORT")),
        None => {
            let handle = serve(ServerConfig::default()).expect("start in-process server");
            let addr = handle.local_addr();
            (Some(handle), addr)
        }
    };

    println!(
        "fcds-load: {} writers × {}-item batches, {} queriers, target {} ({})",
        cfg.writers,
        cfg.batch_size,
        cfg.queriers,
        addr,
        if cfg.rate_items_per_s == 0 {
            "unthrottled".to_string()
        } else {
            format!("{} items/s", cfg.rate_items_per_s)
        }
    );

    let report = run_scenario(addr, &cfg).expect("run scenario");
    print_report(&report);

    println!(
        "multi-stream drill: {} streams × 4 families, {:.1}s window",
        ms_cfg.streams,
        ms_cfg.window.as_secs_f64()
    );
    let ms_report = run_multistream(&ms_cfg).expect("run multi-stream drill");
    print_multistream(&ms_report);

    println!(
        "replica-sync drill: {} streams, {} ms sync period",
        sync_cfg.streams,
        sync_cfg.sync_period.as_millis()
    );
    let sync_report = run_sync_drill(&sync_cfg).expect("run sync drill");
    print_sync(&sync_report);

    println!(
        "crash drill: {} streams × {} items, {} ms snapshots, SIGKILL mid-checkpoint",
        crash_cfg.streams,
        crash_cfg.items_per_stream,
        crash_cfg.snapshot_interval.as_millis()
    );
    let crash_report = run_crash_drill(&crash_cfg).expect("run crash drill");
    print_crash(&crash_report);

    let json = render_json(&report, &cfg, &ms_report, &sync_report, &crash_report);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let path = format!("{}/BENCH_serve.json", args.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    if let Some(handle) = server {
        let drain = handle.shutdown();
        println!(
            "server drained: {} items, {} sheds, {} nacks, {} leaked threads",
            drain.stats.ingest_items, drain.stats.sheds, drain.stats.nacks, drain.leaked_threads
        );
        assert_eq!(drain.leaked_threads, 0, "drain must join every thread");
    }
}

fn print_report(r: &ScenarioReport) {
    println!(
        "baseline: {:.2} M items/s ingest ({} items acked total)",
        r.ingest_items_per_s / 1.0e6,
        r.items_acked
    );
    println!(
        "ingest batch RTT: p50 {:.3} ms, p99 {:.3} ms ({} batches)",
        ms(r.ingest_latency.quantile_ns(0.50)),
        ms(r.ingest_latency.quantile_ns(0.99)),
        r.ingest_latency.count()
    );
    println!(
        "query latency:    p50 {:.3} ms, p99 {:.3} ms ({} queries)",
        ms(r.query_latency.quantile_ns(0.50)),
        ms(r.query_latency.quantile_ns(0.99)),
        r.query_latency.count()
    );

    let mut t = Table::new(&["fault", "recovery_ms", "survived"]);
    for p in &r.phases {
        t.row(&[
            p.mode.name().to_string(),
            p.recovery
                .map(|d| format!("{:.0}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "TIMEOUT".to_string()),
            p.survived.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("error taxonomy:");
    for (name, count) in r.taxonomy.rows() {
        println!("  {name:<24} {count}");
    }
    println!(
        "  reconnects               {}\n  untyped failures         {}",
        r.taxonomy.reconnects(),
        r.untyped_failures
    );
    println!("estimate/acked ratio: {:.4}", r.estimate_ratio);
}

fn print_multistream(r: &MultiStreamReport) {
    println!(
        "  {:.2} M items/s aggregate ingest ({} items across {} streams)",
        r.ingest_items_per_s / 1.0e6,
        r.items_acked,
        r.streams
    );
    println!(
        "  stream ingest RTT p99 {:.3} ms, stream query p99 {:.3} ms",
        ms(r.ingest_latency.quantile_ns(0.99)),
        ms(r.query_latency.quantile_ns(0.99))
    );
    println!(
        "  isolation {:.2}, {} / {} streams converged, untyped failures {}",
        r.isolation, r.streams_converged, r.streams, r.untyped_failures
    );
    for (name, count) in r.taxonomy.rows() {
        println!("    {name:<24} {count}");
    }
}

fn print_sync(r: &SyncReport) {
    println!(
        "  {} / {} streams converged, worst relative error {:.4}, {} pushes{}",
        r.converged,
        r.streams,
        r.worst_relative_error,
        r.pushes,
        r.convergence
            .map(|d| format!(", converged in {:.0} ms", d.as_secs_f64() * 1e3))
            .unwrap_or_default()
    );
}

fn print_crash(r: &CrashDrillReport) {
    println!(
        "  {} / {} streams recovered{}, {} churn items inside the loss window",
        r.recovered_streams,
        r.streams,
        r.recovery
            .map(|d| format!(" in {:.0} ms", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| " (TIMEOUT)".to_string()),
        r.churn_items
    );
    println!(
        "  worst relative error {:.4} ({})",
        r.worst_relative_error,
        r.family_relerr
            .iter()
            .enumerate()
            .map(|(i, e)| format!("{} {:.4}", FAMILIES[i].name(), e))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  corrupt records accepted {}, quarantined files {}",
        r.corrupt_accepted, r.quarantined
    );
    for (name, count) in r.taxonomy.rows() {
        println!("    {name:<24} {count}");
    }
}

fn render_json(
    r: &ScenarioReport,
    cfg: &LoadConfig,
    msr: &MultiStreamReport,
    sync: &SyncReport,
    crash: &CrashDrillReport,
) -> String {
    let survived = r.phases.iter().filter(|p| p.survived).count();
    let worst_recovery_ms = r
        .phases
        .iter()
        .map(|p| {
            p.recovery
                .map(|d| d.as_secs_f64() * 1e3)
                // An unrecovered phase counts as an hour, far past any
                // sane gate: it must trip the max, not vanish from it.
                .unwrap_or(3_600_000.0)
        })
        .fold(0.0f64, f64::max);
    // Typed coverage: every failure the harness saw carried a type (a
    // NACK code or a transport error). `untyped_failures` counts
    // protocol replies fitting no contract — the silent-drop detector.
    let typed_coverage = if r.untyped_failures == 0 { 1.0 } else { 0.0 };
    // Multi-stream typed coverage additionally requires the drill to
    // have provoked (and typed) both v2 taxonomy rows.
    let ms_typed = if msr.untyped_failures == 0
        && msr.taxonomy.nacks(NackCode::UnknownStream) > 0
        && msr.taxonomy.nacks(NackCode::FamilyMismatch) > 0
    {
        1.0
    } else {
        0.0
    };

    let mut rows = String::new();
    for (i, p) in r.phases.iter().enumerate() {
        let _ = write!(
            rows,
            "    {{\"fault\": \"{}\", \"recovery_ms\": {:.1}, \"survived\": {}}}{}",
            p.mode.name(),
            p.recovery.map(|d| d.as_secs_f64() * 1e3).unwrap_or(-1.0),
            p.survived,
            if i + 1 < r.phases.len() { ",\n" } else { "\n" }
        );
    }
    let tax_rows = r.taxonomy.rows();
    let mut taxonomy = String::new();
    for (i, (name, count)) in tax_rows.iter().enumerate() {
        let _ = write!(
            taxonomy,
            "    \"{name}\": {count}{}",
            if i + 1 < tax_rows.len() { ",\n" } else { "\n" }
        );
    }
    if tax_rows.is_empty() {
        taxonomy.push('\n');
    }

    format!(
        "{{\n  \
         \"schema\": \"fcds-bench-serve-v1\",\n  \
         \"config\": {{\"writers\": {writers}, \"queriers\": {queriers}, \
         \"batch_size\": {batch}, \"rate_items_per_s\": {rate}, \
         \"baseline_ms\": {baseline_ms}, \"fault_hold_ms\": {hold_ms}}},\n  \
         \"ingest\": {{\"items_per_s\": {ips:.1}, \"items_acked\": {acked}, \
         \"batch_p50_ms\": {bp50:.4}, \"batch_p99_ms\": {bp99:.4}}},\n  \
         \"query\": {{\"p50_ms\": {qp50:.4}, \"p99_ms\": {qp99:.4}, \
         \"count\": {qcount}}},\n  \
         \"faults\": [\n{rows}  ],\n  \
         \"taxonomy\": {{\n{taxonomy}  }},\n  \
         \"reconnects\": {reconnects},\n  \
         \"estimate_over_acked\": {est:.4},\n  \
         \"multistream\": {{\"streams\": {ms_streams}, \
         \"items_per_s\": {ms_ips:.1}, \"items_acked\": {ms_acked}, \
         \"query_p99_ms\": {ms_qp99:.4}, \"isolation\": {ms_iso:.4}, \
         \"streams_converged\": {ms_conv}}},\n  \
         \"sync\": {{\"streams\": {sy_streams}, \
         \"converged\": {sy_conv}, \"worst_relerr\": {sy_err:.4}, \
         \"convergence_ms\": {sy_ms:.1}, \"pushes\": {sy_pushes}}},\n  \
         \"crash\": {{\"streams\": {cr_streams}, \
         \"recovered_streams\": {cr_recovered}, \
         \"recovery_s\": {cr_recovery:.4}, \
         \"worst_relerr\": {cr_err:.4}, \
         \"corrupt_accepted\": {cr_corrupt}, \
         \"quarantined\": {cr_quarantined}, \
         \"churn_items\": {cr_churn}}},\n  \
         \"acceptance\": {{\n    \
         \"ingest_mitems_per_s\": {accept_ips:.4},\n    \
         \"query_p99_ms\": {qp99:.4},\n    \
         \"typed_error_coverage\": {typed:.1},\n    \
         \"fault_classes_survived\": {survived}.0,\n    \
         \"worst_recovery_ms\": {worst:.1},\n    \
         \"multistream_ingest_mitems_per_s\": {ms_accept_ips:.4},\n    \
         \"multistream_query_p99_ms\": {ms_qp99:.4},\n    \
         \"multistream_isolation\": {ms_iso:.4},\n    \
         \"multistream_typed_coverage\": {ms_typed:.1},\n    \
         \"sync_convergence_streams\": {sy_conv}.0,\n    \
         \"sync_convergence_relerr\": {sy_err:.4},\n    \
         \"durability_recovery_s\": {cr_recovery:.4},\n    \
         \"durability_streams_recovered\": {cr_recovered}.0,\n    \
         \"durability_relerr\": {cr_err:.4},\n    \
         \"durability_corrupt_accepted\": {cr_corrupt}.0\n  }},\n  \
         \"thresholds\": {{\n    \
         \"ingest_mitems_per_s_min\": {thr_ips},\n    \
         \"query_p99_ms_max\": {thr_p99},\n    \
         \"typed_error_coverage_min\": {thr_typed},\n    \
         \"fault_classes_survived_min\": {thr_survived},\n    \
         \"worst_recovery_ms_max\": {thr_recovery},\n    \
         \"multistream_ingest_mitems_per_s_min\": {thr_ms_ips},\n    \
         \"multistream_query_p99_ms_max\": {thr_ms_p99},\n    \
         \"multistream_isolation_min\": {thr_ms_iso},\n    \
         \"multistream_typed_coverage_min\": {thr_ms_typed},\n    \
         \"sync_convergence_streams_min\": {thr_sy_streams},\n    \
         \"sync_convergence_relerr_max\": {thr_sy_err},\n    \
         \"durability_recovery_s_max\": {thr_cr_recovery},\n    \
         \"durability_streams_recovered_min\": {thr_cr_streams},\n    \
         \"durability_relerr_max\": {thr_cr_err},\n    \
         \"durability_corrupt_accepted_max\": {thr_cr_corrupt}\n  }}\n}}\n",
        writers = cfg.writers,
        queriers = cfg.queriers,
        batch = cfg.batch_size,
        rate = cfg.rate_items_per_s,
        baseline_ms = cfg.baseline.as_millis(),
        hold_ms = cfg.fault_hold.as_millis(),
        ips = r.ingest_items_per_s,
        acked = r.items_acked,
        bp50 = ms(r.ingest_latency.quantile_ns(0.50)),
        bp99 = ms(r.ingest_latency.quantile_ns(0.99)),
        qp50 = ms(r.query_latency.quantile_ns(0.50)),
        qp99 = ms(r.query_latency.quantile_ns(0.99)),
        qcount = r.query_latency.count(),
        reconnects = r.taxonomy.reconnects(),
        est = r.estimate_ratio,
        accept_ips = r.ingest_items_per_s / 1.0e6,
        typed = typed_coverage,
        survived = survived,
        worst = worst_recovery_ms,
        ms_streams = msr.streams,
        ms_ips = msr.ingest_items_per_s,
        ms_acked = msr.items_acked,
        ms_qp99 = ms(msr.query_latency.quantile_ns(0.99)),
        ms_iso = msr.isolation,
        ms_conv = msr.streams_converged,
        ms_accept_ips = msr.ingest_items_per_s / 1.0e6,
        ms_typed = ms_typed,
        sy_streams = sync.streams,
        sy_conv = sync.converged,
        sy_err = sync.worst_relative_error,
        sy_ms = sync
            .convergence
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(-1.0),
        sy_pushes = sync.pushes,
        cr_streams = crash.streams,
        cr_recovered = crash.recovered_streams,
        // An unrecovered drill counts as an hour, far past any sane
        // gate: it must trip the max, not vanish from it.
        cr_recovery = crash.recovery.map(|d| d.as_secs_f64()).unwrap_or(3_600.0),
        cr_err = crash.worst_relative_error,
        cr_corrupt = crash.corrupt_accepted,
        cr_quarantined = crash.quarantined,
        cr_churn = crash.churn_items,
        thr_ips = SERVE_INGEST_MITEMS_PER_S_MIN,
        thr_p99 = SERVE_QUERY_P99_MS_MAX,
        thr_typed = SERVE_TYPED_ERROR_COVERAGE_MIN,
        thr_survived = SERVE_FAULT_CLASSES_SURVIVED_MIN,
        thr_recovery = SERVE_RECOVERY_MS_MAX,
        thr_ms_ips = SERVE_MULTISTREAM_INGEST_MITEMS_PER_S_MIN,
        thr_ms_p99 = SERVE_MULTISTREAM_QUERY_P99_MS_MAX,
        thr_ms_iso = SERVE_MULTISTREAM_ISOLATION_MIN,
        thr_ms_typed = SERVE_MULTISTREAM_TYPED_COVERAGE_MIN,
        thr_sy_streams = SYNC_CONVERGENCE_STREAMS_MIN,
        thr_sy_err = SYNC_CONVERGENCE_RELERR_MAX,
        thr_cr_recovery = DURABILITY_RECOVERY_S_MAX,
        thr_cr_streams = DURABILITY_STREAMS_RECOVERED_MIN,
        thr_cr_err = DURABILITY_RELERR_MAX,
        thr_cr_corrupt = DURABILITY_CORRUPT_ACCEPTED_MAX,
    )
}
