//! Differential tests for the merge-anywhere tier: N simulated nodes
//! ingest disjoint streams through the *concurrent* engine, export wire
//! images, and the fan-in merge of those images must agree with a
//! single sequential oracle over the union stream.
//!
//! Agreement is exact where the merge is a lattice join (HLL register
//! max, Θ untrimmed union) and bounded elsewhere (Quantiles within the
//! k-driven rank envelope, Misra–Gries within the `n/(k+1)` error
//! bound). Mid-stream images taken under the `r_query` relaxation are
//! tested with the envelope widened by the advertised relaxation, per
//! the paper's Definition 2.

use fcds_core::frequency::ConcurrentFrequencySketch;
use fcds_core::hll::ConcurrentHllSketch;
use fcds_core::quantiles::ConcurrentQuantilesSketch;
use fcds_core::theta::ConcurrentThetaSketch;
use fcds_core::WireImage;
use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::quantiles::{epsilon_for_k, QuantilesLadder};
use fcds_sketches::theta::{rse, untrimmed_union, CompactThetaSketch, ThetaRead};
use fcds_sketches::wire::{merge_wire_images, WireDecode, WireEncode, WireMerge};
use proptest::prelude::*;

/// Drives `per_node` disjoint updates into each of `nodes` concurrent
/// engines through their writer handles, flushes, quiesces, and returns
/// the wire image of each node.
fn theta_node_images(
    nodes: usize,
    per_node: u64,
    lg_k: u8,
) -> (Vec<bytes::Bytes>, Vec<CompactThetaSketch>) {
    let mut images = Vec::new();
    let mut compacts = Vec::new();
    for node in 0..nodes as u64 {
        let sketch = ConcurrentThetaSketch::builder()
            .lg_k(lg_k)
            .seed(77)
            .writers(2)
            .max_concurrency_error(0.05)
            .build()
            .unwrap();
        let mut w = sketch.writer();
        for i in 0..per_node {
            w.update(node * per_node + i);
        }
        w.flush().unwrap();
        sketch.quiesce();
        images.push(sketch.wire_image());
        compacts.push(sketch.compact());
    }
    (images, compacts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Θ: the wire-merged image is *identical* to the in-memory
    /// untrimmed union of the same node states — same Θ, same hashes.
    #[test]
    fn theta_wire_merge_equals_in_memory_union(
        nodes in 2usize..5,
        per_node in 500u64..3_000,
    ) {
        let (images, compacts) = theta_node_images(nodes, per_node, 6);
        let merged: CompactThetaSketch = merge_wire_images(&images).unwrap();
        let oracle = untrimmed_union(compacts.iter()).unwrap();
        prop_assert_eq!(merged.theta(), oracle.theta());
        prop_assert_eq!(merged.sorted_hashes(), oracle.sorted_hashes());
    }

    /// Θ: merging the *per-shard* unsorted images of every node — the
    /// zero-flatten export path — lands on the same state as merging
    /// the per-node canonical images.
    #[test]
    fn theta_shard_images_merge_to_the_same_state(
        nodes in 2usize..4,
        per_node in 500u64..2_000,
    ) {
        let mut node_images = Vec::new();
        let mut shard_images = Vec::new();
        for node in 0..nodes as u64 {
            let sketch = ConcurrentThetaSketch::builder()
                .lg_k(6)
                .seed(77)
                .writers(2)
                .max_concurrency_error(0.05)
                .build()
                .unwrap();
            let mut w = sketch.writer();
            for i in 0..per_node {
                w.update(node * per_node + i);
            }
            w.flush().unwrap();
            sketch.quiesce();
            node_images.push(sketch.wire_image());
            shard_images.extend(sketch.shard_wire_images());
        }
        let via_nodes: CompactThetaSketch = merge_wire_images(&node_images).unwrap();
        let via_shards: CompactThetaSketch = merge_wire_images(&shard_images).unwrap();
        prop_assert_eq!(via_nodes.theta(), via_shards.theta());
        prop_assert_eq!(via_nodes.sorted_hashes(), via_shards.sorted_hashes());
    }

    /// HLL: register max is a lattice join, so N concurrent nodes
    /// merged on the wire equal one sequential sketch over the union
    /// stream — exactly, register for register.
    #[test]
    fn hll_wire_merge_is_exactly_the_sequential_oracle(
        nodes in 2usize..5,
        per_node in 500u64..3_000,
    ) {
        let lg_m = 8u8;
        let mut oracle = HllSketch::new(lg_m, 123).unwrap();
        let mut images = Vec::new();
        for node in 0..nodes as u64 {
            let sketch = ConcurrentHllSketch::builder()
                .lg_m(lg_m)
                .seed(123)
                .writers(2)
                .max_concurrency_error(0.05)
                .build()
                .unwrap();
            let mut w = sketch.writer();
            for i in 0..per_node {
                let item = node * per_node + i;
                w.update(item);
                oracle.update(item);
            }
            w.flush().unwrap();
            sketch.quiesce();
            images.push(sketch.wire_image());
        }
        let merged: HllSketch = merge_wire_images(&images).unwrap();
        prop_assert_eq!(merged, oracle);
    }

    /// Quantiles: the fan-in of N node ladders answers every rank query
    /// within the k-driven epsilon envelope of the true rank over the
    /// union stream (disjoint integer ranges make true ranks exact).
    #[test]
    fn quantiles_wire_merge_within_rank_envelope(
        nodes in 2usize..5,
        per_node in 500u64..3_000,
    ) {
        let k = 64usize;
        let mut images = Vec::new();
        for node in 0..nodes as u64 {
            let sketch: ConcurrentQuantilesSketch<u64> = ConcurrentQuantilesSketch::<u64>::builder()
                .k(k)
                .oracle_seed(5)
                .writers(2)
                .max_concurrency_error(0.05)
                .build()
                .unwrap();
            let mut w = sketch.writer();
            for i in 0..per_node {
                w.update(node * per_node + i);
            }
            w.flush().unwrap();
            sketch.quiesce();
            images.push(sketch.wire_image());
        }
        let merged: QuantilesLadder<u64> = merge_wire_images(&images).unwrap();
        let total = nodes as u64 * per_node;
        prop_assert_eq!(merged.n(), total);
        // Merging K shard ladders per node × N nodes compounds the
        // per-sketch epsilon; 4× is a generous but non-vacuous envelope
        // (the proptest shim cannot shrink failures, so stay robust).
        let envelope = 4.0 * epsilon_for_k(k);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = merged.quantile(phi).unwrap();
            // Items are exactly 0..total, so the true rank of value q
            // is q / total.
            let true_rank = q as f64 / total as f64;
            prop_assert!(
                (true_rank - phi).abs() <= envelope,
                "phi = {}, got value {} (true rank {}), envelope {}",
                phi, q, true_rank, envelope
            );
        }
    }

    /// Misra–Gries: the wire fan-in keeps every true count inside
    /// `[lower_bound, upper_bound]` and respects the mergeable-summaries
    /// error bound `n/(k+1)` over the union stream.
    #[test]
    fn mg_wire_merge_respects_bounds_over_union_stream(
        nodes in 2usize..5,
        per_node in 500u64..3_000,
        modulus in 10u64..200,
    ) {
        let k = 16usize;
        let mut true_counts = std::collections::HashMap::<u64, u64>::new();
        let mut images = Vec::new();
        for node in 0..nodes as u64 {
            let sketch: ConcurrentFrequencySketch<u64> = ConcurrentFrequencySketch::<u64>::builder()
                .k(k)
                .writers(2)
                .max_concurrency_error(0.05)
                .build()
                .unwrap();
            let mut w = sketch.writer();
            for i in 0..per_node {
                // Skewed: item 0 is heavy on every node, the rest cycle.
                let item = if i % 4 == 0 { 0 } else { (node * per_node + i) % modulus };
                w.update(item);
                *true_counts.entry(item).or_insert(0) += 1;
            }
            w.flush().unwrap();
            sketch.quiesce();
            images.push(sketch.wire_image());
        }
        let merged: MisraGriesSketch<u64> = merge_wire_images(&images).unwrap();
        let total = nodes as u64 * per_node;
        prop_assert_eq!(merged.n(), total);
        prop_assert!(
            merged.max_error() <= total / (k as u64 + 1),
            "merged error {} exceeds n/(k+1) = {}",
            merged.max_error(),
            total / (k as u64 + 1)
        );
        for (item, &truth) in &true_counts {
            let est = merged.estimate(item);
            prop_assert!(
                est.lower_bound <= truth && truth <= est.upper_bound,
                "item {}: true {} outside [{}, {}]",
                item, truth, est.lower_bound, est.upper_bound
            );
        }
    }

    /// Mid-stream images under the `r_query` relaxation: a wire image
    /// taken *without* quiescing may lag by at most `r` updates per
    /// node; the merged estimate must stay within the relaxed envelope
    /// of Definition 2 (widened by the sketch's RSE).
    #[test]
    fn mid_stream_theta_images_merge_within_relaxed_envelope(
        nodes in 2usize..4,
        per_node in 2_000u64..6_000,
    ) {
        let lg_k = 9u8;
        let mut images = Vec::new();
        let mut lag_budget = 0u64;
        for node in 0..nodes as u64 {
            let sketch = ConcurrentThetaSketch::builder()
                .lg_k(lg_k)
                .seed(31)
                .writers(1)
                .max_concurrency_error(0.05)
                .build()
                .unwrap();
            let mut w = sketch.writer();
            for i in 0..per_node {
                w.update(node * per_node + i);
            }
            // No flush, no quiesce: the image may miss up to r_query
            // updates still sitting in buffers or in flight.
            images.push(sketch.wire_image());
            lag_budget += sketch.query_relaxation();
        }
        let merged: CompactThetaSketch = merge_wire_images(&images).unwrap();
        let total = nodes as u64 * per_node;
        let visible_floor = total.saturating_sub(lag_budget) as f64;
        let slack = 4.0 * rse(1usize << lg_k);
        let est = merged.estimate();
        prop_assert!(
            est >= visible_floor * (1.0 - slack) && est <= total as f64 * (1.0 + slack),
            "estimate {} outside [{}, {}] (total {}, lag budget {})",
            est, visible_floor * (1.0 - slack), total as f64 * (1.0 + slack), total, lag_budget
        );
    }
}

/// Fan-in shape must not matter: merging 8 node images as a binary tree
/// (pairs, then pairs of pairs, re-encoding to wire between levels)
/// lands on the same answers as one flat left-fold.
#[test]
fn tree_fan_in_equals_flat_fan_in() {
    let (images, _) = theta_node_images(8, 1_500, 6);

    let flat: CompactThetaSketch = merge_wire_images(&images).unwrap();

    // Binary tree: merge adjacent pairs on the wire form, re-encode,
    // repeat until one image remains.
    let mut level: Vec<bytes::Bytes> = images;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let mut acc = CompactThetaSketch::from_wire_bytes(&pair[0]).unwrap();
                if let Some(right) = pair.get(1) {
                    let rhs = CompactThetaSketch::from_wire_bytes(right).unwrap();
                    acc.wire_merge_from(&rhs).unwrap();
                }
                acc.to_wire_bytes()
            })
            .collect();
    }
    let tree = CompactThetaSketch::from_wire_bytes(&level[0]).unwrap();

    assert_eq!(tree.theta(), flat.theta());
    assert_eq!(tree.sorted_hashes(), flat.sorted_hashes());
}
