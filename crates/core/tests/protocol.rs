//! Property and schedule tests for the engine's hand-off protocol: for
//! arbitrary configurations (writer counts, buffer sizes, eager limits,
//! double-buffering on/off) the exact "sum sketch" must never lose or
//! duplicate an update once flushed and quiesced.

use fcds_core::composable::{GlobalSketch, LocalSketch};
use fcds_core::sync::AtomicF64;
use fcds_core::{ConcurrencyConfig, ConcurrentSketch};
use proptest::prelude::*;

/// Exact sum + count "sketch": any protocol bug (lost buffer, double
/// merge, torn hand-off) shows up as a wrong total.
#[derive(Debug, Default)]
struct SumGlobal {
    total: u64,
    n: u64,
}

#[derive(Debug, Default)]
struct SumLocal {
    items: Vec<u64>,
}

impl LocalSketch for SumLocal {
    type Item = u64;
    type Hint = ();
    fn update(&mut self, item: u64) {
        self.items.push(item);
    }
    fn should_add(_: (), _: &u64) -> bool {
        true
    }
    fn clear(&mut self) {
        self.items.clear();
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

impl GlobalSketch for SumGlobal {
    type Local = SumLocal;
    type View = AtomicF64;
    type Snapshot = f64;
    fn new_local(&self) -> SumLocal {
        SumLocal::default()
    }
    fn new_view(&self) -> AtomicF64 {
        AtomicF64::new(self.total as f64)
    }
    fn merge(&mut self, local: &mut SumLocal) {
        for v in local.items.drain(..) {
            self.total += v;
            self.n += 1;
        }
    }
    fn update_direct(&mut self, item: u64) {
        self.total += item;
        self.n += 1;
    }
    fn publish(&self, view: &AtomicF64) {
        view.store(self.total as f64);
    }
    fn snapshot(view: &AtomicF64) -> f64 {
        view.load()
    }
    fn calc_hint(&self) {}
    fn stream_len(&self) -> u64 {
        self.n
    }
}

fn run(writers: usize, per_writer: u64, config: ConcurrencyConfig) -> f64 {
    let sketch = ConcurrentSketch::start(SumGlobal::default(), config).unwrap();
    std::thread::scope(|s| {
        for w in 0..writers as u64 {
            let mut wr = sketch.writer();
            s.spawn(move || {
                for i in 0..per_writer {
                    wr.update(w * per_writer + i + 1);
                }
            });
        }
    });
    sketch.quiesce();
    sketch.snapshot()
}

fn expected(writers: u64, per_writer: u64) -> f64 {
    let total = writers * per_writer;
    (total * (total + 1) / 2) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_update_lost_for_any_configuration(
        writers in 1usize..6,
        per_writer in 1u64..5_000,
        max_b in 1u64..64,
        e_pct in 1u32..=100, // e in 0.01..=1.00
        double_buffering in any::<bool>(),
    ) {
        let config = ConcurrencyConfig {
            writers,
            max_concurrency_error: e_pct as f64 / 100.0,
            max_buffer_size: max_b,
            double_buffering,
            ..Default::default()
        };
        let sum = run(writers, per_writer, config);
        prop_assert_eq!(sum, expected(writers as u64, per_writer));
    }

    #[test]
    fn interleaved_flushes_preserve_totals(
        flushes in prop::collection::vec(1u64..500, 1..8),
    ) {
        // A single writer alternating bursts and manual flushes.
        let config = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            max_buffer_size: 16,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), config).unwrap();
        let mut w = sketch.writer();
        let mut pushed = 0u64;
        for burst in &flushes {
            for _ in 0..*burst {
                pushed += 1;
                w.update(pushed);
            }
            w.flush().unwrap();
        }
        sketch.quiesce();
        prop_assert_eq!(sketch.snapshot(), (pushed * (pushed + 1) / 2) as f64);
    }
}

#[test]
fn heavy_schedule_stress_with_random_yields() {
    // Writers randomly yield mid-stream to shake out interleavings; the
    // total must still be exact.
    use rand::{Rng, SeedableRng};
    let config = ConcurrencyConfig {
        writers: 6,
        max_concurrency_error: 0.04,
        max_buffer_size: 8,
        ..Default::default()
    };
    let sketch = ConcurrentSketch::start(SumGlobal::default(), config).unwrap();
    let per = 30_000u64;
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t);
                for i in 0..per {
                    w.update(t * per + i + 1);
                    if rng.random_ratio(1, 512) {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    sketch.quiesce();
    let total = 6 * per;
    assert_eq!(sketch.snapshot(), (total * (total + 1) / 2) as f64);
}
