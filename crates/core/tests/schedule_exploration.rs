//! Exhaustive schedule exploration of the hand-off protocol *design*.
//!
//! The real `PropSlot` runs on hardware atomics, where we can only
//! stress-test interleavings probabilistically. Here we model the worker
//! and propagator of Algorithm 2 as explicit state machines over a
//! sequentially-consistent shared state and exhaustively enumerate every
//! interleaving (DFS over schedules) for small traces, checking that
//!
//! * no update is lost or duplicated,
//! * the propagator only touches a buffer the worker has handed off,
//! * the worker never mutates a buffer the propagator owns,
//! * every reachable terminal state has all updates merged.
//!
//! The model mirrors `runtime.rs` line by line (references in comments),
//! so a protocol-logic bug (as opposed to a memory-ordering bug, which
//! the fences in `PropSlot` handle) would show up here on every run.

use std::collections::HashSet;

const PENDING: u64 = 0;
const MERGED_HINT: u64 = 1;

/// Shared protocol state (models `PropSlot` fields; sequentially
/// consistent — the model checks logic, not memory ordering).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Shared {
    prop: u64,
    cur: usize,
    buffers: [Vec<u32>; 2],
    merged: Vec<u32>,
    /// Ownership ghost state: which side may touch each buffer.
    propagator_owns: [bool; 2],
}

/// Worker program counter (update_i of Algorithm 2, lines 119–129).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum WorkerPc {
    /// Buffer the next item into `buffers[cur]` (line 122).
    Update {
        next_item: u32,
    },
    /// Line 125: wait until `prop != 0`, then flip + hand off.
    AwaitMerge {
        next_item: u32,
    },
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    shared: Shared,
    worker: WorkerPc,
}

/// One worker step; returns `None` if the worker is blocked (waiting).
fn worker_step(state: &State, n_items: u32, b: usize) -> Option<State> {
    let mut s = state.clone();
    match s.worker {
        WorkerPc::Update { next_item } => {
            assert!(
                !s.shared.propagator_owns[s.shared.cur],
                "worker touched a propagator-owned buffer"
            );
            s.shared.buffers[s.shared.cur].push(next_item);
            let filled = s.shared.buffers[s.shared.cur].len() >= b;
            let next = next_item + 1;
            s.worker = if filled {
                WorkerPc::AwaitMerge { next_item: next }
            } else if next >= n_items {
                WorkerPc::Done
            } else {
                WorkerPc::Update { next_item: next }
            };
            Some(s)
        }
        WorkerPc::AwaitMerge { next_item } => {
            // Line 125: blocked until prop != PENDING.
            if s.shared.prop == PENDING {
                return None;
            }
            // Lines 126–129: flip cur, hand off the filled buffer.
            let filled = s.shared.cur;
            s.shared.cur = 1 - s.shared.cur;
            assert!(
                s.shared.buffers[s.shared.cur].is_empty(),
                "fresh buffer not cleared by the propagator"
            );
            s.shared.propagator_owns[filled] = true;
            s.shared.prop = PENDING;
            s.worker = if next_item >= n_items {
                WorkerPc::Done
            } else {
                WorkerPc::Update { next_item }
            };
            Some(s)
        }
        WorkerPc::Done => None,
    }
}

/// One propagator step (lines 112–115); `None` if nothing to do.
fn propagator_step(state: &State) -> Option<State> {
    if state.shared.prop != PENDING {
        return None;
    }
    let mut s = state.clone();
    let idx = 1 - s.shared.cur;
    assert!(
        s.shared.propagator_owns[idx],
        "propagator touched a worker-owned buffer"
    );
    let drained: Vec<u32> = s.shared.buffers[idx].drain(..).collect();
    s.shared.merged.extend(drained);
    s.shared.propagator_owns[idx] = false;
    s.shared.prop = MERGED_HINT;
    Some(s)
}

/// DFS over all interleavings; checks every terminal state.
fn explore(n_items: u32, b: usize) -> (usize, usize) {
    let initial = State {
        shared: Shared {
            prop: MERGED_HINT,
            cur: 0,
            buffers: [Vec::new(), Vec::new()],
            merged: Vec::new(),
            propagator_owns: [false, false],
        },
        worker: if n_items == 0 {
            WorkerPc::Done
        } else {
            WorkerPc::Update { next_item: 0 }
        },
    };
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![initial];
    let mut states = 0usize;
    let mut terminals = 0usize;
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        states += 1;
        let w = worker_step(&state, n_items, b);
        let p = propagator_step(&state);
        if w.is_none() && p.is_none() {
            // Terminal (worker done or blocked with no propagator work):
            // the worker must actually be done, not deadlocked.
            assert_eq!(
                state.worker,
                WorkerPc::Done,
                "deadlock: worker blocked with an idle propagator in {state:?}"
            );
            terminals += 1;
            // Exactly-once delivery: merged ∪ in-flight buffers ∪ current
            // buffer = 0..n, each item exactly once.
            let mut all: Vec<u32> = state.shared.merged.clone();
            all.extend(state.shared.buffers[0].iter());
            all.extend(state.shared.buffers[1].iter());
            all.sort_unstable();
            let expected: Vec<u32> = (0..n_items).collect();
            assert_eq!(all, expected, "items lost or duplicated in {state:?}");
            continue;
        }
        stack.extend(w);
        stack.extend(p);
    }
    (states, terminals)
}

#[test]
fn exhaustive_b1_small_trace() {
    let (states, terminals) = explore(6, 1);
    assert!(states > 6, "exploration trivially small: {states}");
    assert!(terminals >= 1);
}

#[test]
fn exhaustive_b2() {
    let (states, _) = explore(8, 2);
    assert!(states > 8);
}

#[test]
fn exhaustive_b3_with_partial_tail() {
    // 7 items with b = 3: the final buffer is partial and stays local —
    // exactly the state a writer-drop flush would hand off.
    let (states, _) = explore(7, 3);
    assert!(states > 7);
}

#[test]
fn exhaustive_larger_buffer_than_stream() {
    // b > n: nothing is ever handed off; the items stay buffered, which
    // terminal checking still accounts for.
    let (_, terminals) = explore(3, 8);
    assert_eq!(terminals, 1, "fully deterministic schedule");
}

#[test]
fn empty_trace_is_terminal() {
    let (states, terminals) = explore(0, 4);
    assert_eq!(states, 1);
    assert_eq!(terminals, 1);
}
