//! A concurrent HLL sketch — a third instantiation demonstrating the
//! framework's genericity (§8 names "other sketches" as future work, and
//! the artifact appendix exercises HLL).
//!
//! HLL composes naturally: merging is register-wise max (commutative and
//! idempotent), and there is a genuinely useful pre-filtering hint in the
//! spirit of §5.1: if every register is at least `m₀`, then an update
//! whose rank `ρ(h)` is at most `m₀` cannot change any register and can
//! be dropped on the update thread. Registers only grow, so — like Θ —
//! the hint is conservative and never filters an update that could still
//! matter. The fraction of surviving updates is ~2^(−m₀), which shrinks
//! as the stream grows, exactly like the Θ filter.

use crate::composable::{extend_compact_u64, GlobalSketch, HintCodec, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, FlushError, SketchWriter};
use crate::sync::{AtomicF64, EpochCell};
use fcds_sketches::error::Result;
use fcds_sketches::hash::{hash_batch_with_seed, Hashable, DEFAULT_SEED};
use fcds_sketches::hll::HllSketch;
use fcds_sketches::wire::WireEncode;
use std::num::NonZeroU64;

/// The HLL hint: the number of registers' common floor `m₀` plus the
/// sketch's `lg_m` (needed to compute ρ on the update thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HllHint {
    /// `lg_m` of the global sketch.
    pub lg_m: u8,
    /// Minimum register value: updates with `ρ(h) ≤ floor` are dropped.
    pub floor: u8,
}

impl HintCodec for HllHint {
    fn encode(self) -> NonZeroU64 {
        // lg_m ≥ 4 keeps the encoding non-zero even when floor = 0.
        NonZeroU64::new(((self.lg_m as u64) << 8) | self.floor as u64)
            .expect("lg_m ≥ 4 makes the hint non-zero")
    }
    fn decode(raw: NonZeroU64) -> Self {
        HllHint {
            lg_m: (raw.get() >> 8) as u8,
            floor: (raw.get() & 0xFF) as u8,
        }
    }
}

/// The rank `ρ` of a hash for a sketch with `lg_m` index bits: one plus
/// the number of leading zeros after the index bits.
#[inline]
pub fn rho(hash: u64, lg_m: u8) -> u8 {
    let tail = hash << lg_m;
    if tail == 0 {
        64 - lg_m + 1
    } else {
        (tail.leading_zeros() + 1) as u8
    }
}

/// The global side of the concurrent HLL sketch.
#[derive(Debug)]
pub struct HllGlobal {
    sketch: HllSketch,
    ingested: u64,
}

/// The published view of one HLL shard: the atomic estimate for
/// single-shard fast-path queries, plus a register image written only by
/// [`GlobalSketch::publish_sharded`] (i.e., when `K > 1`). Register-wise
/// max across shard images is exactly the sketch a single HLL would hold
/// on the concatenated stream, so the sharded merge is lossless.
#[derive(Debug)]
pub struct HllView {
    est: AtomicF64,
    image: EpochCell<HllSketch>,
}

/// The local side: a buffer of pre-hashed, pre-filtered updates.
#[derive(Debug, Default)]
pub struct HllLocal {
    hashes: Vec<u64>,
}

impl LocalSketch for HllLocal {
    type Item = u64;
    type Hint = HllHint;

    fn update(&mut self, hash: u64) {
        self.hashes.push(hash);
    }

    fn update_batch(&mut self, hashes: &[u64]) {
        self.hashes.extend_from_slice(hashes);
    }

    /// Branchless batch filter against the min-register hint (the HLL
    /// half of the batched ingestion fast path).
    fn update_batch_filtered(&mut self, hint: HllHint, hashes: &[u64]) -> usize {
        extend_compact_u64(&mut self.hashes, hashes, |h| rho(h, hint.lg_m) > hint.floor)
    }

    /// Drops updates whose rank cannot exceed any register: safe because
    /// registers are monotonically non-decreasing.
    fn should_add(hint: HllHint, hash: &u64) -> bool {
        rho(*hash, hint.lg_m) > hint.floor
    }

    fn clear(&mut self) {
        self.hashes.clear();
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }
}

impl GlobalSketch for HllGlobal {
    type Local = HllLocal;
    type View = HllView;
    type Snapshot = f64;

    fn new_local(&self) -> HllLocal {
        HllLocal::default()
    }

    fn new_view(&self) -> HllView {
        HllView {
            est: AtomicF64::new(self.sketch.estimate()),
            image: EpochCell::new(self.sketch.clone()),
        }
    }

    fn merge(&mut self, local: &mut HllLocal) {
        for h in local.hashes.drain(..) {
            self.sketch.update_hash(h);
            self.ingested += 1;
        }
    }

    fn update_direct(&mut self, hash: u64) {
        self.sketch.update_hash(hash);
        self.ingested += 1;
    }

    fn publish(&self, view: &HllView) {
        view.est.store(self.sketch.estimate());
    }

    fn publish_sharded(&self, view: &HllView) {
        view.est.store(self.sketch.estimate());
        view.image.store(self.sketch.clone());
    }

    fn snapshot(view: &HllView) -> f64 {
        view.est.load()
    }

    fn merge_shard_views(views: &[&HllView]) -> f64 {
        let images: Vec<_> = views.iter().map(|v| v.image.load()).collect();
        let (first, rest) = images.split_first().expect("at least one shard");
        let mut merged = (**first).clone();
        for img in rest {
            merged.merge(img).expect("shards share lg_m and seed");
        }
        merged.estimate()
    }

    fn new_shard(&self) -> Self {
        HllGlobal {
            sketch: HllSketch::new(self.sketch.lg_m(), self.sketch.seed())
                .expect("shard parameters were already validated"),
            ingested: 0,
        }
    }

    fn calc_hint(&self) -> HllHint {
        let floor = self.sketch.registers().iter().copied().min().unwrap_or(0);
        HllHint {
            lg_m: self.sketch.lg_m(),
            floor,
        }
    }

    fn stream_len(&self) -> u64 {
        self.ingested
    }
}

/// Builder for [`ConcurrentHllSketch`].
///
/// **Deprecated:** prefer the family-generic
/// [`EngineBuilder<HllFamily>`](crate::engine::EngineBuilder), which
/// shares one set of concurrency knobs across all four sketch families.
/// This per-family builder remains as a thin shim for one release and
/// will be removed.
#[derive(Debug, Clone)]
pub struct ConcurrentHllBuilder {
    lg_m: u8,
    seed: u64,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentHllBuilder {
    fn default() -> Self {
        ConcurrentHllBuilder {
            lg_m: 12,
            seed: DEFAULT_SEED,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentHllBuilder {
    /// Starts from defaults: 4096 registers, `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `lg_m` (number of registers = `2^lg_m`).
    pub fn lg_m(mut self, lg_m: u8) -> Self {
        self.lg_m = lg_m;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected number of update threads.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Splits the registers into `K` shards (writers round-robined,
    /// queries take the register-wise max across shards).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Publishes each shard's register image only on every `m`-th merge
    /// (default 1): skipped merges avoid the full register-array clone
    /// (O(2^lg_m) bytes, independent of this knob). The
    /// atomic estimate still publishes per merge; merged queries may lag
    /// by up to `(m − 1)·b` updates per shard
    /// ([`ConcurrencyConfig::query_relaxation`]), and `quiesce` restores
    /// full freshness.
    pub fn image_every(mut self, m: u64) -> Self {
        self.config.image_every = m;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch.
    pub fn build(self) -> Result<ConcurrentHllSketch> {
        let global = HllGlobal {
            sketch: HllSketch::new(self.lg_m, self.seed)?,
            ingested: 0,
        };
        let seed = self.seed;
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentHllSketch { inner, seed })
    }
}

/// Concurrent HLL distinct-count sketch.
///
/// # Examples
///
/// ```
/// use fcds_core::hll::ConcurrentHllBuilder;
///
/// let sketch = ConcurrentHllBuilder::new().lg_m(12).writers(2).build().unwrap();
/// let mut w = sketch.writer();
/// for i in 0..100_000u64 {
///     w.update(i);
/// }
/// w.flush().unwrap();
/// sketch.quiesce();
/// assert!((sketch.estimate() - 100_000.0).abs() / 100_000.0 < 0.1);
/// ```
#[derive(Debug)]
pub struct ConcurrentHllSketch {
    inner: ConcurrentSketch<HllGlobal>,
    seed: u64,
}

impl ConcurrentHllSketch {
    /// Shorthand for [`ConcurrentHllBuilder::new`].
    pub fn builder() -> ConcurrentHllBuilder {
        ConcurrentHllBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> HllWriter {
        HllWriter {
            inner: self.inner.writer(),
            seed: self.seed,
        }
    }

    /// The current distinct-count estimate.
    pub fn estimate(&self) -> f64 {
        self.inner.snapshot()
    }

    /// A copy of the current global registers, merged across shards
    /// (takes the shard locks in turn; not a hot-path operation). Useful
    /// for off-line unions.
    pub fn registers(&self) -> HllSketch {
        let mut parts = self.inner.with_globals(|g| g.sketch.clone());
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p).expect("shards share lg_m and seed");
        }
        merged
    }

    /// The relaxation bound `r = 2Nb`.
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// Waits until all handed-off buffers have been merged and published.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }

    /// Engine diagnostics: merges performed, eager updates, hand-offs.
    pub fn stats(&self) -> crate::runtime::EngineStats {
        self.inner.stats()
    }
}

/// Serialises the merged register state into a unified wire image
/// (HLL family — see `fcds_sketches::wire`). Register-wise max is a
/// lattice join, so images merged on a remote node equal the
/// sequential sketch of the concatenated streams exactly. A
/// coordinator fanning images in every query tick should hold a
/// `fcds_sketches::wire::MergeScratch` and call
/// `hll_multiway_merge_into` to fold registers straight from the
/// payload bytes with zero steady-state allocations.
impl crate::engine::WireImage for ConcurrentHllSketch {
    fn wire_image(&self) -> bytes::Bytes {
        self.registers().to_wire_bytes()
    }
}

/// Per-thread writer for [`ConcurrentHllSketch`].
#[derive(Debug)]
pub struct HllWriter {
    inner: SketchWriter<HllGlobal>,
    seed: u64,
}

impl HllWriter {
    /// Processes one stream item.
    #[inline]
    pub fn update<T: Hashable>(&mut self, item: T) {
        self.inner.update(item.hash_with_seed(self.seed));
    }

    /// Processes a batch of stream items through the fused fast path:
    /// hash, rank, and min-register filter run in one in-register pass
    /// per item against a hint hoisted per chunk, survivors are
    /// compacted branchlessly into a stack buffer and appended with one
    /// reserved extend, hand-offs at `b`-boundaries mid-batch
    /// (`SketchWriter::push_accepted`). Equivalent to calling
    /// [`Self::update`] once per item — a stale hint only filters less
    /// (registers never decrease), and the filtered-out extras would be
    /// register no-ops anyway.
    pub fn update_batch<T: Hashable>(&mut self, items: &[T]) {
        const CHUNK: usize = 32;
        let mut rest = items;
        while !self.inner.is_lazy() {
            let Some((first, tail)) = rest.split_first() else {
                return;
            };
            self.update(first);
            rest = tail;
        }
        if !self.inner.prefilter_enabled() {
            let mut hashes = [0u64; CHUNK];
            for chunk in rest.chunks(CHUNK) {
                hash_batch_with_seed(chunk, self.seed, &mut hashes[..chunk.len()]);
                self.inner.push_accepted(&hashes[..chunk.len()]);
            }
            return;
        }
        let mut survivors = [0u64; CHUNK];
        for chunk in rest.chunks(CHUNK) {
            let hint = self.inner.hint();
            let mut kept = 0usize;
            for item in chunk {
                let h = item.hash_with_seed(self.seed);
                survivors[kept] = h;
                kept += (rho(h, hint.lg_m) > hint.floor) as usize;
            }
            self.inner.note_filtered((chunk.len() - kept) as u64);
            self.inner.push_accepted(&survivors[..kept]);
        }
    }

    /// Hands the partial local buffer to the propagator.
    ///
    /// # Errors
    ///
    /// See [`SketchWriter::flush`]: [`FlushError::PropagatorDead`] when
    /// the shard's propagation service died (buffered updates were
    /// discarded; the writer is latched dead), [`FlushError::ShuttingDown`]
    /// when the engine was dropped mid-flush.
    pub fn flush(&mut self) -> std::result::Result<(), FlushError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_round_trips() {
        for (lg_m, floor) in [(4u8, 0u8), (12, 3), (21, 61)] {
            let h = HllHint { lg_m, floor };
            assert_eq!(HllHint::decode(h.encode()), h);
        }
    }

    #[test]
    fn rho_matches_sketch_semantics() {
        assert_eq!(rho(0, 4), 61);
        assert_eq!(rho(u64::MAX, 4), 1);
        // Hash with index bits set and tail 0b01…: rho = 2.
        let h = (0b01u64) << (64 - 4 - 2);
        assert_eq!(rho(h, 4), 2);
    }

    #[test]
    fn filter_never_drops_a_state_changing_update() {
        // Brute-force: for random hashes, if should_add says drop, then
        // updating a sketch whose min register equals the floor must be a
        // no-op.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut sketch = HllSketch::new(4, 1).unwrap();
        for _ in 0..20_000 {
            let h: u64 = rng.random();
            let floor = sketch.registers().iter().copied().min().unwrap();
            let hint = HllHint { lg_m: 4, floor };
            let predicted_drop = !HllLocal::should_add(hint, &h);
            let changed = sketch.update_hash(h);
            assert!(
                !(predicted_drop && changed),
                "filter dropped a state-changing update (h={h:#x})"
            );
        }
    }

    #[test]
    fn concurrent_estimate_accuracy() {
        let s = ConcurrentHllBuilder::new()
            .lg_m(12)
            .seed(7)
            .writers(4)
            .build()
            .unwrap();
        let n_per = crate::test_support::scaled(100_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let n = 4.0 * n_per as f64;
        let rel = (s.estimate() - n).abs() / n;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn registers_equal_sequential_union_after_quiesce() {
        let n = crate::test_support::scaled(50_000);
        let s = ConcurrentHllBuilder::new()
            .lg_m(10)
            .seed(5)
            .writers(2)
            .max_concurrency_error(1.0)
            .build()
            .unwrap();
        let mut reference = HllSketch::new(10, 5).unwrap();
        for i in 0..n {
            reference.update(i);
        }
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in (t..n).step_by(2) {
                        w.update(i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        // Register-wise max is order-independent, so after quiescence the
        // concurrent registers must exactly equal the sequential ones.
        assert_eq!(s.registers(), reference);
    }

    #[test]
    fn sharded_registers_equal_sequential_after_quiesce() {
        // Register max is partition-insensitive: a K-shard run must land
        // on exactly the registers of a single sequential sketch, and the
        // merged query estimate must match it — the "error-free merge"
        // property, exercised end-to-end for both backends.
        use crate::config::PropagationBackendKind;
        let n = crate::test_support::scaled(40_000);
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let s = ConcurrentHllBuilder::new()
                .lg_m(10)
                .seed(5)
                .writers(4)
                .shards(4)
                .max_concurrency_error(1.0)
                .backend(backend)
                .build()
                .unwrap();
            let mut reference = HllSketch::new(10, 5).unwrap();
            for i in 0..n {
                reference.update(i);
            }
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in (t..n).step_by(4) {
                            w.update(i);
                        }
                        w.flush().unwrap();
                    });
                }
            });
            s.quiesce();
            assert_eq!(s.registers(), reference, "{backend:?}");
            assert_eq!(s.estimate(), reference.estimate(), "{backend:?}");
        }
    }

    #[test]
    fn tiny_stream_eager_accuracy() {
        let s = ConcurrentHllBuilder::new()
            .lg_m(12)
            .writers(2)
            .build()
            .unwrap();
        let mut w = s.writer();
        for i in 0..200u64 {
            w.update(i);
        }
        // Eager phase: immediately visible, linear-counting accurate.
        let est = s.estimate();
        assert!((est - 200.0).abs() < 10.0, "est = {est}");
    }
}
