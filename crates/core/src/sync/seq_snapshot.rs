//! Single-writer seqlock over a small `Copy` record — the paper's
//! "double collect" snapshot (§5.1).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single-writer, many-reader snapshot cell.
///
/// The writer (the propagator thread) publishes a new value of `T` with
/// [`SeqSnapshot::write`]; readers obtain a consistent copy with
/// [`SeqSnapshot::read`], retrying if a write raced them (the classic
/// seqlock / double-collect). Because there is exactly one writer, no
/// writer-writer synchronisation is needed.
///
/// The version counter is even when the cell is stable and odd while a
/// write is in progress. A read is valid iff the version was even and
/// unchanged across the two collects.
///
/// # Safety protocol
///
/// * Only one thread may call [`write`](Self::write) at a time (enforced
///   by requiring `&mut self`-like discipline at the call site — the
///   propagator owns the writer role; debug builds assert the version
///   parity to catch violations).
/// * Readers never dereference torn data: they copy the bytes and then
///   validate the version before using the copy. `T: Copy` guarantees the
///   copy itself cannot observe broken invariants beyond torn plain data,
///   which validation discards.
#[derive(Debug)]
pub struct SeqSnapshot<T: Copy> {
    version: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: all access to `value` is mediated by the seqlock protocol above;
// readers only use copies validated against the version counter.
unsafe impl<T: Copy + Send> Sync for SeqSnapshot<T> {}
unsafe impl<T: Copy + Send> Send for SeqSnapshot<T> {}

impl<T: Copy> SeqSnapshot<T> {
    /// Creates a cell holding `initial`.
    pub fn new(initial: T) -> Self {
        SeqSnapshot {
            version: AtomicU64::new(0),
            value: UnsafeCell::new(initial),
        }
    }

    /// Publishes a new value. Must only be called from the single writer
    /// thread.
    pub fn write(&self, value: T) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v % 2, 0, "concurrent writers on SeqSnapshot");
        // Enter the critical section: odd version.
        self.version.store(v + 1, Ordering::Release);
        // Order the version bump before the data write.
        std::sync::atomic::fence(Ordering::Release);
        // SAFETY: single writer; readers validate versions and discard
        // anything read while the version was odd or changed.
        unsafe {
            *self.value.get() = value;
        }
        // Order the data write before the closing version bump.
        self.version.store(v + 2, Ordering::Release);
    }

    /// Returns a consistent copy of the current value (retrying while a
    /// write is in flight).
    pub fn read(&self) -> T {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: we copy the bytes and validate afterwards; a torn
            // copy is discarded by the version check. T: Copy means no
            // drop/ownership hazards in the copy itself.
            let value = unsafe { std::ptr::read_volatile(self.value.get()) };
            std::sync::atomic::fence(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 {
                return value;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Triple {
        a: u64,
        b: u64,
        c: u64,
    }

    #[test]
    fn read_returns_initial() {
        let s = SeqSnapshot::new(Triple { a: 1, b: 2, c: 3 });
        assert_eq!(s.read(), Triple { a: 1, b: 2, c: 3 });
    }

    #[test]
    fn write_then_read() {
        let s = SeqSnapshot::new(Triple { a: 0, b: 0, c: 0 });
        s.write(Triple { a: 7, b: 8, c: 9 });
        assert_eq!(s.read(), Triple { a: 7, b: 8, c: 9 });
    }

    #[test]
    fn concurrent_reads_are_never_torn() {
        // The writer always keeps a = b = c; readers must never observe a
        // mixed triple.
        let s = Arc::new(SeqSnapshot::new(Triple { a: 0, b: 0, c: 0 }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    s.write(Triple { a: i, b: i, c: i });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..200_000 {
                        let t = s.read();
                        assert!(t.a == t.b && t.b == t.c, "torn read: {t:?}");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn monotonic_writes_are_monotonic_reads() {
        let s = Arc::new(SeqSnapshot::new(0u64));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 1..=100_000u64 {
                    s.write(i);
                }
            })
        };
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..100_000 {
                    let v = s.read();
                    assert!(v >= last, "went backwards: {v} < {last}");
                    last = v;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }
}
