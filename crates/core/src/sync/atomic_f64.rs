//! An atomic `f64` built on `AtomicU64` bit-casting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic `f64` cell.
///
/// This is the `atomic est` variable of the composable Θ sketch
/// (Algorithm 1 line 4): the single word through which a merge result
/// becomes visible to queries, making the write the operation's
/// linearisation point.
///
/// # Examples
///
/// ```
/// use fcds_core::sync::AtomicF64;
///
/// let est = AtomicF64::new(0.0);
/// est.store(1234.5);
/// assert_eq!(est.load(), 1234.5);
/// ```
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new cell holding `value`.
    pub fn new(value: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Atomically reads the value (acquire ordering: everything the writer
    /// did before its release store is visible afterwards).
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Atomically writes the value (release ordering).
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Release);
    }

    /// Atomically swaps the value, returning the previous one.
    #[inline]
    pub fn swap(&self, value: f64) -> f64 {
        f64::from_bits(self.bits.swap(value.to_bits(), Ordering::AcqRel))
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        AtomicF64::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_values() {
        let a = AtomicF64::new(0.0);
        for v in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -123.25] {
            a.store(v);
            assert_eq!(a.load().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn preserves_nan_bits() {
        let a = AtomicF64::new(f64::NAN);
        assert!(a.load().is_nan());
    }

    #[test]
    fn swap_returns_previous() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.swap(2.0), 1.0);
        assert_eq!(a.load(), 2.0);
    }

    #[test]
    fn concurrent_readers_see_some_written_value() {
        let a = Arc::new(AtomicF64::new(0.0));
        let writer = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                for i in 0..100_000u64 {
                    a.store(i as f64);
                }
            })
        };
        let reader = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                for _ in 0..100_000 {
                    let v = a.load();
                    // Never a torn value: always an integral written value.
                    assert_eq!(v, v.trunc());
                    assert!((0.0..100_000.0).contains(&v));
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }
}
