//! Synchronisation primitives underpinning Algorithm 2.
//!
//! The paper's model (§2) assumes a non-sequentially-consistent shared
//! memory with explicitly declared atomic variables whose reads and writes
//! are guarded by memory fences. This module provides the concrete Rust
//! counterparts:
//!
//! * [`AtomicF64`] — the atomic `est` variable of the composable Θ sketch
//!   (Algorithm 1, line 4): a `u64`-backed atomic holding `f64` bits.
//! * [`SeqSnapshot`] — a single-writer seqlock over a small `Copy` record,
//!   implementing the "double collect of the relevant state" the paper
//!   suggests for snapshots of multi-word sketch state (§5.1).
//! * [`EpochCell`] — an atomically swappable `Arc` published with
//!   release/acquire semantics and reclaimed through crossbeam's epoch GC;
//!   used to publish Quantiles/HLL snapshots. A pointer store is a single
//!   atomic write, preserving the strong-linearisability argument.
//! * [`PropSlot`] — the per-worker hand-off cell realising the `prop_i`
//!   protocol between update threads and the propagator (Algorithm 2,
//!   lines 110–129), including the double-buffer (`cur_i`) optimisation.
//!
//! All `unsafe` in the workspace is confined to this module and guarded by
//! the protocol invariants documented on each type.

mod atomic_f64;
mod epoch_cell;
mod prop_slot;
mod seq_snapshot;

pub use atomic_f64::AtomicF64;
pub use epoch_cell::EpochCell;
pub use prop_slot::{PropSlot, PROP_PENDING};
pub use seq_snapshot::SeqSnapshot;
