//! Atomically swappable shared pointer with epoch-based reclamation.

use crossbeam::epoch::{self, Atomic, Owned};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A cell holding an `Arc<T>` that publishers swap atomically and any
/// number of readers load concurrently.
///
/// The pointer store is one atomic word write, so publishing a snapshot
/// through an `EpochCell` keeps the strong-linearisability argument of the
/// paper intact (the store is the linearisation point of the merge, the
/// load that of the snapshot). Old snapshots are reclaimed through
/// crossbeam's epoch GC once no reader can still hold a raw reference.
///
/// Stores are swap-based, so *concurrent* publishers are memory-safe too
/// (each swap retires exactly the pointer it displaced; last writer
/// wins) — the engine's propagation path has a single publisher per
/// cell, but e.g. the sharded Quantiles merged-reader cache refreshes
/// from whichever query thread notices staleness first.
///
/// # Examples
///
/// ```
/// use fcds_core::sync::EpochCell;
///
/// let cell = EpochCell::new(vec![1, 2, 3]);
/// assert_eq!(*cell.load(), vec![1, 2, 3]);
/// cell.store(vec![4]);
/// assert_eq!(*cell.load(), vec![4]);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    inner: Atomic<Arc<T>>,
}

impl<T: Send + Sync + 'static> EpochCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        EpochCell {
            inner: Atomic::new(Arc::new(value)),
        }
    }

    /// Publishes a new value, retiring the previous snapshot.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Publishes a pre-built `Arc`, retiring the previous snapshot.
    pub fn store_arc(&self, value: Arc<T>) {
        let guard = epoch::pin();
        let old = self.inner.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was the unique pointer stored in the cell; after
        // the swap no new reader can acquire it, and the epoch guard
        // defers destruction until in-flight readers are done.
        unsafe {
            guard.defer_destroy(old);
        }
    }

    /// Returns a clone of the current snapshot handle.
    pub fn load(&self) -> Arc<T> {
        let guard = epoch::pin();
        let shared = self.inner.load(Ordering::Acquire, &guard);
        // SAFETY: the cell is never null (constructed with a value; swap
        // always installs a new non-null pointer), and the pin guarantees
        // the pointee outlives this dereference.
        unsafe { Arc::clone(shared.deref()) }
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let old = self
            .inner
            .swap(crossbeam::epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !old.is_null() {
            // SAFETY: same argument as in `store`.
            unsafe {
                guard.defer_destroy(old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_stored_value() {
        let c = EpochCell::new(10u64);
        assert_eq!(*c.load(), 10);
        c.store(20);
        assert_eq!(*c.load(), 20);
    }

    #[test]
    fn store_arc_shares() {
        let c = EpochCell::new(String::from("a"));
        let v = Arc::new(String::from("b"));
        c.store_arc(Arc::clone(&v));
        assert!(Arc::ptr_eq(&c.load(), &v));
    }

    #[test]
    fn concurrent_store_load_stress() {
        let c = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    c.store(i);
                }
                i
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..100_000 {
                        let v = *c.load();
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn high_churn_block_image_publication_reclaims_retired_snapshots() {
        // The sharded Θ path publishes a block image per merge — thousands
        // of EpochCell stores under concurrent readers. Retired images
        // must actually be reclaimed (no unbounded garbage growth), which
        // guards the crossbeam-shim's per-thread amortised epoch GC
        // against leaks on this high-churn path. Drop-counting blocks
        // observe the reclamation directly.
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtOrd};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct CountingBlock {
            payload: Vec<u64>,
        }
        impl Drop for CountingBlock {
            fn drop(&mut self) {
                DROPS.fetch_add(1, AtOrd::SeqCst);
            }
        }

        const PUBLISHES: usize = 5_000;
        let cell = Arc::new(EpochCell::new(CountingBlock {
            payload: vec![0; 64],
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checksum = 0u64;
                    let mut iters = 0u64;
                    while !stop.load(AtOrd::Relaxed) {
                        let snap = cell.load();
                        checksum ^= snap.payload[0];
                        iters += 1;
                        if iters.is_multiple_of(64) {
                            // Keep 1-CPU CI live: the readers' job is to
                            // pin epochs, not to monopolise the core.
                            std::thread::yield_now();
                        }
                    }
                    checksum
                })
            })
            .collect();
        for i in 1..=PUBLISHES as u64 {
            cell.store(CountingBlock {
                payload: vec![i; 64],
            });
        }
        stop.store(true, AtOrd::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Everything but the current value was retired; with the readers
        // unpinned, explicit collections must reclaim all of it. (The
        // crossbeam shim exposes `flush` as a deterministic collection
        // point; other tests may hold short pins concurrently, so give
        // the epoch a bounded number of chances to advance.)
        let target = PUBLISHES; // initial value + PUBLISHES stores − 1 live
        for _ in 0..10_000 {
            if DROPS.load(AtOrd::SeqCst) >= target {
                break;
            }
            crossbeam::epoch::flush();
            std::thread::yield_now();
        }
        assert_eq!(
            DROPS.load(AtOrd::SeqCst),
            target,
            "retired block images were not reclaimed"
        );
        // Dropping the cell releases the last snapshot too.
        drop(cell);
        for _ in 0..10_000 {
            if DROPS.load(AtOrd::SeqCst) > target {
                break;
            }
            crossbeam::epoch::flush();
            std::thread::yield_now();
        }
        assert_eq!(DROPS.load(AtOrd::SeqCst), target + 1);
    }

    #[test]
    fn dropping_cell_releases_value() {
        // Drop must not leak or double-free; exercised under the epoch GC.
        for _ in 0..100 {
            let c = EpochCell::new(vec![0u8; 1024]);
            c.store(vec![1u8; 1024]);
            drop(c);
        }
    }
}
