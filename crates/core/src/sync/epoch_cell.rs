//! Atomically swappable shared pointer with epoch-based reclamation.

use crossbeam::epoch::{self, Atomic, Owned};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A cell holding an `Arc<T>` that a single publisher swaps atomically and
/// any number of readers load concurrently.
///
/// The pointer store is one atomic word write, so publishing a snapshot
/// through an `EpochCell` keeps the strong-linearisability argument of the
/// paper intact (the store is the linearisation point of the merge, the
/// load that of the snapshot). Old snapshots are reclaimed through
/// crossbeam's epoch GC once no reader can still hold a raw reference.
///
/// # Examples
///
/// ```
/// use fcds_core::sync::EpochCell;
///
/// let cell = EpochCell::new(vec![1, 2, 3]);
/// assert_eq!(*cell.load(), vec![1, 2, 3]);
/// cell.store(vec![4]);
/// assert_eq!(*cell.load(), vec![4]);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    inner: Atomic<Arc<T>>,
}

impl<T: Send + Sync + 'static> EpochCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        EpochCell {
            inner: Atomic::new(Arc::new(value)),
        }
    }

    /// Publishes a new value, retiring the previous snapshot.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Publishes a pre-built `Arc`, retiring the previous snapshot.
    pub fn store_arc(&self, value: Arc<T>) {
        let guard = epoch::pin();
        let old = self.inner.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was the unique pointer stored in the cell; after
        // the swap no new reader can acquire it, and the epoch guard
        // defers destruction until in-flight readers are done.
        unsafe {
            guard.defer_destroy(old);
        }
    }

    /// Returns a clone of the current snapshot handle.
    pub fn load(&self) -> Arc<T> {
        let guard = epoch::pin();
        let shared = self.inner.load(Ordering::Acquire, &guard);
        // SAFETY: the cell is never null (constructed with a value; swap
        // always installs a new non-null pointer), and the pin guarantees
        // the pointee outlives this dereference.
        unsafe { Arc::clone(shared.deref()) }
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let old = self
            .inner
            .swap(crossbeam::epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !old.is_null() {
            // SAFETY: same argument as in `store`.
            unsafe {
                guard.defer_destroy(old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_stored_value() {
        let c = EpochCell::new(10u64);
        assert_eq!(*c.load(), 10);
        c.store(20);
        assert_eq!(*c.load(), 20);
    }

    #[test]
    fn store_arc_shares() {
        let c = EpochCell::new(String::from("a"));
        let v = Arc::new(String::from("b"));
        c.store_arc(Arc::clone(&v));
        assert!(Arc::ptr_eq(&c.load(), &v));
    }

    #[test]
    fn concurrent_store_load_stress() {
        let c = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    c.store(i);
                }
                i
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..100_000 {
                        let v = *c.load();
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn dropping_cell_releases_value() {
        // Drop must not leak or double-free; exercised under the epoch GC.
        for _ in 0..100 {
            let c = EpochCell::new(vec![0u8; 1024]);
            c.store(vec![1u8; 1024]);
            drop(c);
        }
    }
}
