//! The per-worker hand-off cell implementing Algorithm 2's `prop_i`
//! protocol with double buffering (`localS_i[2]` / `cur_i`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// The distinguished `prop` value signalling "propagation requested"
/// (Algorithm 2 initialises `prop_i` to a non-zero hint and the worker
/// stores 0 to request a merge).
pub const PROP_PENDING: u64 = 0;

/// Shared state between one update thread (the *worker*) and the
/// propagator thread `t0`, realising lines 110–129 of Algorithm 2.
///
/// # Protocol
///
/// The slot holds two buffers. At any moment the worker exclusively owns
/// `buffers[cur]` and fills it with updates. Ownership of the *other*
/// buffer depends on `prop`:
///
/// * `prop != PROP_PENDING` — the propagator is done: `buffers[1−cur]` is
///   merged and cleared, and `prop` carries the piggy-backed hint
///   (line 115). The worker may flip `cur` and hand the filled buffer off.
/// * `prop == PROP_PENDING` — a hand-off is in flight: `buffers[1−cur]`
///   belongs to the propagator, which will merge it, clear it, and store
///   the new hint into `prop`.
///
/// The worker's hand-off (line 126–129) stores `cur` *before* the release
/// store of `PROP_PENDING` into `prop`; the propagator's acquire load of
/// `prop` therefore observes both the new `cur` and every buffer write
/// that preceded the hand-off. Symmetrically, the propagator's release
/// store of the hint publishes the cleared buffer back to the worker.
/// This pair of fences is exactly the synchronisation cost the paper
/// amortises over `b` updates (§5.2).
///
/// # Safety
///
/// The `unsafe` buffer accessors must be called in accordance with the
/// ownership rules above; the engine (`runtime` module) is the only
/// caller. Violations are caught probabilistically by the stress tests
/// below and deterministically by the relaxation checker in
/// `fcds-relaxation`.
#[derive(Debug)]
pub struct PropSlot<L> {
    prop: AtomicU64,
    cur: AtomicUsize,
    retired: AtomicBool,
    buffers: [UnsafeCell<L>; 2],
}

// SAFETY: the buffers are accessed under the single-owner protocol
// documented above; `L: Send` suffices because at most one thread touches
// a given buffer at a time and ownership transfer is fenced by `prop`.
unsafe impl<L: Send> Sync for PropSlot<L> {}

impl<L> PropSlot<L> {
    /// Creates a slot whose two buffers start as `a` and `b`, with the
    /// initial hint `initial_hint` (must not equal [`PROP_PENDING`]).
    pub fn new(a: L, b: L, initial_hint: u64) -> Self {
        assert_ne!(initial_hint, PROP_PENDING, "hint must be non-zero");
        PropSlot {
            prop: AtomicU64::new(initial_hint),
            cur: AtomicUsize::new(0),
            retired: AtomicBool::new(false),
            buffers: [UnsafeCell::new(a), UnsafeCell::new(b)],
        }
    }

    // ---------------- worker side ----------------

    /// Current `prop` value: `None` while a propagation is pending,
    /// `Some(hint)` once the propagator has completed (line 125's wait
    /// condition).
    #[inline]
    pub fn propagation_result(&self) -> Option<u64> {
        match self.prop.load(Ordering::Acquire) {
            PROP_PENDING => None,
            hint => Some(hint),
        }
    }

    /// Grants the worker mutable access to its current buffer.
    ///
    /// # Safety
    ///
    /// `cur` must be the worker's current buffer index (the value it last
    /// handed to [`Self::hand_off`], or 0 initially), and the caller must
    /// be the unique worker thread of this slot.
    #[inline]
    pub unsafe fn with_worker_buffer<R>(&self, cur: usize, f: impl FnOnce(&mut L) -> R) -> R {
        f(&mut *self.buffers[cur].get())
    }

    /// Hands the buffer `1 − new_cur` (the one just filled) to the
    /// propagator and makes `new_cur` the worker's buffer (lines 126–129).
    ///
    /// # Safety
    ///
    /// Must only be called by the worker thread, and only when
    /// [`Self::propagation_result`] returned `Some` (i.e., the propagator
    /// is not using any buffer).
    #[inline]
    pub unsafe fn hand_off(&self, new_cur: usize) {
        debug_assert!(new_cur < 2);
        debug_assert_ne!(self.prop.load(Ordering::Relaxed), PROP_PENDING);
        self.cur.store(new_cur, Ordering::Relaxed);
        self.prop.store(PROP_PENDING, Ordering::Release);
    }

    /// Marks this worker as finished; the propagator drops the slot from
    /// its round after any final pending merge completes.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    // ---------------- propagator side ----------------

    /// If a propagation is requested, returns the index of the buffer the
    /// propagator now owns (`1 − cur`).
    #[inline]
    pub fn pending_buffer(&self) -> Option<usize> {
        if self.prop.load(Ordering::Acquire) == PROP_PENDING {
            Some(1 - self.cur.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Grants the propagator mutable access to the buffer returned by
    /// [`Self::pending_buffer`].
    ///
    /// # Safety
    ///
    /// `idx` must come from a [`Self::pending_buffer`] call on this slot
    /// that returned `Some` since the last [`Self::complete_propagation`],
    /// and the caller must be the unique propagator thread.
    #[inline]
    pub unsafe fn with_propagator_buffer<R>(&self, idx: usize, f: impl FnOnce(&mut L) -> R) -> R {
        f(&mut *self.buffers[idx].get())
    }

    /// Completes a propagation: returns buffer ownership to the worker and
    /// piggy-backs the new hint (line 115). `hint` must not be
    /// [`PROP_PENDING`].
    #[inline]
    pub fn complete_propagation(&self, hint: u64) {
        debug_assert_ne!(hint, PROP_PENDING);
        self.prop.store(hint, Ordering::Release);
    }

    /// Whether the worker has retired this slot.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Drives the full protocol: a worker pushes `n` items in batches of
    /// `b` through a `Vec<u64>` double buffer while a propagator drains
    /// them. Every item must arrive exactly once, in batches that respect
    /// the buffer bound.
    ///
    /// The wait loops use a yielding `Backoff` (as the real engine does):
    /// a raw `spin_loop` burns a full scheduler quantum per hand-off when
    /// the two threads time-slice on one core, which turns these tests
    /// into minutes of wall clock on a 1-CPU CI container.
    fn run_protocol(n: u64, b: usize) {
        let slot = Arc::new(PropSlot::new(Vec::<u64>::new(), Vec::new(), u64::MAX));
        let done = Arc::new(AtomicBool::new(false));

        let propagator = {
            let slot = Arc::clone(&slot);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut received: Vec<u64> = Vec::new();
                let backoff = crossbeam::utils::Backoff::new();
                loop {
                    if let Some(idx) = slot.pending_buffer() {
                        // SAFETY: idx from pending_buffer; single propagator.
                        unsafe {
                            slot.with_propagator_buffer(idx, |buf| {
                                assert!(buf.len() <= b, "batch exceeded b");
                                received.append(buf);
                            });
                        }
                        slot.complete_propagation(u64::MAX);
                        backoff.reset();
                    } else if done.load(Ordering::Acquire) && slot.pending_buffer().is_none() {
                        break;
                    } else {
                        backoff.snooze();
                    }
                }
                received
            })
        };

        let await_returned = |slot: &PropSlot<Vec<u64>>| {
            let backoff = crossbeam::utils::Backoff::new();
            while slot.propagation_result().is_none() {
                backoff.snooze();
            }
        };

        // Worker.
        let mut cur = 0usize;
        let mut counter = 0usize;
        for i in 0..n {
            // SAFETY: we are the unique worker; `cur` tracks hand-offs.
            unsafe {
                slot.with_worker_buffer(cur, |buf| buf.push(i));
            }
            counter += 1;
            if counter == b {
                await_returned(&slot);
                cur = 1 - cur;
                counter = 0;
                // SAFETY: propagation_result returned Some.
                unsafe { slot.hand_off(cur) };
            }
        }
        // Final flush of the partial buffer.
        if counter > 0 {
            await_returned(&slot);
            cur = 1 - cur;
            // SAFETY: as above.
            unsafe { slot.hand_off(cur) };
        }
        // Wait for the last hand-off to be consumed before signalling done.
        await_returned(&slot);
        done.store(true, Ordering::Release);

        let received = propagator.join().unwrap();
        let expected: Vec<u64> = (0..n).collect();
        assert_eq!(received, expected, "items lost, duplicated or reordered");
    }

    #[test]
    fn protocol_delivers_every_item_exactly_once_b1() {
        run_protocol(crate::test_support::scaled(10_000), 1);
    }

    #[test]
    fn protocol_delivers_every_item_exactly_once_b16() {
        run_protocol(crate::test_support::scaled(100_000), 16);
    }

    #[test]
    fn protocol_with_partial_final_batch() {
        run_protocol(1003, 16);
    }

    #[test]
    #[should_panic(expected = "hint must be non-zero")]
    fn zero_initial_hint_rejected() {
        let _ = PropSlot::new(0u8, 0u8, PROP_PENDING);
    }

    #[test]
    fn retire_is_visible() {
        let slot = PropSlot::new(0u8, 0u8, 1);
        assert!(!slot.is_retired());
        slot.retire();
        assert!(slot.is_retired());
    }

    #[test]
    fn initial_state_carries_hint() {
        let slot = PropSlot::new(0u8, 0u8, 42);
        assert_eq!(slot.propagation_result(), Some(42));
        assert_eq!(slot.pending_buffer(), None);
    }
}
