//! The composable-sketch interface of §5.1.
//!
//! The generic algorithm is built on top of an existing sequential sketch
//! extended with three APIs:
//!
//! * `snapshot()` — a queryable copy obtainable concurrently with merges;
//! * `calcHint()` — a non-zero value piggy-backed to update threads on the
//!   `prop_i` variable;
//! * `shouldAdd(hint, a)` — a *static* pre-filter discarding updates that
//!   cannot affect the sketch (e.g., Θ-filtering), evaluated on the update
//!   thread without touching shared state.
//!
//! In Rust we split the roles along the threads that own them:
//! [`LocalSketch`] is the thread-local buffer an update thread fills
//! (`localS_i`), and [`GlobalSketch`] is the shared composable sketch
//! (`globalS`) owned by the propagator, which publishes query snapshots
//! through an explicitly synchronised *view* so that `snapshot` and
//! `merge` may run concurrently with strong linearisability (the paper's
//! requirement on composable sketches).

use std::num::NonZeroU64;

/// Encodes a hint into the non-zero `u64` carried by the `prop_i` atomic
/// (Algorithm 2 reserves 0 for "propagation requested").
pub trait HintCodec: Copy + Send + 'static {
    /// Encodes the hint; must never produce 0.
    fn encode(self) -> NonZeroU64;
    /// Decodes a hint previously produced by [`HintCodec::encode`].
    fn decode(raw: NonZeroU64) -> Self;
}

/// The trivial hint for sketches without a useful pre-filter (`shouldAdd`
/// constantly true); the paper allows exactly this degenerate choice.
impl HintCodec for () {
    fn encode(self) -> NonZeroU64 {
        NonZeroU64::new(1).expect("1 is non-zero")
    }
    fn decode(_raw: NonZeroU64) -> Self {}
}

/// Θ-style hints: the hint is the global sketch's Θ, a non-zero value in
/// the 64-bit hash domain (`normalize_hash` guarantees hashes ≥ 1, so a
/// Θ of 0 can never arise).
impl HintCodec for u64 {
    fn encode(self) -> NonZeroU64 {
        NonZeroU64::new(self).expect("theta hint must be non-zero")
    }
    fn decode(raw: NonZeroU64) -> Self {
        raw.get()
    }
}

/// A thread-local sketch (`localS_i` of Algorithm 2): filled by exactly
/// one update thread, drained by the propagator.
pub trait LocalSketch: Send + 'static {
    /// The (pre-processed) stream item type. For Θ sketches this is the
    /// already-hashed `u64`, so hashing happens once, on the update
    /// thread.
    type Item: Send + 'static;

    /// The hint type shared with the global sketch.
    type Hint: HintCodec;

    /// Buffers one item (line 122).
    fn update(&mut self, item: Self::Item);

    /// Buffers a whole batch. Semantically identical to calling
    /// [`Self::update`] per item; sketches with dense buffer layouts
    /// override it with a bulk append (e.g. Θ's `extend_from_slice`) so
    /// the engine's batched ingestion path pays one reservation per
    /// chunk instead of one push per item.
    fn update_batch(&mut self, items: &[Self::Item])
    where
        Self::Item: Clone,
    {
        for item in items {
            self.update(item.clone());
        }
    }

    /// Buffers every item of `items` that passes `shouldAdd(hint, ·)`,
    /// returning how many were buffered. Semantically identical to the
    /// filter-then-[`Self::update`] loop the scalar path runs; sketches
    /// whose items are plain hashes override it with a branchless
    /// compaction (write every candidate, advance the cursor only past
    /// survivors) followed by one reserved extend, so the hot loop
    /// carries no unpredictable branch.
    fn update_batch_filtered(&mut self, hint: Self::Hint, items: &[Self::Item]) -> usize
    where
        Self::Item: Clone,
    {
        let mut kept = 0;
        for item in items {
            if Self::should_add(hint, item) {
                self.update(item.clone());
                kept += 1;
            }
        }
        kept
    }

    /// The static pre-filter `shouldAdd(h, a)` (line 120): `false` means
    /// the item cannot affect the sketch given the hint and may be
    /// dropped before buffering. Must not depend on `self`'s state —
    /// the paper requires it to be a static function of `(hint, item)`.
    fn should_add(hint: Self::Hint, item: &Self::Item) -> bool;

    /// Empties the buffer (line 114; called by the propagator after a
    /// merge, and by the engine on abandoned shutdown).
    fn clear(&mut self);

    /// Number of buffered items.
    fn len(&self) -> usize;

    /// Whether the buffer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared composable sketch (`globalS` of Algorithm 2), owned by the
/// propagator thread in the lazy phase and briefly by update threads
/// (under the engine's mutex) during the eager phase of §5.3.
pub trait GlobalSketch: Send + 'static {
    /// The matching local-sketch type.
    type Local: LocalSketch;

    /// Shared, concurrently readable state through which snapshots are
    /// published (e.g., an atomic `est`, a seqlock record, or an epoch
    /// pointer cell).
    type View: Send + Sync + 'static;

    /// The query result type produced from a view.
    type Snapshot: Send + 'static;

    /// Creates an empty local sketch for a newly registered update thread.
    fn new_local(&self) -> Self::Local;

    /// Creates the shared view, initialised to this sketch's current
    /// state.
    fn new_view(&self) -> Self::View;

    /// Merges (and clears) a local buffer into the global state
    /// (line 113–114).
    fn merge(&mut self, local: &mut Self::Local);

    /// Directly ingests one item — the eager-propagation path of §5.3,
    /// where update threads bypass their local buffers while the stream
    /// is small.
    fn update_direct(&mut self, item: <Self::Local as LocalSketch>::Item);

    /// Publishes the current state into the view. The single atomic store
    /// inside is the linearisation point of the merge, mirroring the
    /// composable Θ sketch's write to `est`.
    fn publish(&self, view: &Self::View);

    /// Reads a consistent snapshot from the view; safe to call
    /// concurrently with `publish` (the composable-sketch requirement of
    /// §5.1).
    fn snapshot(view: &Self::View) -> Self::Snapshot;

    /// Computes the hint piggy-backed to update threads (line 115).
    fn calc_hint(&self) -> <Self::Local as LocalSketch>::Hint;

    /// Number of stream items this sketch has ingested (used by the
    /// adaptation logic of §5.3 to decide when to leave the eager phase).
    fn stream_len(&self) -> u64;

    // ------------------- sharding hooks -------------------
    //
    // The sharded engine splits the global sketch into K independent
    // instances and merges their published views at query time. The three
    // hooks below have K = 1 compatible defaults, so single-shard sketches
    // need not implement them; running with `shards > 1` requires all
    // three (the defaults panic with a description of what is missing).

    /// Creates an empty sketch configured like `self` to back one shard
    /// of a sharded engine (same accuracy parameters, same hash seed —
    /// shard merges require identical hashing).
    ///
    /// Required when `ConcurrencyConfig::shards > 1`; the default panics.
    fn new_shard(&self) -> Self
    where
        Self: Sized,
    {
        unimplemented!("GlobalSketch::new_shard is required for shards > 1")
    }

    /// Called once per shard (including shard 0) when the engine starts
    /// with `shards > 1`, before the first publication. Lets the sketch
    /// set up state it only needs for sharded publication — e.g. the Θ
    /// sketch's chunked copy-on-write hash mirror — so single-shard
    /// deployments pay nothing for it. Default: no-op.
    fn prepare_sharded(&mut self) {}

    /// Publishes the current state into the view *including* whatever
    /// mergeable image [`Self::merge_shard_views`] needs. Called instead
    /// of [`Self::publish`] whenever the engine runs more than one shard,
    /// so single-shard deployments never pay for the image.
    fn publish_sharded(&self, view: &Self::View) {
        self.publish(view);
    }

    /// Produces one engine-level query snapshot from the published views
    /// of all shards. Sketch mergeability (Θ unions, HLL register max,
    /// Quantiles sample union, counter addition) makes this lossless: the
    /// merged snapshot reflects the concatenation of the shard streams.
    ///
    /// Called with `views.len() >= 2` only when sharded; the default
    /// handles the single-view case by delegating to [`Self::snapshot`]
    /// and panics otherwise.
    fn merge_shard_views(views: &[&Self::View]) -> Self::Snapshot {
        assert_eq!(
            views.len(),
            1,
            "GlobalSketch::merge_shard_views is required for shards > 1"
        );
        Self::snapshot(views[0])
    }
}

/// Branchless filter-append shared by the hash-buffer locals (Θ, HLL):
/// compacts the survivors of `keep` into a stack chunk — every candidate
/// is written, the cursor advances only past survivors, so the loop has
/// no data-dependent branch — then appends each chunk to `buf` with one
/// reserved extend. Returns the number appended.
#[inline]
pub(crate) fn extend_compact_u64(
    buf: &mut Vec<u64>,
    items: &[u64],
    keep: impl Fn(u64) -> bool,
) -> usize {
    const CHUNK: usize = 64;
    let start = buf.len();
    for chunk in items.chunks(CHUNK) {
        let mut tmp = [0u64; CHUNK];
        let mut w = 0usize;
        for &h in chunk {
            tmp[w] = h;
            w += keep(h) as usize;
        }
        buf.extend_from_slice(&tmp[..w]);
    }
    buf.len() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hint_round_trips() {
        let raw = ().encode();
        assert_eq!(raw.get(), 1);
        <() as HintCodec>::decode(raw);
    }

    #[test]
    fn u64_hint_round_trips() {
        for v in [1u64, 42, u64::MAX] {
            let raw = v.encode();
            assert_eq!(u64::decode(raw), v);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn u64_zero_hint_panics() {
        let _ = 0u64.encode();
    }

    #[test]
    fn compaction_matches_a_plain_filter() {
        // Lengths straddling the chunk size, predicates from
        // drop-everything to keep-everything.
        for n in [0usize, 1, 63, 64, 65, 200] {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37) % 97).collect();
            for bound in [0u64, 13, 50, 97] {
                let mut buf = vec![u64::MAX; 3]; // pre-existing content survives
                let kept = extend_compact_u64(&mut buf, &items, |h| h < bound);
                let expected: Vec<u64> = items.iter().copied().filter(|&h| h < bound).collect();
                assert_eq!(kept, expected.len());
                assert_eq!(&buf[..3], &[u64::MAX; 3]);
                assert_eq!(&buf[3..], &expected[..], "n={n} bound={bound}");
            }
        }
    }
}
