//! The concurrent Quantiles sketch — the paper's second instantiation
//! (§6.2).
//!
//! The Quantiles sketch has no useful pre-filter, so it uses the trivial
//! hint (`shouldAdd ≡ true`, which §5.1 explicitly allows). Snapshots are
//! published as an immutable [`QuantilesReader`] behind an epoch-managed
//! pointer cell: the pointer swap is a single atomic store (the merge's
//! linearisation point) and queries run entirely on their snapshot,
//! concurrent with further merges.
//!
//! The per-merge snapshot rebuild costs O(retained · log retained); this
//! is the price of wait-free queries on a multi-word sketch and is
//! amortised over the `b` updates of each merge. (A copy-on-write level
//! ladder would reduce it; the paper's evaluation only measures Θ
//! throughput, so we keep the simple, obviously-correct publication.)
//!
//! By Theorem 1 plus the analysis of §6.2, a query misses at most
//! `r = 2Nb` updates and therefore returns an element whose rank error is
//! at most `ε_r = ε − rε/n + r/n` — the relaxation penalty vanishes as
//! the stream grows.

use crate::composable::{GlobalSketch, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, SketchWriter};
use crate::sync::EpochCell;
use fcds_sketches::error::Result;
use fcds_sketches::oracle::{DeterministicOracle, Oracle};
use fcds_sketches::quantiles::{QuantilesReader, QuantilesSketch};
use std::cell::Cell;
use std::sync::Arc;

/// The global side: the sequential mergeable Quantiles sketch plus its
/// published reader.
pub struct QuantilesGlobal<T: Ord + Clone + Send + Sync + 'static> {
    sketch: QuantilesSketch<T>,
    /// Seed for sibling shards' deterministic oracles (§4): `None` when
    /// built around a custom oracle, which rules out `shards > 1`.
    oracle_seed: Option<u64>,
    /// Counts shards spawned off this global so each sibling gets a
    /// distinct oracle stream.
    shards_spawned: Cell<u64>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesGlobal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesGlobal")
            .field("n", &self.sketch.n())
            .finish()
    }
}

/// The local side: a plain buffer of incoming items.
#[derive(Debug)]
pub struct QuantilesLocal<T> {
    items: Vec<T>,
}

impl<T> Default for QuantilesLocal<T> {
    fn default() -> Self {
        QuantilesLocal { items: Vec::new() }
    }
}

impl<T: Ord + Clone + Send + 'static> LocalSketch for QuantilesLocal<T> {
    type Item = T;
    /// Trivial hint: the Quantiles sketch has no pre-filter (§5.1 allows
    /// `shouldAdd` to be constantly true).
    type Hint = ();

    fn update(&mut self, item: T) {
        self.items.push(item);
    }

    fn should_add(_: (), _: &T) -> bool {
        true
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> GlobalSketch for QuantilesGlobal<T> {
    type Local = QuantilesLocal<T>;
    type View = EpochCell<QuantilesReader<T>>;
    type Snapshot = Arc<QuantilesReader<T>>;

    fn new_local(&self) -> QuantilesLocal<T> {
        QuantilesLocal::default()
    }

    fn new_view(&self) -> Self::View {
        EpochCell::new(self.sketch.reader())
    }

    fn merge(&mut self, local: &mut QuantilesLocal<T>) {
        for item in local.items.drain(..) {
            self.sketch.update(item);
        }
    }

    fn update_direct(&mut self, item: T) {
        self.sketch.update(item);
    }

    fn publish(&self, view: &Self::View) {
        view.store(self.sketch.reader());
    }

    fn snapshot(view: &Self::View) -> Arc<QuantilesReader<T>> {
        view.load()
    }

    fn merge_shard_views(views: &[&Self::View]) -> Arc<QuantilesReader<T>> {
        let readers: Vec<_> = views.iter().map(|v| v.load()).collect();
        Arc::new(QuantilesReader::merged(readers.iter().map(|a| a.as_ref())))
    }

    fn new_shard(&self) -> Self {
        let seed = self
            .oracle_seed
            .expect("sharded quantiles require a seedable oracle (ConcurrentQuantilesBuilder::oracle_seed)");
        let idx = self.shards_spawned.get() + 1;
        self.shards_spawned.set(idx);
        // Distinct oracle stream per shard: mix the shard index into the
        // seed (splitmix64 constant) so sibling compaction coin flips are
        // not correlated.
        let shard_seed = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        QuantilesGlobal {
            sketch: QuantilesSketch::new(self.sketch.k(), DeterministicOracle::new(shard_seed))
                .expect("shard parameters were already validated"),
            oracle_seed: self.oracle_seed,
            shards_spawned: Cell::new(0),
        }
    }

    fn calc_hint(&self) {}

    fn stream_len(&self) -> u64 {
        self.sketch.n()
    }
}

/// Builder for [`ConcurrentQuantilesSketch`].
#[derive(Debug, Clone)]
pub struct ConcurrentQuantilesBuilder {
    k: usize,
    oracle_seed: u64,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentQuantilesBuilder {
    fn default() -> Self {
        ConcurrentQuantilesBuilder {
            k: 128,
            oracle_seed: 0xFCD5,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentQuantilesBuilder {
    /// Starts from defaults: `k = 128`, `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sketch accuracy parameter `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Seeds the de-randomisation oracle that provides the compaction
    /// coin flips (§4).
    pub fn oracle_seed(mut self, seed: u64) -> Self {
        self.oracle_seed = seed;
        self
    }

    /// Sets the expected number of update threads `N`.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Splits the sketch into `K` shards (writers round-robined, queries
    /// merge the shards' retained samples).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch.
    pub fn build<T: Ord + Clone + Send + Sync + 'static>(
        self,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        let sketch = QuantilesSketch::new(self.k, DeterministicOracle::new(self.oracle_seed))?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: Some(self.oracle_seed),
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch { inner, k: self.k })
    }

    /// Builds around an explicit oracle. Incompatible with `shards > 1`
    /// (sibling shards need seedable oracles); use
    /// [`Self::oracle_seed`] for sharded deployments.
    pub fn build_with_oracle<T: Ord + Clone + Send + Sync + 'static>(
        self,
        oracle: impl Oracle + 'static,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        if self.config.shards > 1 {
            return Err(fcds_sketches::error::SketchError::invalid(
                "shards",
                "a custom oracle cannot seed sibling shards; use oracle_seed \
                 (build) for shards > 1",
            ));
        }
        let sketch = QuantilesSketch::new(self.k, oracle)?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: None,
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch { inner, k: self.k })
    }
}

/// Concurrent Quantiles sketch with r-relaxed PAC rank guarantees (§6.2).
///
/// # Examples
///
/// ```
/// use fcds_core::quantiles::ConcurrentQuantilesBuilder;
///
/// let sketch = ConcurrentQuantilesBuilder::new()
///     .k(128)
///     .writers(2)
///     .build::<u64>()
///     .unwrap();
/// let mut w = sketch.writer();
/// for i in 0..50_000u64 {
///     w.update(i);
/// }
/// w.flush();
/// sketch.quiesce();
/// let median = sketch.quantile(0.5).unwrap();
/// assert!((median as f64 - 25_000.0).abs() < 2_500.0);
/// ```
pub struct ConcurrentQuantilesSketch<T: Ord + Clone + Send + Sync + 'static> {
    inner: ConcurrentSketch<QuantilesGlobal<T>>,
    k: usize,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for ConcurrentQuantilesSketch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentQuantilesSketch")
            .field("k", &self.k)
            .finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> ConcurrentQuantilesSketch<T> {
    /// Shorthand for [`ConcurrentQuantilesBuilder::new`].
    pub fn builder() -> ConcurrentQuantilesBuilder {
        ConcurrentQuantilesBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> QuantilesWriter<T> {
        QuantilesWriter {
            inner: self.inner.writer(),
        }
    }

    /// Takes a wait-free snapshot of the current state; all queries on it
    /// are mutually consistent.
    pub fn snapshot(&self) -> Arc<QuantilesReader<T>> {
        self.inner.snapshot()
    }

    /// Approximate φ-quantile of the stream so far (`None` if empty).
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile(phi)
    }

    /// Approximate normalised rank of `item`.
    pub fn rank(&self, item: &T) -> f64 {
        self.snapshot().rank(item)
    }

    /// Stream length reflected by the current snapshot.
    pub fn visible_n(&self) -> u64 {
        self.snapshot().n()
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The relaxation bound `r = 2Nb`.
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// The relaxed rank-error bound `ε_r` of §6.2 at the current visible
    /// stream length.
    pub fn relaxed_epsilon(&self) -> f64 {
        let eps = fcds_sketches::quantiles::epsilon_for_k(self.k);
        fcds_sketches::quantiles::relaxed_epsilon(eps, self.relaxation(), self.visible_n())
    }

    /// Waits until all handed-off buffers have been merged and published.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }
}

/// Per-thread writer for [`ConcurrentQuantilesSketch`].
pub struct QuantilesWriter<T: Ord + Clone + Send + Sync + 'static> {
    inner: SketchWriter<QuantilesGlobal<T>>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesWriter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesWriter").finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> QuantilesWriter<T> {
    /// Processes one stream element.
    #[inline]
    pub fn update(&mut self, item: T) {
        self.inner.update(item);
    }

    /// Hands the partial local buffer to the propagator.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::quantiles::epsilon_for_k;

    #[test]
    fn empty_sketch() {
        let s = ConcurrentQuantilesBuilder::new().build::<u64>().unwrap();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.visible_n(), 0);
    }

    #[test]
    fn small_stream_eager_is_exact() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(0.04)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..100u64 {
            w.update(i);
        }
        // Eager phase: everything is immediately visible.
        assert_eq!(s.visible_n(), 100);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(99));
    }

    #[test]
    fn concurrent_rank_accuracy() {
        let k = 128;
        let s = ConcurrentQuantilesBuilder::new()
            .k(k)
            .writers(4)
            .build::<u64>()
            .unwrap();
        let n_per = crate::test_support::scaled(50_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush();
                });
            }
        });
        s.quiesce();
        let n = 4 * n_per;
        assert_eq!(s.visible_n(), n);
        let eps = epsilon_for_k(k);
        for phi in [0.1, 0.5, 0.9] {
            let v = s.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64;
            assert!(
                (true_rank - phi).abs() <= 4.0 * eps,
                "phi={phi} rank={true_rank}"
            );
        }
    }

    #[test]
    fn snapshot_is_internally_consistent_under_ingestion() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let n = crate::test_support::scaled(100_000);
        std::thread::scope(|sc| {
            for _ in 0..2 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(i);
                    }
                });
            }
            for _ in 0..200 {
                let snap = s.snapshot();
                if snap.n() == 0 {
                    continue;
                }
                // Quantiles from one snapshot must be monotone in φ.
                let q25 = snap.quantile(0.25).unwrap();
                let q50 = snap.quantile(0.5).unwrap();
                let q75 = snap.quantile(0.75).unwrap();
                assert!(q25 <= q50 && q50 <= q75);
            }
        });
    }

    #[test]
    fn visible_n_lags_by_at_most_r_after_writer_flushes() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(32)
            .writers(1)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        let n = 10_000u64;
        for i in 0..n {
            w.update(i);
        }
        // Without a flush, at most 2·b updates may be invisible
        // (one full buffer in flight + the current partial one).
        s.quiesce();
        let visible = s.visible_n();
        let r = s.relaxation();
        assert!(
            visible + r >= n,
            "visible {visible} lags more than r={r} behind {n}"
        );
        w.flush();
        s.quiesce();
        assert_eq!(s.visible_n(), n);
    }

    #[test]
    fn relaxed_epsilon_shrinks_with_stream() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(128)
            .writers(2)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..2_000u64 {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        let eps_small = s.relaxed_epsilon();
        for i in 2_000..crate::test_support::scaled(200_000) {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        let eps_large = s.relaxed_epsilon();
        assert!(eps_large < eps_small);
        assert!(eps_large < epsilon_for_k(128) + 1e-3);
    }

    #[test]
    fn sharded_rank_accuracy_and_exact_n() {
        let k = 128;
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let s = ConcurrentQuantilesBuilder::new()
                .k(k)
                .writers(4)
                .shards(2)
                .max_concurrency_error(1.0)
                .backend(backend)
                .build::<u64>()
                .unwrap();
            let n_per = crate::test_support::scaled(25_000);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in 0..n_per {
                            w.update(t * n_per + i);
                        }
                        w.flush();
                    });
                }
            });
            s.quiesce();
            let n = 4 * n_per;
            // Sample-union merge is lossless in n, and the merged reader
            // keeps the per-shard epsilon.
            assert_eq!(s.visible_n(), n);
            let eps = epsilon_for_k(k);
            for phi in [0.1, 0.5, 0.9] {
                let v = s.quantile(phi).unwrap();
                let true_rank = v as f64 / n as f64;
                assert!(
                    (true_rank - phi).abs() <= 4.0 * eps,
                    "phi={phi} rank={true_rank}"
                );
            }
        }
    }

    #[test]
    fn custom_oracle_rejects_sharding() {
        use fcds_sketches::oracle::DeterministicOracle;
        let err = ConcurrentQuantilesBuilder::new()
            .shards(2)
            .writers(2)
            .build_with_oracle::<u64>(DeterministicOracle::new(1));
        assert!(err.is_err(), "custom oracle + shards > 1 must be an Err");
    }

    #[test]
    fn works_with_total_f64() {
        use fcds_sketches::quantiles::TotalF64;
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .build::<TotalF64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000 {
            w.update(TotalF64(i as f64));
        }
        w.flush();
        s.quiesce();
        let med = s.quantile(0.5).unwrap().0;
        assert!((med - 5_000.0).abs() < 1_000.0);
    }
}
