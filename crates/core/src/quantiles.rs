//! The concurrent Quantiles sketch — the paper's second instantiation
//! (§6.2).
//!
//! The Quantiles sketch has no useful pre-filter, so it uses the trivial
//! hint (`shouldAdd ≡ true`, which §5.1 explicitly allows). Snapshots are
//! published as an immutable [`QuantilesReader`] behind an epoch-managed
//! pointer cell: the pointer swap is a single atomic store (the merge's
//! linearisation point) and queries run entirely on their snapshot,
//! concurrent with further merges.
//!
//! The per-merge snapshot rebuild costs O(retained · log retained); this
//! is the price of wait-free queries on a multi-word sketch and is
//! amortised over the `b` updates of each merge. (A copy-on-write level
//! ladder would reduce it; the paper's evaluation only measures Θ
//! throughput, so we keep the simple, obviously-correct publication.)
//! Sharded *queries*, however, no longer pay a merge-of-readers rebuild
//! per call: each shard view carries a publication version and the
//! engine memoises the merged reader until some shard republishes
//! ([`ConcurrentQuantilesSketch::snapshot`]).
//!
//! By Theorem 1 plus the analysis of §6.2, a query misses at most
//! `r = 2Nb` updates and therefore returns an element whose rank error is
//! at most `ε_r = ε − rε/n + r/n` — the relaxation penalty vanishes as
//! the stream grows.

use crate::composable::{GlobalSketch, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, SketchWriter};
use crate::sync::EpochCell;
use fcds_sketches::error::Result;
use fcds_sketches::oracle::{DeterministicOracle, Oracle};
use fcds_sketches::quantiles::{QuantilesReader, QuantilesSketch};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The global side: the sequential mergeable Quantiles sketch plus its
/// published reader.
pub struct QuantilesGlobal<T: Ord + Clone + Send + Sync + 'static> {
    sketch: QuantilesSketch<T>,
    /// Seed for sibling shards' deterministic oracles (§4): `None` when
    /// built around a custom oracle, which rules out `shards > 1`.
    oracle_seed: Option<u64>,
    /// Counts shards spawned off this global so each sibling gets a
    /// distinct oracle stream.
    shards_spawned: Cell<u64>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesGlobal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesGlobal")
            .field("n", &self.sketch.n())
            .finish()
    }
}

/// The local side: a plain buffer of incoming items.
#[derive(Debug)]
pub struct QuantilesLocal<T> {
    items: Vec<T>,
}

impl<T> Default for QuantilesLocal<T> {
    fn default() -> Self {
        QuantilesLocal { items: Vec::new() }
    }
}

impl<T: Ord + Clone + Send + 'static> LocalSketch for QuantilesLocal<T> {
    type Item = T;
    /// Trivial hint: the Quantiles sketch has no pre-filter (§5.1 allows
    /// `shouldAdd` to be constantly true).
    type Hint = ();

    fn update(&mut self, item: T) {
        self.items.push(item);
    }

    fn should_add(_: (), _: &T) -> bool {
        true
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// The published view of one Quantiles shard: the epoch-managed reader
/// plus a monotone *publication version*.
///
/// The version is what makes the engine-level merged-reader cache cheap
/// and correct: a query compares the shards' versions against the cached
/// merge's key and rebuilds the O(retained · log retained) merged reader
/// only when some shard actually republished — instead of on every call.
/// The publisher stores the reader *before* bumping the version
/// (release), so a reader loaded after an observed version is at least
/// as fresh as that version.
#[derive(Debug)]
pub struct QuantilesView<T: Ord + Clone + Send + Sync + 'static> {
    reader: EpochCell<QuantilesReader<T>>,
    version: AtomicU64,
}

impl<T: Ord + Clone + Send + Sync + 'static> QuantilesView<T> {
    /// The current publication version (bumped on every reader store).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The currently published reader.
    pub fn reader(&self) -> Arc<QuantilesReader<T>> {
        self.reader.load()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> GlobalSketch for QuantilesGlobal<T> {
    type Local = QuantilesLocal<T>;
    type View = QuantilesView<T>;
    type Snapshot = Arc<QuantilesReader<T>>;

    fn new_local(&self) -> QuantilesLocal<T> {
        QuantilesLocal::default()
    }

    fn new_view(&self) -> Self::View {
        QuantilesView {
            reader: EpochCell::new(self.sketch.reader()),
            version: AtomicU64::new(0),
        }
    }

    fn merge(&mut self, local: &mut QuantilesLocal<T>) {
        for item in local.items.drain(..) {
            self.sketch.update(item);
        }
    }

    fn update_direct(&mut self, item: T) {
        self.sketch.update(item);
    }

    fn publish(&self, view: &Self::View) {
        view.reader.store(self.sketch.reader());
        view.version.fetch_add(1, Ordering::Release);
    }

    fn snapshot(view: &Self::View) -> Arc<QuantilesReader<T>> {
        view.reader.load()
    }

    fn merge_shard_views(views: &[&Self::View]) -> Arc<QuantilesReader<T>> {
        let readers: Vec<_> = views.iter().map(|v| v.reader.load()).collect();
        Arc::new(QuantilesReader::merged(readers.iter().map(|a| a.as_ref())))
    }

    fn new_shard(&self) -> Self {
        let seed = self
            .oracle_seed
            .expect("sharded quantiles require a seedable oracle (ConcurrentQuantilesBuilder::oracle_seed)");
        let idx = self.shards_spawned.get() + 1;
        self.shards_spawned.set(idx);
        // Distinct oracle stream per shard: mix the shard index into the
        // seed (splitmix64 constant) so sibling compaction coin flips are
        // not correlated.
        let shard_seed = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        QuantilesGlobal {
            sketch: QuantilesSketch::new(self.sketch.k(), DeterministicOracle::new(shard_seed))
                .expect("shard parameters were already validated"),
            oracle_seed: self.oracle_seed,
            shards_spawned: Cell::new(0),
        }
    }

    fn calc_hint(&self) {}

    fn stream_len(&self) -> u64 {
        self.sketch.n()
    }
}

/// Builder for [`ConcurrentQuantilesSketch`].
#[derive(Debug, Clone)]
pub struct ConcurrentQuantilesBuilder {
    k: usize,
    oracle_seed: u64,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentQuantilesBuilder {
    fn default() -> Self {
        ConcurrentQuantilesBuilder {
            k: 128,
            oracle_seed: 0xFCD5,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentQuantilesBuilder {
    /// Starts from defaults: `k = 128`, `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sketch accuracy parameter `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Seeds the de-randomisation oracle that provides the compaction
    /// coin flips (§4).
    pub fn oracle_seed(mut self, seed: u64) -> Self {
        self.oracle_seed = seed;
        self
    }

    /// Sets the expected number of update threads `N`.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Splits the sketch into `K` shards (writers round-robined, queries
    /// merge the shards' retained samples).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch.
    pub fn build<T: Ord + Clone + Send + Sync + 'static>(
        self,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        let sketch = QuantilesSketch::new(self.k, DeterministicOracle::new(self.oracle_seed))?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: Some(self.oracle_seed),
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch::wrap(inner, self.k))
    }

    /// Builds around an explicit oracle. Incompatible with `shards > 1`
    /// (sibling shards need seedable oracles); use
    /// [`Self::oracle_seed`] for sharded deployments.
    pub fn build_with_oracle<T: Ord + Clone + Send + Sync + 'static>(
        self,
        oracle: impl Oracle + 'static,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        if self.config.shards > 1 {
            return Err(fcds_sketches::error::SketchError::invalid(
                "shards",
                "a custom oracle cannot seed sibling shards; use oracle_seed \
                 (build) for shards > 1",
            ));
        }
        let sketch = QuantilesSketch::new(self.k, oracle)?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: None,
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch::wrap(inner, self.k))
    }
}

/// Concurrent Quantiles sketch with r-relaxed PAC rank guarantees (§6.2).
///
/// # Examples
///
/// ```
/// use fcds_core::quantiles::ConcurrentQuantilesBuilder;
///
/// let sketch = ConcurrentQuantilesBuilder::new()
///     .k(128)
///     .writers(2)
///     .build::<u64>()
///     .unwrap();
/// let mut w = sketch.writer();
/// for i in 0..50_000u64 {
///     w.update(i);
/// }
/// w.flush();
/// sketch.quiesce();
/// let median = sketch.quantile(0.5).unwrap();
/// assert!((median as f64 - 25_000.0).abs() < 2_500.0);
/// ```
pub struct ConcurrentQuantilesSketch<T: Ord + Clone + Send + Sync + 'static> {
    inner: ConcurrentSketch<QuantilesGlobal<T>>,
    k: usize,
    /// Memoised merged reader for sharded queries, keyed by the shards'
    /// publication versions at build time. Rebuilt only when some shard
    /// republished; any thread may refresh it (EpochCell stores are
    /// swap-based, so concurrent refreshes are safe — last writer wins
    /// and a stale key only causes one redundant rebuild).
    merged_cache: EpochCell<MergedQuantiles<T>>,
}

/// A cached merged reader tagged with the per-shard publication versions
/// it was built from.
struct MergedQuantiles<T: Ord + Clone> {
    versions: Vec<u64>,
    reader: Arc<QuantilesReader<T>>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for ConcurrentQuantilesSketch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentQuantilesSketch")
            .field("k", &self.k)
            .finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> ConcurrentQuantilesSketch<T> {
    fn wrap(inner: ConcurrentSketch<QuantilesGlobal<T>>, k: usize) -> Self {
        ConcurrentQuantilesSketch {
            inner,
            k,
            // The empty version key never matches a real K ≥ 1 version
            // vector, so the first sharded query builds the cache.
            merged_cache: EpochCell::new(MergedQuantiles {
                versions: Vec::new(),
                reader: Arc::new(QuantilesReader::merged(std::iter::empty())),
            }),
        }
    }

    /// Shorthand for [`ConcurrentQuantilesBuilder::new`].
    pub fn builder() -> ConcurrentQuantilesBuilder {
        ConcurrentQuantilesBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> QuantilesWriter<T> {
        QuantilesWriter {
            inner: self.inner.writer(),
        }
    }

    /// Takes a wait-free snapshot of the current state; all queries on it
    /// are mutually consistent.
    ///
    /// With `K > 1` shards the merged reader is memoised per publication
    /// version: the O(retained · log retained) rebuild runs only when
    /// some shard republished since the last query, not on every call.
    pub fn snapshot(&self) -> Arc<QuantilesReader<T>> {
        if self.inner.shard_count() == 1 {
            return self.inner.snapshot();
        }
        // Versions first (acquire), then readers: the readers are then at
        // least as fresh as the key, so a cache hit can never serve data
        // older than the key promises.
        let versions: Vec<u64> = self.inner.shard_views().map(|v| v.version()).collect();
        let cached = self.merged_cache.load();
        if cached.versions == versions {
            return Arc::clone(&cached.reader);
        }
        let readers: Vec<_> = self.inner.shard_views().map(|v| v.reader()).collect();
        let reader = Arc::new(QuantilesReader::merged(readers.iter().map(|a| a.as_ref())));
        self.merged_cache.store(MergedQuantiles {
            versions,
            reader: Arc::clone(&reader),
        });
        reader
    }

    /// Approximate φ-quantile of the stream so far (`None` if empty).
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile(phi)
    }

    /// Approximate normalised rank of `item`.
    pub fn rank(&self, item: &T) -> f64 {
        self.snapshot().rank(item)
    }

    /// Stream length reflected by the current snapshot.
    pub fn visible_n(&self) -> u64 {
        self.snapshot().n()
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The relaxation bound `r = 2Nb`.
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// The relaxed rank-error bound `ε_r` of §6.2 at the current visible
    /// stream length.
    pub fn relaxed_epsilon(&self) -> f64 {
        let eps = fcds_sketches::quantiles::epsilon_for_k(self.k);
        fcds_sketches::quantiles::relaxed_epsilon(eps, self.relaxation(), self.visible_n())
    }

    /// Waits until all handed-off buffers have been merged and published.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }
}

/// Per-thread writer for [`ConcurrentQuantilesSketch`].
pub struct QuantilesWriter<T: Ord + Clone + Send + Sync + 'static> {
    inner: SketchWriter<QuantilesGlobal<T>>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesWriter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesWriter").finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> QuantilesWriter<T> {
    /// Processes one stream element.
    #[inline]
    pub fn update(&mut self, item: T) {
        self.inner.update(item);
    }

    /// Hands the partial local buffer to the propagator.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::quantiles::epsilon_for_k;

    #[test]
    fn empty_sketch() {
        let s = ConcurrentQuantilesBuilder::new().build::<u64>().unwrap();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.visible_n(), 0);
    }

    #[test]
    fn small_stream_eager_is_exact() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(0.04)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..100u64 {
            w.update(i);
        }
        // Eager phase: everything is immediately visible.
        assert_eq!(s.visible_n(), 100);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(99));
    }

    #[test]
    fn concurrent_rank_accuracy() {
        let k = 128;
        let s = ConcurrentQuantilesBuilder::new()
            .k(k)
            .writers(4)
            .build::<u64>()
            .unwrap();
        let n_per = crate::test_support::scaled(50_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush();
                });
            }
        });
        s.quiesce();
        let n = 4 * n_per;
        assert_eq!(s.visible_n(), n);
        let eps = epsilon_for_k(k);
        for phi in [0.1, 0.5, 0.9] {
            let v = s.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64;
            assert!(
                (true_rank - phi).abs() <= 4.0 * eps,
                "phi={phi} rank={true_rank}"
            );
        }
    }

    #[test]
    fn snapshot_is_internally_consistent_under_ingestion() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let n = crate::test_support::scaled(100_000);
        std::thread::scope(|sc| {
            for _ in 0..2 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(i);
                    }
                });
            }
            for _ in 0..200 {
                let snap = s.snapshot();
                if snap.n() == 0 {
                    continue;
                }
                // Quantiles from one snapshot must be monotone in φ.
                let q25 = snap.quantile(0.25).unwrap();
                let q50 = snap.quantile(0.5).unwrap();
                let q75 = snap.quantile(0.75).unwrap();
                assert!(q25 <= q50 && q50 <= q75);
            }
        });
    }

    #[test]
    fn visible_n_lags_by_at_most_r_after_writer_flushes() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(32)
            .writers(1)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        let n = 10_000u64;
        for i in 0..n {
            w.update(i);
        }
        // Without a flush, at most 2·b updates may be invisible
        // (one full buffer in flight + the current partial one).
        s.quiesce();
        let visible = s.visible_n();
        let r = s.relaxation();
        assert!(
            visible + r >= n,
            "visible {visible} lags more than r={r} behind {n}"
        );
        w.flush();
        s.quiesce();
        assert_eq!(s.visible_n(), n);
    }

    #[test]
    fn relaxed_epsilon_shrinks_with_stream() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(128)
            .writers(2)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..2_000u64 {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        let eps_small = s.relaxed_epsilon();
        for i in 2_000..crate::test_support::scaled(200_000) {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        let eps_large = s.relaxed_epsilon();
        assert!(eps_large < eps_small);
        assert!(eps_large < epsilon_for_k(128) + 1e-3);
    }

    #[test]
    fn sharded_rank_accuracy_and_exact_n() {
        let k = 128;
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let s = ConcurrentQuantilesBuilder::new()
                .k(k)
                .writers(4)
                .shards(2)
                .max_concurrency_error(1.0)
                .backend(backend)
                .build::<u64>()
                .unwrap();
            let n_per = crate::test_support::scaled(25_000);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in 0..n_per {
                            w.update(t * n_per + i);
                        }
                        w.flush();
                    });
                }
            });
            s.quiesce();
            let n = 4 * n_per;
            // Sample-union merge is lossless in n, and the merged reader
            // keeps the per-shard epsilon.
            assert_eq!(s.visible_n(), n);
            let eps = epsilon_for_k(k);
            for phi in [0.1, 0.5, 0.9] {
                let v = s.quantile(phi).unwrap();
                let true_rank = v as f64 / n as f64;
                assert!(
                    (true_rank - phi).abs() <= 4.0 * eps,
                    "phi={phi} rank={true_rank}"
                );
            }
        }
    }

    #[test]
    fn sharded_snapshot_is_cached_until_a_shard_republishes() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .shards(2)
            .max_concurrency_error(1.0)
            .backend(PropagationBackendKind::WriterAssisted)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000u64 {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        // No shard republishes between these queries: the merged reader
        // must be the same allocation, not a fresh O(n log n) rebuild.
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "merged reader rebuilt without republication");
        // After more updates are propagated, queries must see fresh data.
        for i in 10_000..20_000u64 {
            w.update(i);
        }
        w.flush();
        s.quiesce();
        let c = s.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "cache failed to invalidate");
        assert_eq!(c.n(), 20_000);
    }

    #[test]
    fn custom_oracle_rejects_sharding() {
        use fcds_sketches::oracle::DeterministicOracle;
        let err = ConcurrentQuantilesBuilder::new()
            .shards(2)
            .writers(2)
            .build_with_oracle::<u64>(DeterministicOracle::new(1));
        assert!(err.is_err(), "custom oracle + shards > 1 must be an Err");
    }

    #[test]
    fn works_with_total_f64() {
        use fcds_sketches::quantiles::TotalF64;
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .build::<TotalF64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000 {
            w.update(TotalF64(i as f64));
        }
        w.flush();
        s.quiesce();
        let med = s.quantile(0.5).unwrap().0;
        assert!((med - 5_000.0).abs() < 1_000.0);
    }
}
