//! The concurrent Quantiles sketch — the paper's second instantiation
//! (§6.2).
//!
//! The Quantiles sketch has no useful pre-filter, so it uses the trivial
//! hint (`shouldAdd ≡ true`, which §5.1 explicitly allows). Snapshots are
//! published as an immutable [`QuantilesLadder`] behind an epoch-managed
//! pointer cell: the pointer swap is a single atomic store (the merge's
//! linearisation point) and queries run entirely on their snapshot,
//! concurrent with further merges.
//!
//! Publication is O(levels + k log k) per merge, independent of the
//! retained-sample count: the sequential sketch keeps each compaction
//! level as an immutable `Arc`'d sorted run, so taking a ladder snapshot
//! clones one `Arc` per level and sorts only the (parameter-bounded,
//! ≤ 2k) base buffer — the level-ladder analogue of the Θ sketch's
//! chunked copy-on-write block images. The O(retained · log retained)
//! flattening into a [`QuantilesReader`] moves to the query side, where
//! each shard view carries a publication version and the engine memoises
//! the flat merged reader per version *vector* (any `K`, including 1):
//! it runs once per republication observed by a query, never on the
//! propagation path ([`ConcurrentQuantilesSketch::snapshot`]).
//!
//! By Theorem 1 plus the analysis of §6.2, a query misses at most
//! `r = 2Nb` updates and therefore returns an element whose rank error is
//! at most `ε_r = ε − rε/n + r/n` — the relaxation penalty vanishes as
//! the stream grows.

use crate::composable::{GlobalSketch, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, FlushError, SketchWriter};
use crate::sync::EpochCell;
use fcds_sketches::error::Result;
use fcds_sketches::oracle::{DeterministicOracle, Oracle};
use fcds_sketches::quantiles::{QuantilesLadder, QuantilesReader, QuantilesSketch};
use fcds_sketches::wire::{WireEncode, WireItem};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The global side: the sequential mergeable Quantiles sketch plus its
/// published ladder snapshot.
pub struct QuantilesGlobal<T: Ord + Clone + Send + Sync + 'static> {
    sketch: QuantilesSketch<T>,
    /// Seed for sibling shards' deterministic oracles (§4): `None` when
    /// built around a custom oracle, which rules out `shards > 1`.
    oracle_seed: Option<u64>,
    /// Counts shards spawned off this global so each sibling gets a
    /// distinct oracle stream.
    shards_spawned: Cell<u64>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesGlobal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesGlobal")
            .field("n", &self.sketch.n())
            .finish()
    }
}

/// The local side: a plain buffer of incoming items.
#[derive(Debug)]
pub struct QuantilesLocal<T> {
    items: Vec<T>,
}

impl<T> Default for QuantilesLocal<T> {
    fn default() -> Self {
        QuantilesLocal { items: Vec::new() }
    }
}

impl<T: Ord + Clone + Send + 'static> LocalSketch for QuantilesLocal<T> {
    type Item = T;
    /// Trivial hint: the Quantiles sketch has no pre-filter (§5.1 allows
    /// `shouldAdd` to be constantly true).
    type Hint = ();

    fn update(&mut self, item: T) {
        self.items.push(item);
    }

    fn update_batch(&mut self, items: &[T]) {
        self.items.extend_from_slice(items);
    }

    /// `shouldAdd` is constantly true here, so the filtered batch path —
    /// the one the engine takes in the default (non-ablated)
    /// configuration — is the same bulk extend.
    fn update_batch_filtered(&mut self, _hint: (), items: &[T]) -> usize {
        self.items.extend_from_slice(items);
        items.len()
    }

    fn should_add(_: (), _: &T) -> bool {
        true
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// The published view of one Quantiles shard: the epoch-managed ladder
/// snapshot plus a monotone *publication version*.
///
/// The ladder is what the propagator can afford to publish per merge
/// (O(levels) `Arc` clones); the version is what makes the engine-level
/// flat-reader cache cheap and correct: a query compares the shards'
/// versions against the cached merge's key and re-flattens the ladders
/// only when some shard actually republished — instead of on every call.
/// The publisher stores the ladder *before* bumping the version
/// (release), so a ladder loaded after an observed version is at least
/// as fresh as that version.
#[derive(Debug)]
pub struct QuantilesView<T: Ord + Clone + Send + Sync + 'static> {
    ladder: EpochCell<QuantilesLadder<T>>,
    version: AtomicU64,
}

impl<T: Ord + Clone + Send + Sync + 'static> QuantilesView<T> {
    /// The current publication version (bumped on every ladder store).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The currently published ladder snapshot.
    pub fn ladder(&self) -> Arc<QuantilesLadder<T>> {
        self.ladder.load()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> GlobalSketch for QuantilesGlobal<T> {
    type Local = QuantilesLocal<T>;
    type View = QuantilesView<T>;
    type Snapshot = Arc<QuantilesReader<T>>;

    fn new_local(&self) -> QuantilesLocal<T> {
        QuantilesLocal::default()
    }

    fn new_view(&self) -> Self::View {
        QuantilesView {
            ladder: EpochCell::new(self.sketch.ladder()),
            version: AtomicU64::new(0),
        }
    }

    fn merge(&mut self, local: &mut QuantilesLocal<T>) {
        for item in local.items.drain(..) {
            self.sketch.update(item);
        }
    }

    fn update_direct(&mut self, item: T) {
        self.sketch.update(item);
    }

    fn publish(&self, view: &Self::View) {
        view.ladder.store(self.sketch.ladder());
        view.version.fetch_add(1, Ordering::Release);
    }

    /// The uncached reference path: flattens the published ladder on
    /// every call. [`ConcurrentQuantilesSketch::snapshot`] bypasses this
    /// with its per-version-vector memoisation.
    fn snapshot(view: &Self::View) -> Arc<QuantilesReader<T>> {
        Arc::new(view.ladder.load().flatten())
    }

    fn merge_shard_views(views: &[&Self::View]) -> Arc<QuantilesReader<T>> {
        let ladders: Vec<_> = views.iter().map(|v| v.ladder.load()).collect();
        Arc::new(QuantilesReader::from_ladders(
            ladders.iter().map(|a| a.as_ref()),
        ))
    }

    fn new_shard(&self) -> Self {
        let seed = self.oracle_seed.expect(
            "sharded quantiles require a seedable oracle (ConcurrentQuantilesBuilder::oracle_seed)",
        );
        let idx = self.shards_spawned.get() + 1;
        self.shards_spawned.set(idx);
        // Distinct oracle stream per shard: mix the shard index into the
        // seed (splitmix64 constant) so sibling compaction coin flips are
        // not correlated.
        let shard_seed = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        QuantilesGlobal {
            sketch: QuantilesSketch::new(self.sketch.k(), DeterministicOracle::new(shard_seed))
                .expect("shard parameters were already validated"),
            oracle_seed: self.oracle_seed,
            shards_spawned: Cell::new(0),
        }
    }

    /// Nothing to set up for sharded publication: the persistent level
    /// ladder *is* the copy-on-write mirror (unlike Θ, whose
    /// [`prepare_sharded`](GlobalSketch::prepare_sharded) enables a
    /// separate block mirror), so single- and multi-shard deployments
    /// publish through the same O(levels) path and `publish_sharded`
    /// keeps its `publish` default.
    fn prepare_sharded(&mut self) {}

    fn calc_hint(&self) {}

    fn stream_len(&self) -> u64 {
        self.sketch.n()
    }
}

/// Builder for [`ConcurrentQuantilesSketch`].
///
/// **Deprecated:** prefer the family-generic
/// [`EngineBuilder<QuantilesFamily<T>>`](crate::engine::EngineBuilder),
/// which shares one set of concurrency knobs across all four sketch
/// families. This per-family builder remains as a thin shim for one
/// release and will be removed.
#[derive(Debug, Clone)]
pub struct ConcurrentQuantilesBuilder {
    k: usize,
    oracle_seed: u64,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentQuantilesBuilder {
    fn default() -> Self {
        ConcurrentQuantilesBuilder {
            k: 128,
            oracle_seed: 0xFCD5,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentQuantilesBuilder {
    /// Starts from defaults: `k = 128`, `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the sketch accuracy parameter `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Seeds the de-randomisation oracle that provides the compaction
    /// coin flips (§4).
    pub fn oracle_seed(mut self, seed: u64) -> Self {
        self.oracle_seed = seed;
        self
    }

    /// Sets the expected number of update threads `N`.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Splits the sketch into `K` shards (writers round-robined, queries
    /// merge the shards' retained samples).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Publishes each shard's mergeable image only on every `m`-th merge
    /// (default 1; see [`ConcurrencyConfig::image_every`]). Quantiles
    /// publishes the same ladder on image and non-image merges (its
    /// ladder *is* the image), so this knob does not add staleness here —
    /// it exists for configuration parity with the Θ/HLL builders, and
    /// [`ConcurrentQuantilesSketch::query_relaxation`] still reports the
    /// engine-level conservative bound `2Nb + K·(M − 1)·b`.
    pub fn image_every(mut self, m: u64) -> Self {
        self.config.image_every = m;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch.
    pub fn build<T: Ord + Clone + Send + Sync + 'static>(
        self,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        let sketch = QuantilesSketch::new(self.k, DeterministicOracle::new(self.oracle_seed))?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: Some(self.oracle_seed),
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch::wrap(inner, self.k))
    }

    /// Builds around an explicit oracle. Incompatible with `shards > 1`
    /// (sibling shards need seedable oracles); use
    /// [`Self::oracle_seed`] for sharded deployments.
    pub fn build_with_oracle<T: Ord + Clone + Send + Sync + 'static>(
        self,
        oracle: impl Oracle + 'static,
    ) -> Result<ConcurrentQuantilesSketch<T>> {
        if self.config.shards > 1 {
            return Err(fcds_sketches::error::SketchError::invalid(
                "shards",
                "a custom oracle cannot seed sibling shards; use oracle_seed \
                 (build) for shards > 1",
            ));
        }
        let sketch = QuantilesSketch::new(self.k, oracle)?;
        let global = QuantilesGlobal {
            sketch,
            oracle_seed: None,
            shards_spawned: Cell::new(0),
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentQuantilesSketch::wrap(inner, self.k))
    }
}

/// Concurrent Quantiles sketch with r-relaxed PAC rank guarantees (§6.2).
///
/// # Examples
///
/// ```
/// use fcds_core::quantiles::ConcurrentQuantilesBuilder;
///
/// let sketch = ConcurrentQuantilesBuilder::new()
///     .k(128)
///     .writers(2)
///     .build::<u64>()
///     .unwrap();
/// let mut w = sketch.writer();
/// for i in 0..50_000u64 {
///     w.update(i);
/// }
/// w.flush().unwrap();
/// sketch.quiesce();
/// let median = sketch.quantile(0.5).unwrap();
/// assert!((median as f64 - 25_000.0).abs() < 2_500.0);
/// ```
pub struct ConcurrentQuantilesSketch<T: Ord + Clone + Send + Sync + 'static> {
    inner: ConcurrentSketch<QuantilesGlobal<T>>,
    k: usize,
    /// Memoised flat reader, keyed by the shards' publication versions at
    /// build time (a one-element vector when `K = 1` — the flatten cost
    /// moved off the propagation path for *every* shard count, so every
    /// shard count memoises). Re-flattened only when some shard
    /// republished; any thread may refresh it (EpochCell stores are
    /// swap-based, so concurrent refreshes are safe — last writer wins
    /// and a stale key only causes one redundant rebuild).
    merged_cache: EpochCell<MergedQuantiles<T>>,
}

/// A cached flat reader tagged with the per-shard publication versions
/// it was flattened from.
struct MergedQuantiles<T: Ord + Clone> {
    versions: Vec<u64>,
    reader: Arc<QuantilesReader<T>>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for ConcurrentQuantilesSketch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentQuantilesSketch")
            .field("k", &self.k)
            .finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> ConcurrentQuantilesSketch<T> {
    fn wrap(inner: ConcurrentSketch<QuantilesGlobal<T>>, k: usize) -> Self {
        ConcurrentQuantilesSketch {
            inner,
            k,
            // The empty version key never matches a real K ≥ 1 version
            // vector, so the first sharded query builds the cache.
            merged_cache: EpochCell::new(MergedQuantiles {
                versions: Vec::new(),
                reader: Arc::new(QuantilesReader::merged(std::iter::empty())),
            }),
        }
    }

    /// Shorthand for [`ConcurrentQuantilesBuilder::new`].
    pub fn builder() -> ConcurrentQuantilesBuilder {
        ConcurrentQuantilesBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> QuantilesWriter<T> {
        QuantilesWriter {
            inner: self.inner.writer(),
        }
    }

    /// Takes a wait-free snapshot of the current state; all queries on it
    /// are mutually consistent.
    ///
    /// Propagation publishes cheap ladder snapshots; the flat reader a
    /// query consumes is memoised here per publication-version vector:
    /// the O(retained · log runs) flatten runs only when some shard
    /// republished since the last query, not on every call — and never
    /// on the propagation path.
    pub fn snapshot(&self) -> Arc<QuantilesReader<T>> {
        // Versions first (acquire), then ladders: the ladders are then at
        // least as fresh as the key, so a cache hit can never serve data
        // older than the key promises.
        let versions: Vec<u64> = self.inner.shard_views().map(|v| v.version()).collect();
        let cached = self.merged_cache.load();
        if cached.versions == versions {
            return Arc::clone(&cached.reader);
        }
        let ladders: Vec<_> = self.inner.shard_views().map(|v| v.ladder()).collect();
        let reader = Arc::new(QuantilesReader::from_ladders(
            ladders.iter().map(|a| a.as_ref()),
        ));
        self.merged_cache.store(MergedQuantiles {
            versions,
            reader: Arc::clone(&reader),
        });
        reader
    }

    /// Approximate φ-quantile of the stream so far (`None` if empty).
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile(phi)
    }

    /// Approximate normalised rank of `item`.
    pub fn rank(&self, item: &T) -> f64 {
        self.snapshot().rank(item)
    }

    /// Stream length reflected by the current snapshot.
    pub fn visible_n(&self) -> u64 {
        self.snapshot().n()
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The relaxation bound `r = 2Nb`.
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// The engine-level merged-query staleness bound
    /// ([`Self::relaxation`] plus `K·(M − 1)·b` when `image_every = M`
    /// throttles image publication). Quantiles publishes its ladder on
    /// every merge regardless of M, so this is conservative here — the
    /// actual staleness stays `r = 2Nb` — but it is the bound the
    /// generic checker machinery uses across sketches.
    pub fn query_relaxation(&self) -> u64 {
        self.inner.query_relaxation()
    }

    /// The relaxed rank-error bound `ε_r` of §6.2 at the current visible
    /// stream length.
    pub fn relaxed_epsilon(&self) -> f64 {
        let eps = fcds_sketches::quantiles::epsilon_for_k(self.k);
        fcds_sketches::quantiles::relaxed_epsilon(eps, self.relaxation(), self.visible_n())
    }

    /// Waits until all handed-off buffers have been merged and published.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }

    /// Engine diagnostics: merges performed, eager updates, hand-offs.
    pub fn stats(&self) -> crate::runtime::EngineStats {
        self.inner.stats()
    }
}

/// Serialises the published state into a unified wire image
/// (Quantiles family, ladder form — see `fcds_sketches::wire`)
/// *without flattening*: the shard ladders' copy-on-write runs are
/// concatenated by `Arc` clone and streamed out run by run, so the
/// export costs O(runs + retained) with no sort and no k-way merge —
/// those stay on the query side of whichever node decodes the image.
/// On the fan-in side,
/// `fcds_sketches::wire::ladder_multiway_concat` splices the
/// borrowed runs of many images into one ladder in a single pass.
impl<T> crate::engine::WireImage for ConcurrentQuantilesSketch<T>
where
    T: Ord + Clone + Send + Sync + 'static + WireItem,
{
    fn wire_image(&self) -> bytes::Bytes {
        let mut ladders = self.inner.shard_views().map(|v| v.ladder());
        let mut merged: QuantilesLadder<T> = ladders
            .next()
            .map(|l| (*l).clone())
            .unwrap_or_else(QuantilesLadder::empty);
        for l in ladders {
            merged.concat(&l);
        }
        merged.to_wire_bytes()
    }
}

/// Per-thread writer for [`ConcurrentQuantilesSketch`].
pub struct QuantilesWriter<T: Ord + Clone + Send + Sync + 'static> {
    inner: SketchWriter<QuantilesGlobal<T>>,
}

impl<T: Ord + Clone + Send + Sync + 'static> std::fmt::Debug for QuantilesWriter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantilesWriter").finish()
    }
}

impl<T: Ord + Clone + Send + Sync + 'static> QuantilesWriter<T> {
    /// Processes one stream element.
    #[inline]
    pub fn update(&mut self, item: T) {
        self.inner.update(item);
    }

    /// Processes a batch of stream elements through the amortised fast
    /// path (one reserved buffer extend per chunk, hand-offs at
    /// `b`-boundaries mid-batch — see [`SketchWriter::update_batch`]).
    /// Equivalent to calling [`Self::update`] once per element.
    pub fn update_batch(&mut self, items: &[T]) {
        self.inner.update_batch(items);
    }

    /// Hands the partial local buffer to the propagator.
    ///
    /// # Errors
    ///
    /// See [`SketchWriter::flush`]: [`FlushError::PropagatorDead`] when
    /// the shard's propagation service died (buffered updates were
    /// discarded; the writer is latched dead), [`FlushError::ShuttingDown`]
    /// when the engine was dropped mid-flush.
    pub fn flush(&mut self) -> std::result::Result<(), FlushError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::quantiles::epsilon_for_k;

    #[test]
    fn empty_sketch() {
        let s = ConcurrentQuantilesBuilder::new().build::<u64>().unwrap();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.visible_n(), 0);
    }

    #[test]
    fn small_stream_eager_is_exact() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(0.04)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..100u64 {
            w.update(i);
        }
        // Eager phase: everything is immediately visible.
        assert_eq!(s.visible_n(), 100);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(99));
    }

    #[test]
    fn concurrent_rank_accuracy() {
        let k = 128;
        let s = ConcurrentQuantilesBuilder::new()
            .k(k)
            .writers(4)
            .build::<u64>()
            .unwrap();
        let n_per = crate::test_support::scaled(50_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let n = 4 * n_per;
        assert_eq!(s.visible_n(), n);
        let eps = epsilon_for_k(k);
        for phi in [0.1, 0.5, 0.9] {
            let v = s.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64;
            assert!(
                (true_rank - phi).abs() <= 4.0 * eps,
                "phi={phi} rank={true_rank}"
            );
        }
    }

    #[test]
    fn snapshot_is_internally_consistent_under_ingestion() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let n = crate::test_support::scaled(100_000);
        std::thread::scope(|sc| {
            for _ in 0..2 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(i);
                    }
                });
            }
            for _ in 0..200 {
                let snap = s.snapshot();
                if snap.n() == 0 {
                    continue;
                }
                // Quantiles from one snapshot must be monotone in φ.
                let q25 = snap.quantile(0.25).unwrap();
                let q50 = snap.quantile(0.5).unwrap();
                let q75 = snap.quantile(0.75).unwrap();
                assert!(q25 <= q50 && q50 <= q75);
            }
        });
    }

    #[test]
    fn visible_n_lags_by_at_most_r_after_writer_flushes() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(32)
            .writers(1)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        let n = 10_000u64;
        for i in 0..n {
            w.update(i);
        }
        // Without a flush, at most 2·b updates may be invisible
        // (one full buffer in flight + the current partial one).
        s.quiesce();
        let visible = s.visible_n();
        let r = s.relaxation();
        assert!(
            visible + r >= n,
            "visible {visible} lags more than r={r} behind {n}"
        );
        w.flush().unwrap();
        s.quiesce();
        assert_eq!(s.visible_n(), n);
    }

    #[test]
    fn relaxed_epsilon_shrinks_with_stream() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(128)
            .writers(2)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..2_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let eps_small = s.relaxed_epsilon();
        for i in 2_000..crate::test_support::scaled(200_000) {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let eps_large = s.relaxed_epsilon();
        assert!(eps_large < eps_small);
        assert!(eps_large < epsilon_for_k(128) + 1e-3);
    }

    #[test]
    fn sharded_rank_accuracy_and_exact_n() {
        let k = 128;
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let s = ConcurrentQuantilesBuilder::new()
                .k(k)
                .writers(4)
                .shards(2)
                .max_concurrency_error(1.0)
                .backend(backend)
                .build::<u64>()
                .unwrap();
            let n_per = crate::test_support::scaled(25_000);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in 0..n_per {
                            w.update(t * n_per + i);
                        }
                        w.flush().unwrap();
                    });
                }
            });
            s.quiesce();
            let n = 4 * n_per;
            // Sample-union merge is lossless in n, and the merged reader
            // keeps the per-shard epsilon.
            assert_eq!(s.visible_n(), n);
            let eps = epsilon_for_k(k);
            for phi in [0.1, 0.5, 0.9] {
                let v = s.quantile(phi).unwrap();
                let true_rank = v as f64 / n as f64;
                assert!(
                    (true_rank - phi).abs() <= 4.0 * eps,
                    "phi={phi} rank={true_rank}"
                );
            }
        }
    }

    #[test]
    fn sharded_snapshot_is_cached_until_a_shard_republishes() {
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .shards(2)
            .max_concurrency_error(1.0)
            .backend(PropagationBackendKind::WriterAssisted)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        // No shard republishes between these queries: the merged reader
        // must be the same allocation, not a fresh O(n log n) rebuild.
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(
            Arc::ptr_eq(&a, &b),
            "merged reader rebuilt without republication"
        );
        // After more updates are propagated, queries must see fresh data.
        for i in 10_000..20_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let c = s.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "cache failed to invalidate");
        assert_eq!(c.n(), 20_000);
    }

    #[test]
    fn single_shard_snapshot_is_cached_until_republication() {
        // The flatten moved off the propagation path for every K, so the
        // K = 1 fast path must memoise too: two snapshots with no merge
        // in between share one allocation.
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(1)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(
            Arc::ptr_eq(&a, &b),
            "flat reader rebuilt without republication"
        );
        for i in 10_000..20_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let c = s.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "cache failed to invalidate");
        assert_eq!(c.n(), 20_000);
    }

    #[test]
    fn published_ladder_matches_flattened_snapshot() {
        // The view's raw ladder and the engine's memoised flat reader are
        // two views of the same published state.
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(1)
            .max_concurrency_error(1.0)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..50_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let view = s.inner.shard_views().next().expect("one shard");
        let ladder = view.ladder();
        assert!(ladder.run_count() > 1, "stream should span several levels");
        let flat = s.snapshot();
        assert_eq!(ladder.n(), flat.n());
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(ladder.quantile(phi), flat.quantile(phi), "phi={phi}");
        }
    }

    #[test]
    fn image_every_does_not_stale_quantiles() {
        // Quantiles publishes its ladder on image and non-image merges
        // alike, so M > 1 must not change quiesced freshness.
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .writers(2)
            .shards(2)
            .max_concurrency_error(1.0)
            .image_every(4)
            .backend(PropagationBackendKind::WriterAssisted)
            .build::<u64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..20_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        assert_eq!(s.visible_n(), 20_000);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(19_999));
    }

    #[test]
    fn custom_oracle_rejects_sharding() {
        use fcds_sketches::oracle::DeterministicOracle;
        let err = ConcurrentQuantilesBuilder::new()
            .shards(2)
            .writers(2)
            .build_with_oracle::<u64>(DeterministicOracle::new(1));
        assert!(err.is_err(), "custom oracle + shards > 1 must be an Err");
    }

    #[test]
    fn works_with_total_f64() {
        use fcds_sketches::quantiles::TotalF64;
        let s = ConcurrentQuantilesBuilder::new()
            .k(64)
            .build::<TotalF64>()
            .unwrap();
        let mut w = s.writer();
        for i in 0..10_000 {
            w.update(TotalF64(i as f64));
        }
        w.flush().unwrap();
        s.quiesce();
        let med = s.quantile(0.5).unwrap().0;
        assert!((med - 5_000.0).abs() < 1_000.0);
    }
}
