//! The lock-based baseline: a sequential sketch behind a read/write lock.
//!
//! This is the "trivial solution" every figure of the paper compares
//! against (§1, §7): applications using non-thread-safe sketch libraries
//! must wrap every API call in a lock, which serialises updates and makes
//! readers compete with writers. Figure 1 shows it not only failing to
//! scale but *degrading* with contention.

use fcds_sketches::error::Result;
use fcds_sketches::hash::Hashable;
use fcds_sketches::oracle::Oracle;
use fcds_sketches::quantiles::QuantilesSketch;
use fcds_sketches::theta::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
use parking_lot::RwLock;

/// A generic lock-protected wrapper: updates take the write lock, queries
/// the read lock.
#[derive(Debug)]
pub struct Locked<S> {
    inner: RwLock<S>,
}

impl<S> Locked<S> {
    /// Wraps a sketch.
    pub fn new(sketch: S) -> Self {
        Locked {
            inner: RwLock::new(sketch),
        }
    }

    /// Runs a mutating operation under the write lock.
    pub fn write<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Runs a read-only operation under the read lock.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.read())
    }

    /// Consumes the wrapper, returning the sketch.
    pub fn into_inner(self) -> S {
        self.inner.into_inner()
    }
}

/// Lock-based Θ sketch — the baseline of Figures 1, 6 and 7.
///
/// # Examples
///
/// ```
/// use fcds_core::lock_based::LockBasedTheta;
///
/// let sketch = LockBasedTheta::new(12, 9001).unwrap();
/// std::thread::scope(|s| {
///     for t in 0..2u64 {
///         let sketch = &sketch;
///         s.spawn(move || {
///             for i in 0..10_000u64 {
///                 sketch.update(t * 10_000 + i);
///             }
///         });
///     }
/// });
/// assert!((sketch.estimate() - 20_000.0).abs() / 20_000.0 < 0.05);
/// ```
#[derive(Debug)]
pub struct LockBasedTheta {
    inner: Locked<QuickSelectThetaSketch>,
    seed: u64,
}

impl LockBasedTheta {
    /// Creates a lock-protected quick-select Θ sketch.
    pub fn new(lg_k: u8, seed: u64) -> Result<Self> {
        Ok(LockBasedTheta {
            inner: Locked::new(QuickSelectThetaSketch::new(lg_k, seed)?),
            seed,
        })
    }

    /// Processes one stream item (write lock).
    pub fn update<T: Hashable>(&self, item: T) {
        let hash = fcds_sketches::theta::normalize_hash(item.hash_with_seed(self.seed));
        self.inner.write(|s| {
            s.update_hash(hash);
        });
    }

    /// Processes a pre-hashed item (write lock).
    pub fn update_hash(&self, hash: u64) {
        self.inner.write(|s| {
            s.update_hash(hash);
        });
    }

    /// The distinct-count estimate (read lock).
    pub fn estimate(&self) -> f64 {
        self.inner.read(|s| s.estimate())
    }

    /// Freezes the current state (read lock).
    pub fn compact(&self) -> CompactThetaSketch {
        self.inner.read(|s| s.compact())
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Lock-based Quantiles sketch baseline.
#[derive(Debug)]
pub struct LockBasedQuantiles<T: Ord + Clone> {
    inner: Locked<QuantilesSketch<T>>,
}

impl<T: Ord + Clone> LockBasedQuantiles<T> {
    /// Creates a lock-protected Quantiles sketch.
    pub fn new(k: usize, oracle: impl Oracle + 'static) -> Result<Self> {
        Ok(LockBasedQuantiles {
            inner: Locked::new(QuantilesSketch::new(k, oracle)?),
        })
    }

    /// Processes one stream element (write lock).
    pub fn update(&self, item: T) {
        self.inner.write(|s| s.update(item));
    }

    /// Approximate φ-quantile (read lock).
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.inner.read(|s| s.quantile(phi))
    }

    /// Approximate normalised rank (read lock).
    pub fn rank(&self, item: &T) -> f64 {
        self.inner.read(|s| s.rank(item))
    }

    /// Stream length processed (read lock).
    pub fn n(&self) -> u64 {
        self.inner.read(|s| s.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::oracle::DeterministicOracle;
    use fcds_sketches::theta::rse;

    #[test]
    fn locked_generic_wrapper() {
        let l = Locked::new(Vec::<u64>::new());
        l.write(|v| v.push(1));
        l.write(|v| v.push(2));
        assert_eq!(l.read(|v| v.len()), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn theta_multithreaded_accuracy() {
        let sketch = LockBasedTheta::new(11, 1).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sketch = &sketch;
                s.spawn(move || {
                    for i in 0..50_000u64 {
                        sketch.update(t * 50_000 + i);
                    }
                });
            }
        });
        let rel = (sketch.estimate() - 200_000.0).abs() / 200_000.0;
        assert!(rel < 5.0 * rse(2048), "relative error {rel}");
    }

    #[test]
    fn theta_queries_interleaved_with_updates() {
        let sketch = LockBasedTheta::new(10, 1).unwrap();
        std::thread::scope(|s| {
            let sk = &sketch;
            s.spawn(move || {
                for i in 0..100_000u64 {
                    sk.update(i);
                }
            });
            let sk = &sketch;
            s.spawn(move || {
                let mut last = 0.0f64;
                for _ in 0..1_000 {
                    let e = sk.estimate();
                    // Lock-based queries are linearisable: the estimate of
                    // a growing distinct stream never shrinks drastically.
                    assert!(e >= 0.0);
                    assert!(e >= last * 0.8, "estimate collapsed");
                    last = last.max(e);
                }
            });
        });
    }

    #[test]
    fn quantiles_lock_based() {
        let q = LockBasedQuantiles::new(64, DeterministicOracle::new(1)).unwrap();
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in (t..20_000).step_by(2) {
                        q.update(i);
                    }
                });
            }
        });
        assert_eq!(q.n(), 20_000);
        let med = q.quantile(0.5).unwrap();
        assert!((med as f64 - 10_000.0).abs() < 1_500.0, "median {med}");
        assert!((q.rank(&10_000) - 0.5).abs() < 0.1);
    }

    #[test]
    fn compact_round_trip() {
        let sketch = LockBasedTheta::new(10, 1).unwrap();
        for i in 0..50_000u64 {
            sketch.update(i);
        }
        let c = sketch.compact();
        assert!((c.estimate() - sketch.estimate()).abs() < 1e-9);
    }
}
