//! The generic concurrent sketch engine — Algorithm 2 of the paper.
//!
//! [`ConcurrentSketch`] wires together:
//!
//! * `N` update threads, each owning a [`SketchWriter`] with a
//!   double-buffered local sketch (`localS_i[2]`, `cur_i`);
//! * one background **propagator** thread (`t0`) that merges local
//!   sketches into the shared global sketch and piggy-backs hints on the
//!   `prop_i` atomics (lines 110–115);
//! * any number of query threads reading snapshots from the global
//!   sketch's published view (lines 116–118), never blocking on and never
//!   blocked by ingestion;
//! * the adaptive eager phase of §5.3: while the stream is shorter than
//!   `2/e²`, update threads write straight into the global sketch
//!   (serialised by a lock, exactly as in the paper's implementation) so
//!   that small streams suffer no relaxation error.
//!
//! With double buffering enabled (the default) this is `OptParSketch` and
//! a query may miss at most `r = 2Nb` preceding updates (Theorem 1); with
//! it disabled it is the unoptimised `ParSketch` with `r = Nb` (Lemma 1).

use crate::composable::{GlobalSketch, HintCodec, LocalSketch};
use crate::config::ConcurrencyConfig;
use crate::sync::PropSlot;
use fcds_sketches::error::Result;
use parking_lot::Mutex;
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const PHASE_EAGER: u8 = 0;
const PHASE_LAZY: u8 = 1;

/// Engine counters, readable at any time (monotone, `Relaxed` updates —
/// they are diagnostics, not synchronisation).
#[derive(Debug, Default)]
struct Counters {
    merges: AtomicU64,
    eager_updates: AtomicU64,
    handoffs: AtomicU64,
}

/// A point-in-time copy of the engine's diagnostic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Local buffers merged by the propagator (lines 113–115 executions).
    pub merges: u64,
    /// Updates applied directly during the eager phase (§5.3).
    pub eager_updates: u64,
    /// Buffer hand-offs performed by writers (`prop_i ← 0` stores).
    pub handoffs: u64,
}

/// State shared between the main handle, writers, the propagator, and
/// query threads.
struct Shared<G: GlobalSketch> {
    /// The global composable sketch. Owned by the propagator in the lazy
    /// phase; briefly locked by update threads during the eager phase —
    /// the lock is uncontended once lazy (only the propagator takes it),
    /// so its cost is amortised over `b` updates.
    global: Mutex<G>,
    /// Concurrently readable snapshot state.
    view: G::View,
    /// [`PHASE_EAGER`] or [`PHASE_LAZY`]; flips exactly once.
    phase: AtomicU8,
    /// Current local-buffer size `b` (1 during eager, raised at the
    /// transition per §5.3).
    buffer_size: AtomicU64,
    config: ConcurrencyConfig,
    eager_limit: u64,
    lazy_b: u64,
    /// Registered worker slots.
    slots: Mutex<Vec<Arc<PropSlot<G::Local>>>>,
    /// Bumped on registry changes so the propagator reloads its local copy.
    slots_version: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A concurrent sketch: the paper's `OptParSketch` (or `ParSketch` when
/// double buffering is disabled) instantiated with a composable sketch
/// `G`.
///
/// Create writers with [`ConcurrentSketch::writer`] (one per update
/// thread; writers are `Send` but not `Sync`), query from any thread with
/// [`ConcurrentSketch::snapshot`], and drop the handle to stop the
/// propagator.
pub struct ConcurrentSketch<G: GlobalSketch> {
    shared: Arc<Shared<G>>,
    propagator: Option<JoinHandle<()>>,
}

impl<G: GlobalSketch> std::fmt::Debug for ConcurrentSketch<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSketch")
            .field("config", &self.shared.config)
            .field("phase", &self.shared.phase.load(Ordering::Relaxed))
            .finish()
    }
}

impl<G: GlobalSketch> ConcurrentSketch<G> {
    /// Starts the engine around an (typically empty) global sketch.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn start(global: G, config: ConcurrencyConfig) -> Result<Self> {
        config.validate()?;
        let view = global.new_view();
        global.publish(&view);
        let eager_limit = config.eager_limit();
        let lazy_b = config.buffer_size();
        let start_eager = eager_limit > 0 && global.stream_len() < eager_limit;
        let shared = Arc::new(Shared {
            global: Mutex::new(global),
            view,
            phase: AtomicU8::new(if start_eager { PHASE_EAGER } else { PHASE_LAZY }),
            buffer_size: AtomicU64::new(if start_eager { 1 } else { lazy_b }),
            config,
            eager_limit,
            lazy_b,
            slots: Mutex::new(Vec::new()),
            slots_version: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let propagator = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fcds-propagator".into())
                .spawn(move || propagator_loop(shared))
                .expect("spawn propagator thread")
        };
        Ok(ConcurrentSketch {
            shared,
            propagator: Some(propagator),
        })
    }

    /// Registers a new update thread and returns its writer handle.
    ///
    /// The relaxation bound `r = 2Nb` assumes at most `config.writers`
    /// concurrently active writers; registering more still yields correct
    /// relaxed behaviour, but with `N` equal to the actual writer count.
    pub fn writer(&self) -> SketchWriter<G> {
        let (local_a, local_b, hint) = {
            let g = self.shared.global.lock();
            (g.new_local(), g.new_local(), g.calc_hint())
        };
        let slot = Arc::new(PropSlot::new(local_a, local_b, hint.encode().get()));
        {
            let mut reg = self.shared.slots.lock();
            reg.push(Arc::clone(&slot));
        }
        self.shared.slots_version.fetch_add(1, Ordering::Release);
        SketchWriter {
            shared: Arc::clone(&self.shared),
            slot,
            cur: 0,
            counter: 0,
            b: self.shared.buffer_size.load(Ordering::Relaxed),
            hint,
            filtered: 0,
        }
    }

    /// Takes a query snapshot from the published view. Runs concurrently
    /// with ingestion; freshness is governed by the `r = 2Nb` relaxation
    /// (Theorem 1).
    pub fn snapshot(&self) -> G::Snapshot {
        G::snapshot(&self.shared.view)
    }

    /// Read-only access to the shared view (for sketch-specific fast-path
    /// queries).
    pub fn view(&self) -> &G::View {
        &self.shared.view
    }

    /// The active configuration.
    pub fn config(&self) -> &ConcurrencyConfig {
        &self.shared.config
    }

    /// The current relaxation bound `r` (see
    /// [`ConcurrencyConfig::relaxation`]).
    pub fn relaxation(&self) -> u64 {
        self.shared.config.relaxation()
    }

    /// Whether the sketch is still in the eager phase of §5.3.
    pub fn is_eager(&self) -> bool {
        self.shared.phase.load(Ordering::Acquire) == PHASE_EAGER
    }

    /// Number of items the global sketch has ingested (buffered local
    /// updates are not included — that is the point of the relaxation).
    pub fn global_stream_len(&self) -> u64 {
        self.shared.global.lock().stream_len()
    }

    /// Blocks until every pending hand-off has been merged and published.
    ///
    /// Writers must have been flushed (or dropped) first for this to
    /// capture all their updates; afterwards a snapshot reflects every
    /// update that preceded the flushes.
    pub fn quiesce(&self) {
        loop {
            let pending = {
                let reg = self.shared.slots.lock();
                reg.iter().any(|s| s.pending_buffer().is_some())
            };
            if !pending {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// A snapshot of the engine's diagnostic counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            merges: self.shared.counters.merges.load(Ordering::Relaxed),
            eager_updates: self.shared.counters.eager_updates.load(Ordering::Relaxed),
            handoffs: self.shared.counters.handoffs.load(Ordering::Relaxed),
        }
    }

    /// Runs a closure against the global sketch under its lock. Intended
    /// for result extraction after ingestion (e.g., obtaining a compact
    /// image); taking this lock on the hot path would serialise against
    /// the propagator.
    pub fn with_global<R>(&self, f: impl FnOnce(&G) -> R) -> R {
        let g = self.shared.global.lock();
        f(&g)
    }
}

impl<G: GlobalSketch> Drop for ConcurrentSketch<G> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.propagator.take() {
            let _ = h.join();
        }
    }
}

/// The propagator thread `t0` (Algorithm 2, lines 110–115).
fn propagator_loop<G: GlobalSketch>(shared: Arc<Shared<G>>) {
    let mut local_slots: Vec<Arc<PropSlot<G::Local>>> = Vec::new();
    let mut seen_version = u64::MAX;
    let backoff = crossbeam::utils::Backoff::new();
    loop {
        let version = shared.slots_version.load(Ordering::Acquire);
        if version != seen_version {
            local_slots = shared.slots.lock().clone();
            seen_version = version;
        }

        let mut did_work = false;
        let mut saw_retired = false;
        for slot in &local_slots {
            did_work |= try_propagate(&shared, slot);
            saw_retired |= slot.is_retired();
        }

        if saw_retired {
            // Drop fully drained retired slots from the registry.
            let mut reg = shared.slots.lock();
            let before = reg.len();
            reg.retain(|s| !(s.is_retired() && s.pending_buffer().is_none()));
            if reg.len() != before {
                shared.slots_version.fetch_add(1, Ordering::Release);
            }
            local_slots = reg.clone();
            drop(reg);
            seen_version = shared.slots_version.load(Ordering::Acquire);
        }

        if shared.shutdown.load(Ordering::Acquire) {
            // Final drain so that post-shutdown snapshots reflect every
            // completed hand-off.
            let reg = shared.slots.lock().clone();
            for slot in &reg {
                try_propagate(&shared, slot);
            }
            return;
        }

        if did_work {
            backoff.reset();
        } else {
            // Spin briefly, then yield; the propagator stays hot (the
            // paper dedicates a thread to it) without starving workers.
            backoff.snooze();
        }
    }
}

/// Merges one pending local buffer, publishes, and returns ownership with
/// the fresh hint. Returns `true` if a merge happened.
fn try_propagate<G: GlobalSketch>(shared: &Shared<G>, slot: &PropSlot<G::Local>) -> bool {
    let Some(idx) = slot.pending_buffer() else {
        return false;
    };
    let hint = {
        let mut g = shared.global.lock();
        // SAFETY: `idx` comes from `pending_buffer`; this function is
        // called only from the unique propagator thread.
        unsafe {
            slot.with_propagator_buffer(idx, |buf| {
                g.merge(buf);
                debug_assert!(buf.is_empty(), "merge must clear the local buffer");
            });
        }
        g.publish(&shared.view);
        g.calc_hint()
    };
    slot.complete_propagation(hint.encode().get());
    shared.counters.merges.fetch_add(1, Ordering::Relaxed);
    true
}

/// Per-thread writer handle (update thread `t_i`, lines 119–129).
///
/// `Send` but not `Sync`: exactly one thread drives a writer. Dropping a
/// writer flushes its partial buffer (blocking briefly on the propagator)
/// and retires its slot.
pub struct SketchWriter<G: GlobalSketch> {
    shared: Arc<Shared<G>>,
    slot: Arc<PropSlot<G::Local>>,
    cur: usize,
    counter: u64,
    b: u64,
    hint: <G::Local as LocalSketch>::Hint,
    filtered: u64,
}

impl<G: GlobalSketch> std::fmt::Debug for SketchWriter<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchWriter")
            .field("cur", &self.cur)
            .field("counter", &self.counter)
            .field("b", &self.b)
            .finish()
    }
}

impl<G: GlobalSketch> SketchWriter<G> {
    /// Processes one stream item (the `update_i(a)` procedure).
    #[inline]
    pub fn update(&mut self, item: <G::Local as LocalSketch>::Item) {
        let item = if self.shared.phase.load(Ordering::Acquire) == PHASE_EAGER {
            // Eager phase (§5.3): propagate directly, serialised by the
            // global lock; re-check the phase under the lock because the
            // transition happens there.
            match self.try_eager(item) {
                None => return,
                Some(item) => item, // phase flipped while we waited
            }
        } else {
            item
        };

        // Line 120: the shouldAdd pre-filter (ablatable for measuring
        // its contribution — see ConcurrencyConfig::disable_prefilter).
        if !self.shared.config.disable_prefilter
            && !<G::Local as LocalSketch>::should_add(self.hint, &item)
        {
            self.filtered += 1;
            return;
        }
        // Lines 121–122: buffer locally.
        // SAFETY: we are the unique worker of this slot and `cur` is our
        // current buffer.
        unsafe {
            self.slot.with_worker_buffer(self.cur, |l| l.update(item));
        }
        self.counter += 1;
        // Line 123: flush when the buffer reaches b.
        if self.counter >= self.b {
            self.flush_inner();
        }
    }

    /// Eager-phase direct update. Returns the item back if the phase
    /// turned lazy before we acquired the lock.
    fn try_eager(
        &mut self,
        item: <G::Local as LocalSketch>::Item,
    ) -> Option<<G::Local as LocalSketch>::Item> {
        let mut g = self.shared.global.lock();
        if self.shared.phase.load(Ordering::Relaxed) != PHASE_EAGER {
            return Some(item);
        }
        g.update_direct(item);
        g.publish(&self.shared.view);
        self.shared
            .counters
            .eager_updates
            .fetch_add(1, Ordering::Relaxed);
        self.hint = g.calc_hint();
        if g.stream_len() >= self.shared.eager_limit {
            // §5.3: raise b to the lazy buffer size and leave the eager
            // phase. The store order (b first) means a worker that sees
            // LAZY also sees the raised b at its next flush.
            self.shared
                .buffer_size
                .store(self.shared.lazy_b, Ordering::Relaxed);
            self.shared.phase.store(PHASE_LAZY, Ordering::Release);
        }
        None
    }

    /// Hands the filled buffer to the propagator (lines 125–129) and, in
    /// `ParSketch` mode (no double buffering), waits for the merge.
    fn flush_inner(&mut self) {
        // Line 125: wait until prop_i ≠ 0.
        if !self.wait_merged() {
            return; // shutdown: abandon buffered updates
        }
        // Lines 126–129: flip cur, refresh b, request propagation.
        self.cur = 1 - self.cur;
        self.counter = 0;
        self.b = self.shared.buffer_size.load(Ordering::Relaxed);
        // SAFETY: wait_merged ensured the propagator released the buffers.
        unsafe { self.slot.hand_off(self.cur) };
        self.shared.counters.handoffs.fetch_add(1, Ordering::Relaxed);

        if !self.shared.config.double_buffering {
            // Unoptimised ParSketch: the update thread idles until its
            // (single) buffer has been merged (underlined line 124/125).
            self.wait_merged();
        }
    }

    /// Spins until the propagator has returned buffer ownership, updating
    /// the hint from the piggy-backed value. Returns `false` on shutdown.
    fn wait_merged(&mut self) -> bool {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            if let Some(raw) = self.slot.propagation_result() {
                let nz = NonZeroU64::new(raw).expect("hints are non-zero");
                self.hint = <G::Local as LocalSketch>::Hint::decode(nz);
                return true;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                // SAFETY: the propagator has exited (or is exiting and no
                // longer owns our buffers once prop ≠ 0 fails to arrive);
                // clearing our own buffer is safe because the propagator's
                // final drain only touches buffers with prop == 0, and
                // losing buffered updates on teardown is the documented
                // semantics.
                self.counter = 0;
                return false;
            }
            backoff.snooze();
        }
    }

    /// Flushes the partially filled buffer so that its updates become
    /// visible to queries once the propagator merges them. Blocks until
    /// the previous propagation (if any) completes.
    pub fn flush(&mut self) {
        if self.counter > 0 {
            self.flush_inner();
        }
    }

    /// Number of updates currently buffered locally (not yet handed off).
    pub fn buffered(&self) -> u64 {
        self.counter
    }

    /// The writer's current buffer size `b`.
    pub fn buffer_size(&self) -> u64 {
        self.b
    }

    /// Updates this writer dropped via the `shouldAdd` pre-filter — the
    /// quantity §5.1 credits for the algorithm's scalability.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }
}

impl<G: GlobalSketch> Drop for SketchWriter<G> {
    fn drop(&mut self) {
        self.flush();
        self.slot.retire();
        // Nudge the propagator's registry scan.
        self.shared.slots_version.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "sum sketch": exact, so the engine must not lose or duplicate
    /// a single update. Uses the trivial hint.
    #[derive(Debug, Default)]
    struct SumGlobal {
        total: u64,
        n: u64,
    }

    #[derive(Debug, Default)]
    struct SumLocal {
        items: Vec<u64>,
    }

    impl LocalSketch for SumLocal {
        type Item = u64;
        type Hint = ();
        fn update(&mut self, item: u64) {
            self.items.push(item);
        }
        fn should_add(_: (), _: &u64) -> bool {
            true
        }
        fn clear(&mut self) {
            self.items.clear();
        }
        fn len(&self) -> usize {
            self.items.len()
        }
    }

    impl GlobalSketch for SumGlobal {
        type Local = SumLocal;
        type View = crate::sync::AtomicF64;
        type Snapshot = f64;

        fn new_local(&self) -> SumLocal {
            SumLocal::default()
        }
        fn new_view(&self) -> Self::View {
            crate::sync::AtomicF64::new(self.total as f64)
        }
        fn merge(&mut self, local: &mut SumLocal) {
            for v in local.items.drain(..) {
                self.total += v;
                self.n += 1;
            }
        }
        fn update_direct(&mut self, item: u64) {
            self.total += item;
            self.n += 1;
        }
        fn publish(&self, view: &Self::View) {
            view.store(self.total as f64);
        }
        fn snapshot(view: &Self::View) -> f64 {
            view.load()
        }
        fn calc_hint(&self) {}
        fn stream_len(&self) -> u64 {
            self.n
        }
    }

    fn run_sum(writers: usize, per_writer: u64, config: ConcurrencyConfig) -> f64 {
        let sketch = ConcurrentSketch::start(SumGlobal::default(), config).unwrap();
        std::thread::scope(|s| {
            for w in 0..writers {
                let mut wr = sketch.writer();
                s.spawn(move || {
                    for i in 0..per_writer {
                        wr.update(w as u64 * per_writer + i);
                    }
                    // Writer drop flushes the partial buffer.
                });
            }
        });
        sketch.quiesce();
        sketch.snapshot()
    }

    fn expected_sum(writers: usize, per_writer: u64) -> f64 {
        let total_items = writers as u64 * per_writer;
        // Values are 0..writers*per_writer, each exactly once.
        (total_items * (total_items - 1) / 2) as f64
    }

    #[test]
    fn exact_sum_single_writer_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0, // no eager phase
            ..Default::default()
        };
        assert_eq!(run_sum(1, 10_000, cfg), expected_sum(1, 10_000));
    }

    #[test]
    fn exact_sum_many_writers_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        assert_eq!(run_sum(4, 25_000, cfg), expected_sum(4, 25_000));
    }

    #[test]
    fn exact_sum_with_eager_phase() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 0.04, // eager limit 1250
            ..Default::default()
        };
        assert_eq!(run_sum(4, 5_000, cfg), expected_sum(4, 5_000));
    }

    #[test]
    fn exact_sum_stream_shorter_than_eager_limit() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 0.04,
            ..Default::default()
        };
        // 2 × 100 = 200 < 1250: never leaves the eager phase.
        assert_eq!(run_sum(2, 100, cfg), expected_sum(2, 100));
    }

    #[test]
    fn exact_sum_unoptimised_parsketch() {
        let cfg = ConcurrencyConfig {
            writers: 3,
            max_concurrency_error: 1.0,
            double_buffering: false,
            ..Default::default()
        };
        assert_eq!(run_sum(3, 10_000, cfg), expected_sum(3, 10_000));
    }

    #[test]
    fn eager_phase_transitions_to_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 0.1, // eager limit 200
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        assert!(sketch.is_eager());
        let mut w = sketch.writer();
        for i in 0..500u64 {
            w.update(i);
        }
        assert!(!sketch.is_eager(), "should have left the eager phase");
        w.flush();
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), (499 * 500 / 2) as f64);
    }

    #[test]
    fn snapshot_is_monotone_under_concurrent_ingestion() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let mut wr = sketch.writer();
                s.spawn(move || {
                    for i in 0..200_000u64 {
                        wr.update(i % 7);
                    }
                });
            }
            let mut last = 0.0;
            for _ in 0..10_000 {
                let v = sketch.snapshot();
                assert!(v >= last, "sum went backwards: {v} < {last}");
                last = v;
            }
        });
    }

    #[test]
    fn writers_can_join_mid_stream() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        {
            let mut w1 = sketch.writer();
            for i in 0..1_000u64 {
                w1.update(i);
            }
        } // w1 dropped: flushed and retired
        {
            let mut w2 = sketch.writer();
            for i in 1_000..2_000u64 {
                w2.update(i);
            }
        }
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), (1999 * 2000 / 2) as f64);
    }

    #[test]
    fn manual_flush_makes_updates_visible() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            max_buffer_size: 16,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let mut w = sketch.writer();
        for _ in 0..5 {
            w.update(1); // stays in the local buffer (b = 16)
        }
        assert_eq!(w.buffered(), 5);
        w.flush();
        assert_eq!(w.buffered(), 0);
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), 5.0);
    }

    #[test]
    fn drop_without_writers_is_clean() {
        let sketch =
            ConcurrentSketch::start(SumGlobal::default(), ConcurrencyConfig::default()).unwrap();
        drop(sketch);
    }

    #[test]
    fn relaxation_accessor() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let r = cfg.relaxation();
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        assert_eq!(sketch.relaxation(), r);
    }
}
