//! The generic concurrent sketch engine — Algorithm 2 of the paper,
//! generalised to a K-way sharded global with pluggable propagation.
//!
//! [`ConcurrentSketch`] wires together:
//!
//! * `N` update threads, each owning a [`SketchWriter`] with a
//!   double-buffered local sketch (`localS_i[2]`, `cur_i`), round-robined
//!   onto `K` **shards** (independent global sketches with their own
//!   views and worker registries);
//! * a [`PropagationBackend`] that merges handed-off local buffers into
//!   their shard and piggy-backs hints on the `prop_i` atomics
//!   (lines 110–115). Two backends ship: [`DedicatedThreadBackend`] — the
//!   paper's background thread `t0`, one per shard — and
//!   [`WriterAssistedBackend`], which has no threads at all: the flushing
//!   writer drains its shard under a try-lock;
//! * any number of query threads reading snapshots from the shards'
//!   published views (lines 116–118), merged losslessly across shards
//!   ([`GlobalSketch::merge_shard_views`]), never blocking on and never
//!   blocked by ingestion;
//! * the adaptive eager phase of §5.3: while the total stream is shorter
//!   than `2/e²`, update threads write straight into their shard's global
//!   (serialised by the shard lock) so small streams suffer no relaxation
//!   error.
//!
//! With double buffering enabled (the default) this is `OptParSketch` and
//! a query may miss at most `r = 2Nb` preceding updates (Theorem 1); with
//! it disabled it is the unoptimised `ParSketch` with `r = Nb` (Lemma 1).
//! Sharding does not change either bound: the relaxation is carried by
//! the writers' in-flight buffers, of which there are at most two per
//! writer regardless of which shard the writer is keyed onto.
//!
//! ## The ingestion hot path: scalar and batched
//!
//! Once the Θ-style hint filter engages, almost every update dies on the
//! writer thread, so the per-update constant factor on
//! [`SketchWriter::update`] *is* the system's throughput ceiling. Two
//! mechanisms keep it low:
//!
//! * **Scalar micro-state.** The `shouldAdd` ablation switch is cached in
//!   the writer at construction (it never changes), and the one-way
//!   `EAGER → LAZY` phase flip of §5.3 is latched in a writer-local bool
//!   the first time the writer observes `LAZY` — so the steady-state
//!   scalar path performs no `Acquire` phase load and no shared-config
//!   deref per item, just two predictable local branches.
//! * **[`SketchWriter::update_batch`].** The batched path additionally
//!   hoists the *hint* out of the loop: a chunk of up to `b` items is
//!   filtered against one hint read, survivors are compacted branchlessly
//!   and appended to the local buffer in one reserved extend
//!   ([`LocalSketch::update_batch_filtered`]), and the buffer is handed
//!   off at `b`-boundaries mid-batch exactly like the scalar path.
//!
//! Hoisting the hint means it can go stale *within* a chunk: the
//! propagator may publish a fresher (smaller-Θ) hint while the chunk is
//! being filtered. This is safe because hints are conservative and
//! monotone — Θ only decreases (registers only grow, for HLL), so a stale
//! hint only filters *less*, never drops an update a fresh hint would
//! have kept. Every extra item the stale hint lets through is one the
//! global sketch itself rejects at merge time (`h ≥ Θ` is a no-op), so
//! the global state — and therefore every bound in this module — is
//! unchanged; the only cost is a few doomed hashes riding a hand-off.
//! Chunks are capped at a small constant (`b` items here, 32 in the
//! front-ends' fused hash-and-filter loops), so staleness within a batch
//! is bounded by one chunk regardless of the caller's batch size.

use crate::composable::{GlobalSketch, HintCodec, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::sync::PropSlot;
use fcds_sketches::error::Result;
use parking_lot::Mutex;
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const PHASE_EAGER: u8 = 0;
const PHASE_LAZY: u8 = 1;

/// Engine counters, readable at any time (monotone, `Relaxed` updates —
/// they are diagnostics, not synchronisation).
#[derive(Debug, Default)]
struct Counters {
    merges: AtomicU64,
    eager_updates: AtomicU64,
    handoffs: AtomicU64,
    image_publications: AtomicU64,
    filtered_updates: AtomicU64,
}

/// A point-in-time copy of the engine's diagnostic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Local buffers merged into some shard (lines 113–115 executions).
    pub merges: u64,
    /// Updates applied directly during the eager phase (§5.3).
    pub eager_updates: u64,
    /// Buffer hand-offs performed by writers (`prop_i ← 0` stores).
    pub handoffs: u64,
    /// Shard-image publications (`publish_sharded` calls) since the
    /// engine started serving. Always 0 on a single-shard engine; with
    /// `image_every = M > 1`, roughly `merges / M` plus the forced
    /// publications during the eager phase and at
    /// [`ConcurrentSketch::quiesce`]. The initial per-shard publication
    /// at engine start happens before the counters exist and is not
    /// included.
    pub image_publications: u64,
    /// Updates dropped by the writers' `shouldAdd` pre-filter (§5.1) —
    /// the hint's observable contribution to scalability, and the live
    /// counterpart of the `disable_prefilter` ablation knob. Aggregated
    /// from the per-writer counts at flush and retire boundaries only:
    /// filtered items never fill the buffer, so on a saturated sketch
    /// (where nearly everything is filtered and flushes are rare) a live
    /// writer's drops can lag here by many buffers' worth of stream —
    /// roughly `b / (1 − filter rate)` items. Exact once writers have
    /// flushed or dropped; for per-writer live counts use
    /// [`SketchWriter::filtered`].
    pub filtered_updates: u64,
}

/// Why a [`SketchWriter::flush`] could not make its buffered updates
/// durable. Surfaced instead of the pre-PR-8 behaviour of spinning
/// forever (dead propagator) or silently abandoning (shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlushError {
    /// The shard's dedicated propagator thread died (it panicked, e.g.
    /// because a merge hit a poisoned buffer). Hand-offs to this shard
    /// can never complete; the writer's buffered updates were discarded
    /// and every future flush on this writer fails fast with the same
    /// error. Queries keep working from the last published view.
    PropagatorDead {
        /// The shard whose propagator died.
        shard: usize,
    },
    /// The engine handle was dropped while the flush waited; buffered
    /// updates were discarded (the documented teardown semantics).
    ShuttingDown,
}

impl std::fmt::Display for FlushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushError::PropagatorDead { shard } => {
                write!(
                    f,
                    "propagator thread for shard {shard} is dead; buffered updates dropped"
                )
            }
            FlushError::ShuttingDown => {
                write!(f, "engine is shutting down; buffered updates dropped")
            }
        }
    }
}

impl std::error::Error for FlushError {}

/// One shard: an independent global sketch with its own published view
/// and worker registry. Writers are assigned to exactly one shard;
/// queries merge all shard views.
struct ShardState<G: GlobalSketch> {
    /// The shard's composable sketch. Held by whichever thread is
    /// propagating into this shard (its dedicated propagator, an
    /// assisting writer, or an eager-phase updater) — *all* propagator-
    /// side buffer accesses happen under this lock.
    global: Mutex<G>,
    /// Concurrently readable snapshot state.
    view: G::View,
    /// Registered worker slots keyed onto this shard.
    slots: Mutex<Vec<Arc<PropSlot<G::Local>>>>,
    /// Bumped on registry changes so a dedicated propagator reloads its
    /// local copy.
    slots_version: AtomicU64,
    /// Merges since the last image publication; drives the
    /// `image_every` throttle. Only written under the shard's global
    /// lock, so the atomic is for `&self` access, not for contention.
    merges_since_image: AtomicU64,
    /// Set when the shard's dedicated propagator thread dies by panic.
    /// Writers waiting on a hand-off check it to fail fast
    /// ([`FlushError::PropagatorDead`]) instead of spinning forever, and
    /// quiesce/teardown skip the shard (its global may be mid-merge).
    propagator_dead: AtomicBool,
}

/// Engine state shared between the main handle, writers, propagation
/// backends, and query threads. Backends receive `&EngineCore` and drive
/// propagation through [`EngineCore::drain_shard`] /
/// [`EngineCore::try_drain_shard`].
pub struct EngineCore<G: GlobalSketch> {
    shards: Vec<ShardState<G>>,
    /// `shards.len() > 1`; selects `publish_sharded` over `publish`.
    sharded: bool,
    /// [`PHASE_EAGER`] or [`PHASE_LAZY`]; flips exactly once.
    phase: AtomicU8,
    /// Current local-buffer size `b` (1 during eager, raised at the
    /// transition per §5.3).
    buffer_size: AtomicU64,
    config: ConcurrencyConfig,
    eager_limit: u64,
    lazy_b: u64,
    /// Total items ingested across all shards while eager (drives the
    /// §5.3 transition; seeded with the initial globals' stream length).
    eager_ingested: AtomicU64,
    /// Round-robin cursor for writer→shard assignment.
    next_shard: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
}

impl<G: GlobalSketch> std::fmt::Debug for EngineCore<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCore")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .field("phase", &self.phase.load(Ordering::Relaxed))
            .finish()
    }
}

impl<G: GlobalSketch> EngineCore<G> {
    /// Number of shards `K`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the engine handle has been dropped (backend service
    /// threads should exit once this is set and their shard is drained).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Marks `shard`'s propagation service as dead (see
    /// [`FlushError::PropagatorDead`]). Called by backends whose service
    /// thread for the shard is unwinding; once set it never clears.
    pub fn mark_propagator_dead(&self, shard: usize) {
        self.shards[shard]
            .propagator_dead
            .store(true, Ordering::Release);
    }

    /// Whether `shard`'s propagation service has died (never set by the
    /// threadless [`WriterAssistedBackend`]).
    pub fn propagator_dead(&self, shard: usize) -> bool {
        self.shards[shard].propagator_dead.load(Ordering::Acquire)
    }

    /// Merges every pending hand-off of `shard` into its global sketch,
    /// blocking on the shard lock. Returns `true` if any buffer was
    /// merged.
    pub fn drain_shard(&self, shard: usize) -> bool {
        let sh = &self.shards[shard];
        let mut g = sh.global.lock();
        self.drain_shard_locked(&mut g, sh)
    }

    /// Like [`Self::drain_shard`] but gives up (returning `false`) if
    /// another thread currently holds the shard lock — that thread is
    /// propagating already.
    pub fn try_drain_shard(&self, shard: usize) -> bool {
        let sh = &self.shards[shard];
        match sh.global.try_lock() {
            Some(mut g) => self.drain_shard_locked(&mut g, sh),
            None => false,
        }
    }

    /// Publishes `g`'s state into the shard's view. When the engine is
    /// sharded this includes the mergeable image — on every `image_every`-th
    /// merge, or unconditionally when `force_image` is set (engine start,
    /// eager phase, quiesce); skipped merges still publish the cheap
    /// per-merge state (`G::publish`), so e.g. Θ's seqlock triple keeps
    /// single-shard-equivalent freshness regardless of the throttle.
    fn publish_view(&self, g: &G, shard: &ShardState<G>, force_image: bool) {
        if !self.sharded {
            g.publish(&shard.view);
            return;
        }
        let image_due = force_image || {
            let since = shard.merges_since_image.fetch_add(1, Ordering::Relaxed) + 1;
            since >= self.config.image_every
        };
        if image_due {
            shard.merges_since_image.store(0, Ordering::Relaxed);
            g.publish_sharded(&shard.view);
            self.counters
                .image_publications
                .fetch_add(1, Ordering::Relaxed);
        } else {
            g.publish(&shard.view);
        }
    }

    /// Merges one pending local buffer of `slot` (if any), publishes, and
    /// returns buffer ownership with the fresh hint. The caller must hold
    /// the shard's global lock (`g`): the lock plus the pending re-check
    /// below make the propagator side single-owner even when several
    /// threads race to drain the same shard (writer-assisted backend).
    fn propagate_slot_locked(
        &self,
        g: &mut G,
        shard: &ShardState<G>,
        slot: &PropSlot<G::Local>,
    ) -> bool {
        let Some(idx) = slot.pending_buffer() else {
            return false;
        };
        // SAFETY: `idx` comes from `pending_buffer` under the shard's
        // global lock, and every propagator-side access in the engine
        // goes through this function — we are the unique propagator for
        // this buffer until `complete_propagation`.
        unsafe {
            slot.with_propagator_buffer(idx, |buf| {
                g.merge(buf);
                debug_assert!(buf.is_empty(), "merge must clear the local buffer");
            });
        }
        self.publish_view(g, shard, false);
        let hint = g.calc_hint();
        slot.complete_propagation(hint.encode().get());
        self.counters.merges.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Propagates every pending slot of a shard and prunes drained
    /// retired slots. Caller holds the shard's global lock.
    fn drain_shard_locked(&self, g: &mut G, shard: &ShardState<G>) -> bool {
        // Scan under the registry lock and collect only slots that need
        // work: the writer-assisted wait loop calls this on every spin
        // iteration, so the common nothing-pending case must not
        // allocate.
        let (pending, saw_retired) = {
            let reg = shard.slots.lock();
            let mut pending: Vec<Arc<PropSlot<G::Local>>> = Vec::new();
            let mut saw_retired = false;
            for slot in reg.iter() {
                if slot.pending_buffer().is_some() {
                    pending.push(Arc::clone(slot));
                }
                saw_retired |= slot.is_retired();
            }
            (pending, saw_retired)
        };
        let mut did_work = false;
        for slot in &pending {
            did_work |= self.propagate_slot_locked(g, shard, slot);
        }
        if saw_retired {
            self.prune_retired(shard);
        }
        did_work
    }

    /// Drops fully drained retired slots from a shard's registry, bumping
    /// the version so dedicated propagators reload. Returns `true` if the
    /// registry changed.
    fn prune_retired(&self, shard: &ShardState<G>) -> bool {
        let mut reg = shard.slots.lock();
        let before = reg.len();
        reg.retain(|s| !(s.is_retired() && s.pending_buffer().is_none()));
        let changed = reg.len() != before;
        if changed {
            shard.slots_version.fetch_add(1, Ordering::Release);
        }
        changed
    }

    /// Fast-path single-slot propagation for the dedicated propagator:
    /// checks `pending` before taking the shard lock so an idle scan costs
    /// one atomic load per slot.
    fn try_propagate(&self, shard: &ShardState<G>, slot: &PropSlot<G::Local>) -> bool {
        if slot.pending_buffer().is_none() {
            return false;
        }
        let mut g = shard.global.lock();
        self.propagate_slot_locked(&mut g, shard, slot)
    }
}

/// How merged buffers travel from writers into the shards' globals.
///
/// The engine calls these hooks at the marked points; all propagation
/// work must go through [`EngineCore::drain_shard`] /
/// [`EngineCore::try_drain_shard`] (or, for service threads spawned by
/// [`Self::spawn`], the same primitives in a loop), which serialise the
/// propagator side on the shard lock. Implement this trait to plug a
/// custom policy (e.g., an async-runtime task per shard) into
/// [`ConcurrentSketch::start_with_backend`].
pub trait PropagationBackend<G: GlobalSketch>: Send + Sync + 'static {
    /// Called once at engine start; spawns any service threads. The
    /// engine sets the shutdown flag and joins the returned handles on
    /// drop.
    fn spawn(&self, core: &Arc<EngineCore<G>>) -> Vec<JoinHandle<()>> {
        let _ = core;
        Vec::new()
    }

    /// Called by a writer immediately after it hands a full buffer off on
    /// `shard`.
    fn after_handoff(&self, core: &EngineCore<G>, shard: usize) {
        let _ = (core, shard);
    }

    /// Called on every iteration of a writer's wait-for-merge loop
    /// (line 125); a threadless backend must make progress here or the
    /// writer would spin forever.
    fn while_waiting(&self, core: &EngineCore<G>, shard: usize) {
        let _ = (core, shard);
    }

    /// Called by [`ConcurrentSketch::quiesce`] while hand-offs are
    /// pending anywhere.
    fn drive(&self, core: &EngineCore<G>) {
        let _ = core;
    }
}

/// The paper's propagation scheme: one dedicated background thread per
/// shard (`t0` of Algorithm 2) spins over its shard's slots and merges
/// hand-offs as they appear. Writers and queries never propagate.
#[derive(Debug, Default, Clone, Copy)]
pub struct DedicatedThreadBackend;

impl<G: GlobalSketch> PropagationBackend<G> for DedicatedThreadBackend {
    fn spawn(&self, core: &Arc<EngineCore<G>>) -> Vec<JoinHandle<()>> {
        (0..core.shard_count())
            .map(|shard| {
                let core = Arc::clone(core);
                std::thread::Builder::new()
                    .name(format!("fcds-propagator-{shard}"))
                    .spawn(move || {
                        let _guard = PropagatorDeadGuard { core: &core, shard };
                        propagator_loop(&core, shard);
                    })
                    .expect("spawn propagator thread")
            })
            .collect()
    }
}

/// Marks the shard dead if the propagator thread unwinds. A merge can
/// panic (a buggy or adversarial `GlobalSketch::merge`); without this,
/// every writer of the shard would spin forever in `wait_merged` on a
/// hand-off nobody will ever complete.
struct PropagatorDeadGuard<'a, G: GlobalSketch> {
    core: &'a EngineCore<G>,
    shard: usize,
}

impl<G: GlobalSketch> Drop for PropagatorDeadGuard<'_, G> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.core.mark_propagator_dead(self.shard);
        }
    }
}

/// Threadless propagation for embedders that cannot (or do not want to)
/// give the sketch a background thread: the writer that hands a buffer
/// off — or any writer waiting for its own merge — drains its shard under
/// a try-lock, so exactly one thread propagates into a shard at a time
/// and nobody blocks behind a peer that is already doing the work.
///
/// Trade-off vs [`DedicatedThreadBackend`]: hand-offs are merged with the
/// writer's own cycles (slightly lower ingest throughput per writer, one
/// fewer hot core), and a partial [`SketchWriter::flush`] only becomes
/// visible once some writer flushes again or
/// [`ConcurrentSketch::quiesce`] runs. The relaxation bound is unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct WriterAssistedBackend;

impl<G: GlobalSketch> PropagationBackend<G> for WriterAssistedBackend {
    fn after_handoff(&self, core: &EngineCore<G>, shard: usize) {
        core.try_drain_shard(shard);
    }

    fn while_waiting(&self, core: &EngineCore<G>, shard: usize) {
        core.try_drain_shard(shard);
    }

    fn drive(&self, core: &EngineCore<G>) {
        for shard in 0..core.shard_count() {
            core.drain_shard(shard);
        }
    }
}

/// A concurrent sketch: the paper's `OptParSketch` (or `ParSketch` when
/// double buffering is disabled) instantiated with a composable sketch
/// `G`, sharded `K` ways.
///
/// Create writers with [`ConcurrentSketch::writer`] (one per update
/// thread; writers are `Send` but not `Sync`), query from any thread with
/// [`ConcurrentSketch::snapshot`], and drop the handle to stop any
/// backend service threads.
pub struct ConcurrentSketch<G: GlobalSketch> {
    shared: Arc<EngineCore<G>>,
    backend: Arc<dyn PropagationBackend<G>>,
    handles: Vec<JoinHandle<()>>,
}

impl<G: GlobalSketch> std::fmt::Debug for ConcurrentSketch<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSketch")
            .field("config", &self.shared.config)
            .field("shards", &self.shared.shards.len())
            .field("phase", &self.shared.phase.load(Ordering::Relaxed))
            .finish()
    }
}

impl<G: GlobalSketch> ConcurrentSketch<G> {
    /// Starts the engine around an (typically empty) global sketch, with
    /// the propagation backend selected by `config.backend`.
    ///
    /// With `config.shards > 1` the passed sketch seeds shard 0 and
    /// `G::new_shard` creates the remaining K−1 empty shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn start(global: G, config: ConcurrencyConfig) -> Result<Self> {
        let backend: Arc<dyn PropagationBackend<G>> = match config.backend {
            PropagationBackendKind::DedicatedThread => Arc::new(DedicatedThreadBackend),
            PropagationBackendKind::WriterAssisted => Arc::new(WriterAssistedBackend),
        };
        Self::start_with_backend(global, config, backend)
    }

    /// Starts the engine with an explicit (possibly custom) propagation
    /// backend; `config.backend` is ignored in favour of `backend`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn start_with_backend(
        global: G,
        config: ConcurrencyConfig,
        backend: Arc<dyn PropagationBackend<G>>,
    ) -> Result<Self> {
        config.validate()?;
        let eager_limit = config.eager_limit();
        let lazy_b = config.buffer_size();
        let sharded = config.shards > 1;
        let mut globals = Vec::with_capacity(config.shards);
        for _ in 1..config.shards {
            globals.push(global.new_shard());
        }
        globals.insert(0, global);
        if sharded {
            for g in &mut globals {
                g.prepare_sharded();
            }
        }
        let initial_len: u64 = globals.iter().map(|g| g.stream_len()).sum();
        let start_eager = eager_limit > 0 && initial_len < eager_limit;
        let shards: Vec<ShardState<G>> = globals
            .into_iter()
            .map(|g| {
                let view = g.new_view();
                if sharded {
                    g.publish_sharded(&view);
                } else {
                    g.publish(&view);
                }
                ShardState {
                    global: Mutex::new(g),
                    view,
                    slots: Mutex::new(Vec::new()),
                    slots_version: AtomicU64::new(0),
                    merges_since_image: AtomicU64::new(0),
                    propagator_dead: AtomicBool::new(false),
                }
            })
            .collect();
        let shared = Arc::new(EngineCore {
            shards,
            sharded,
            phase: AtomicU8::new(if start_eager { PHASE_EAGER } else { PHASE_LAZY }),
            buffer_size: AtomicU64::new(if start_eager { 1 } else { lazy_b }),
            config,
            eager_limit,
            lazy_b,
            eager_ingested: AtomicU64::new(initial_len),
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let handles = backend.spawn(&shared);
        Ok(ConcurrentSketch {
            shared,
            backend,
            handles,
        })
    }

    /// Registers a new update thread, assigning it to the next shard
    /// round-robin, and returns its writer handle.
    ///
    /// The relaxation bound `r = 2Nb` assumes at most `config.writers`
    /// concurrently active writers; registering more still yields correct
    /// relaxed behaviour, but with `N` equal to the actual writer count.
    pub fn writer(&self) -> SketchWriter<G> {
        let shard_idx =
            self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        let shard = &self.shared.shards[shard_idx];
        let (local_a, local_b, hint) = {
            let g = shard.global.lock();
            (g.new_local(), g.new_local(), g.calc_hint())
        };
        let slot = Arc::new(PropSlot::new(local_a, local_b, hint.encode().get()));
        {
            let mut reg = shard.slots.lock();
            reg.push(Arc::clone(&slot));
        }
        shard.slots_version.fetch_add(1, Ordering::Release);
        let lazy = self.shared.phase.load(Ordering::Acquire) == PHASE_LAZY;
        SketchWriter {
            shared: Arc::clone(&self.shared),
            backend: Arc::clone(&self.backend),
            slot,
            shard: shard_idx,
            cur: 0,
            counter: 0,
            b: self.shared.buffer_size.load(Ordering::Relaxed),
            hint,
            filtered: 0,
            filtered_synced: 0,
            lazy,
            prefilter: !self.shared.config.disable_prefilter,
            dead: None,
        }
    }

    /// Takes a query snapshot. With one shard this reads the published
    /// view; with `K > 1` it merges all shard views losslessly
    /// ([`GlobalSketch::merge_shard_views`]). Runs concurrently with
    /// ingestion; freshness is governed by the `r = 2Nb` relaxation
    /// (Theorem 1), independent of `K`.
    pub fn snapshot(&self) -> G::Snapshot {
        if !self.shared.sharded {
            return G::snapshot(&self.shared.shards[0].view);
        }
        let views: Vec<&G::View> = self.shared.shards.iter().map(|s| &s.view).collect();
        G::merge_shard_views(&views)
    }

    /// Read-only access to shard 0's view (for sketch-specific fast-path
    /// queries on single-shard engines).
    ///
    /// # Panics
    ///
    /// Debug builds panic on a sharded engine: shard 0's view covers only
    /// a fraction of the stream there — use [`Self::snapshot`] (merged)
    /// or [`Self::shard_views`] instead.
    pub fn view(&self) -> &G::View {
        debug_assert!(
            !self.shared.sharded,
            "view() on a sharded engine reads only shard 0; use snapshot() or shard_views()"
        );
        &self.shared.shards[0].view
    }

    /// The published views of every shard, in shard order.
    pub fn shard_views(&self) -> impl Iterator<Item = &G::View> {
        self.shared.shards.iter().map(|s| &s.view)
    }

    /// The active configuration.
    pub fn config(&self) -> &ConcurrencyConfig {
        &self.shared.config
    }

    /// Number of shards `K`.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The current relaxation bound `r` (see
    /// [`ConcurrencyConfig::relaxation`]); independent of the shard
    /// count.
    pub fn relaxation(&self) -> u64 {
        self.shared.config.relaxation()
    }

    /// The staleness bound of a *merged query*
    /// ([`ConcurrencyConfig::query_relaxation`]): equals
    /// [`Self::relaxation`] unless image publication is throttled
    /// (`image_every > 1` on a sharded engine).
    pub fn query_relaxation(&self) -> u64 {
        self.shared.config.query_relaxation()
    }

    /// Whether the sketch is still in the eager phase of §5.3.
    pub fn is_eager(&self) -> bool {
        self.shared.phase.load(Ordering::Acquire) == PHASE_EAGER
    }

    /// Number of items the shards' global sketches have ingested in total
    /// (buffered local updates are not included — that is the point of
    /// the relaxation).
    pub fn global_stream_len(&self) -> u64 {
        self.shared
            .shards
            .iter()
            .map(|s| s.global.lock().stream_len())
            .sum()
    }

    /// Blocks until every pending hand-off has been merged and published.
    ///
    /// Writers must have been flushed (or dropped) first for this to
    /// capture all their updates; afterwards a snapshot reflects every
    /// update that preceded the flushes. Under the writer-assisted
    /// backend this call performs the outstanding merges itself.
    pub fn quiesce(&self) {
        loop {
            // Shards whose propagator died are excluded: their pending
            // hand-offs can never complete (the data is lost — see
            // [`FlushError::PropagatorDead`]) and waiting on them would
            // never terminate.
            let pending = self.shared.shards.iter().any(|sh| {
                if sh.propagator_dead.load(Ordering::Acquire) {
                    return false;
                }
                let reg = sh.slots.lock();
                reg.iter().any(|s| s.pending_buffer().is_some())
            });
            if !pending {
                break;
            }
            self.backend.drive(&self.shared);
            std::thread::yield_now();
        }
        // Republish any image the `image_every` throttle skipped, so a
        // quiesced engine is fully fresh regardless of M. Dead shards
        // are skipped — their global may be mid-merge.
        if self.shared.sharded && self.shared.config.image_every > 1 {
            for sh in &self.shared.shards {
                if sh.propagator_dead.load(Ordering::Acquire) {
                    continue;
                }
                if sh.merges_since_image.load(Ordering::Relaxed) != 0 {
                    let g = sh.global.lock();
                    self.shared.publish_view(&g, sh, true);
                }
            }
        }
    }

    /// Whether any shard's propagation service has died (see
    /// [`FlushError::PropagatorDead`]). Such an engine keeps serving
    /// queries from published views, but writers keyed onto the dead
    /// shard(s) fail their flushes.
    pub fn is_degraded(&self) -> bool {
        (0..self.shared.shards.len()).any(|s| self.shared.propagator_dead(s))
    }

    /// A snapshot of the engine's diagnostic counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            merges: self.shared.counters.merges.load(Ordering::Relaxed),
            eager_updates: self.shared.counters.eager_updates.load(Ordering::Relaxed),
            handoffs: self.shared.counters.handoffs.load(Ordering::Relaxed),
            image_publications: self
                .shared
                .counters
                .image_publications
                .load(Ordering::Relaxed),
            filtered_updates: self
                .shared
                .counters
                .filtered_updates
                .load(Ordering::Relaxed),
        }
    }

    /// Runs a closure against each shard's global sketch under its lock
    /// (in shard order), collecting the results. Intended for result
    /// extraction after ingestion (e.g., merging per-shard compact
    /// images); taking shard locks on the hot path would serialise
    /// against propagation.
    pub fn with_globals<R>(&self, mut f: impl FnMut(&G) -> R) -> Vec<R> {
        self.shared
            .shards
            .iter()
            .map(|s| {
                let g = s.global.lock();
                f(&g)
            })
            .collect()
    }
}

impl<G: GlobalSketch> Drop for ConcurrentSketch<G> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Final drain so post-shutdown snapshots reflect every completed
        // hand-off; service threads (if any) are joined, so this handle
        // owns propagation now. Also what makes the writer-assisted
        // backend's teardown deterministic. Shards whose propagator died
        // are skipped: their global may be mid-merge and draining into it
        // could re-panic inside this Drop (an abort).
        for shard in 0..self.shared.shards.len() {
            if !self.shared.propagator_dead(shard) {
                self.shared.drain_shard(shard);
            }
        }
    }
}

/// The dedicated propagator servicing one shard (Algorithm 2,
/// lines 110–115, run by [`DedicatedThreadBackend`]).
fn propagator_loop<G: GlobalSketch>(core: &EngineCore<G>, shard_idx: usize) {
    let shard = &core.shards[shard_idx];
    let mut local_slots: Vec<Arc<PropSlot<G::Local>>> = Vec::new();
    let mut seen_version = u64::MAX;
    let backoff = crossbeam::utils::Backoff::new();
    loop {
        let version = shard.slots_version.load(Ordering::Acquire);
        if version != seen_version {
            local_slots = shard.slots.lock().clone();
            seen_version = version;
        }

        let mut did_work = false;
        let mut saw_retired = false;
        for slot in &local_slots {
            did_work |= core.try_propagate(shard, slot);
            saw_retired |= slot.is_retired();
        }

        if saw_retired {
            core.prune_retired(shard);
            local_slots = shard.slots.lock().clone();
            seen_version = shard.slots_version.load(Ordering::Acquire);
        }

        if core.is_shutting_down() {
            // Final drain so that post-shutdown snapshots reflect every
            // completed hand-off.
            core.drain_shard(shard_idx);
            return;
        }

        if did_work {
            backoff.reset();
        } else {
            // Spin briefly, then yield; the propagator stays hot (the
            // paper dedicates a thread to it) without starving workers.
            backoff.snooze();
        }
    }
}

/// Per-thread writer handle (update thread `t_i`, lines 119–129), bound
/// to one shard.
///
/// `Send` but not `Sync`: exactly one thread drives a writer. Dropping a
/// writer flushes its partial buffer (blocking briefly on propagation)
/// and retires its slot.
pub struct SketchWriter<G: GlobalSketch> {
    shared: Arc<EngineCore<G>>,
    backend: Arc<dyn PropagationBackend<G>>,
    slot: Arc<PropSlot<G::Local>>,
    shard: usize,
    cur: usize,
    counter: u64,
    b: u64,
    hint: <G::Local as LocalSketch>::Hint,
    filtered: u64,
    /// `filtered` as of the last aggregation into the engine counters
    /// (see [`EngineStats::filtered_updates`]).
    filtered_synced: u64,
    /// Writer-local latch of the one-way `EAGER → LAZY` flip: once the
    /// writer observes `LAZY` it can never see `EAGER` again (§5.3 flips
    /// exactly once), so the steady-state update paths skip the shared
    /// `Acquire` phase load entirely.
    lazy: bool,
    /// `!config.disable_prefilter`, cached at construction — the ablation
    /// switch never changes while the engine runs, so the hot paths need
    /// no per-item Arc-chased config deref.
    prefilter: bool,
    /// Sticky failure latch: once a flush fails, every later flush fails
    /// fast with the same error instead of re-probing the engine.
    dead: Option<FlushError>,
}

impl<G: GlobalSketch> std::fmt::Debug for SketchWriter<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchWriter")
            .field("shard", &self.shard)
            .field("cur", &self.cur)
            .field("counter", &self.counter)
            .field("b", &self.b)
            .finish()
    }
}

impl<G: GlobalSketch> SketchWriter<G> {
    /// Processes one stream item (the `update_i(a)` procedure).
    ///
    /// Steady state (lazy phase, which every long stream spends its life
    /// in) costs no shared loads before the buffer push: the phase flip
    /// is latched writer-locally and the pre-filter switch is cached at
    /// construction.
    #[inline]
    pub fn update(&mut self, item: <G::Local as LocalSketch>::Item) {
        let item = if self.lazy {
            item
        } else {
            match self.update_pre_lazy(item) {
                None => return,
                Some(item) => item,
            }
        };

        // Line 120: the shouldAdd pre-filter (ablatable for measuring
        // its contribution — see ConcurrencyConfig::disable_prefilter).
        if self.prefilter && !<G::Local as LocalSketch>::should_add(self.hint, &item) {
            self.filtered += 1;
            return;
        }
        // Lines 121–122: buffer locally.
        // SAFETY: we are the unique worker of this slot and `cur` is our
        // current buffer.
        unsafe {
            self.slot.with_worker_buffer(self.cur, |l| l.update(item));
        }
        self.counter += 1;
        // Line 123: flush when the buffer reaches b.
        if self.counter >= self.b {
            // A failed boundary flush discards the buffer and latches the
            // writer dead; the error is observable via `flush`. The hot
            // path itself stays infallible (no per-update error branch).
            let _ = self.flush_inner();
        }
    }

    /// Processes a batch of stream items through the amortised fast
    /// path: the phase check, the pre-filter switch, and the hint are
    /// hoisted out of the per-item loop; survivors are compacted against
    /// the hint and appended to the local buffer chunk-wise
    /// ([`LocalSketch::update_batch_filtered`]); and the buffer is
    /// handed off at `b`-boundaries mid-batch, so arbitrarily large
    /// batches preserve the `r = 2Nb` relaxation exactly.
    ///
    /// Equivalent to calling [`Self::update`] once per item: the hint is
    /// refreshed only at flush boundaries in both paths, and within a
    /// chunk (capped at `b` items) a concurrently-published fresher hint
    /// is missed harmlessly — hints are conservative and monotone, so a
    /// stale hint only filters *less*, and the global sketch rejects the
    /// extra items at merge time (see the module docs).
    pub fn update_batch(&mut self, items: &[<G::Local as LocalSketch>::Item])
    where
        <G::Local as LocalSketch>::Item: Clone,
    {
        let mut rest = items;
        // Eager phase (§5.3) and the one-time transition run the scalar
        // path item by item — bounded by the eager limit `2/e²` — until
        // the writer latches `lazy`.
        while !self.lazy {
            let Some((first, tail)) = rest.split_first() else {
                return;
            };
            self.update(first.clone());
            rest = tail;
        }
        if !self.prefilter {
            // Ablated filter: everything is accepted, so the whole batch
            // is a room-bounded bulk append.
            self.push_accepted(rest);
            return;
        }
        while !rest.is_empty() {
            debug_assert!(self.counter < self.b);
            // Filtering only shrinks a chunk, so taking at most the
            // buffer's remaining room guarantees the hand-off happens at
            // exactly b buffered updates, as in the scalar path.
            let room = (self.b - self.counter) as usize;
            let (chunk, tail) = rest.split_at(rest.len().min(room));
            rest = tail;
            let hint = self.hint;
            // SAFETY: we are the unique worker of this slot and `cur` is
            // our current buffer.
            let kept = unsafe {
                self.slot
                    .with_worker_buffer(self.cur, |l| l.update_batch_filtered(hint, chunk))
            };
            self.filtered += (chunk.len() - kept) as u64;
            self.counter += kept as u64;
            if self.counter >= self.b {
                let _ = self.flush_inner();
            }
        }
    }

    /// Whether this writer has latched the lazy phase (the sketch
    /// front-ends' fused batch loops fall back to the scalar path until
    /// it has).
    pub(crate) fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Whether the `shouldAdd` pre-filter is enabled (cached; see
    /// [`ConcurrencyConfig::disable_prefilter`]).
    pub(crate) fn prefilter_enabled(&self) -> bool {
        self.prefilter
    }

    /// The writer's current hint (refreshed at every flush).
    pub(crate) fn hint(&self) -> <G::Local as LocalSketch>::Hint {
        self.hint
    }

    /// Records `n` updates dropped by a front-end's fused filter loop,
    /// keeping [`Self::filtered`] and the engine aggregate truthful.
    pub(crate) fn note_filtered(&mut self, n: u64) {
        self.filtered += n;
    }

    /// Appends already-accepted items to the local buffer in
    /// room-bounded slices, handing off at `b`-boundaries. The front
    /// ends' fused batch loops (hash → filter in registers) land their
    /// survivors here; callers must have counted rejected items via
    /// [`Self::note_filtered`] and must only be in the lazy phase.
    pub(crate) fn push_accepted(&mut self, items: &[<G::Local as LocalSketch>::Item])
    where
        <G::Local as LocalSketch>::Item: Clone,
    {
        let mut rest = items;
        while !rest.is_empty() {
            debug_assert!(self.counter < self.b);
            let room = (self.b - self.counter) as usize;
            let (chunk, tail) = rest.split_at(rest.len().min(room));
            rest = tail;
            // SAFETY: we are the unique worker of this slot and `cur` is
            // our current buffer.
            unsafe {
                self.slot
                    .with_worker_buffer(self.cur, |l| l.update_batch(chunk));
            }
            self.counter += chunk.len() as u64;
            if self.counter >= self.b {
                let _ = self.flush_inner();
            }
        }
    }

    /// The pre-latch slow path: checks the shared phase, applies the
    /// item eagerly while the engine is still in the §5.3 eager phase,
    /// and latches the writer-local `lazy` flag the first time `LAZY` is
    /// observed (the flip is one-way, so the latch never needs
    /// re-checking). Returns the item back when it still needs the lazy
    /// buffering path.
    #[cold]
    fn update_pre_lazy(
        &mut self,
        item: <G::Local as LocalSketch>::Item,
    ) -> Option<<G::Local as LocalSketch>::Item> {
        if self.shared.phase.load(Ordering::Acquire) == PHASE_EAGER {
            // Eager phase: propagate directly into our shard, serialised
            // by its lock; try_eager re-checks the phase under the lock
            // because the transition may happen while we wait for it.
            match self.try_eager(item) {
                None => None,
                Some(item) => {
                    // Phase flipped while we waited for the shard lock.
                    self.lazy = true;
                    Some(item)
                }
            }
        } else {
            self.lazy = true;
            Some(item)
        }
    }

    /// The index of the shard this writer is keyed onto.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Eager-phase direct update into the writer's shard. Returns the
    /// item back if the phase turned lazy before we acquired the lock.
    ///
    /// When sharded, every eager update republishes the shard's full
    /// mergeable image (O(retained) for Θ, O(m) for HLL): the eager
    /// phase's contract is *zero* relaxation error, so sharded queries
    /// must see each direct update immediately. The cost is bounded by
    /// the eager limit `2/e²` (1250 updates at the default `e = 0.04`)
    /// and single-shard engines publish only the cheap view.
    fn try_eager(
        &mut self,
        item: <G::Local as LocalSketch>::Item,
    ) -> Option<<G::Local as LocalSketch>::Item> {
        let shard = &self.shared.shards[self.shard];
        let mut g = shard.global.lock();
        if self.shared.phase.load(Ordering::Relaxed) != PHASE_EAGER {
            return Some(item);
        }
        let before = g.stream_len();
        g.update_direct(item);
        let delta = g.stream_len() - before;
        // Force the image past any `image_every` throttle: the eager
        // phase's contract is zero relaxation error.
        self.shared.publish_view(&g, shard, true);
        self.shared
            .counters
            .eager_updates
            .fetch_add(1, Ordering::Relaxed);
        self.hint = g.calc_hint();
        let total = self
            .shared
            .eager_ingested
            .fetch_add(delta, Ordering::Relaxed)
            + delta;
        if total >= self.shared.eager_limit {
            // §5.3: raise b to the lazy buffer size and leave the eager
            // phase. The store order (b first) means a worker that sees
            // LAZY also sees the raised b at its next flush.
            self.shared
                .buffer_size
                .store(self.shared.lazy_b, Ordering::Relaxed);
            self.shared.phase.store(PHASE_LAZY, Ordering::Release);
        }
        None
    }

    /// Aggregates this writer's pre-filter drops into the engine-wide
    /// counter ([`EngineStats::filtered_updates`]). Called at flush and
    /// retire boundaries so the hot paths never touch the shared atomic.
    fn sync_filtered(&mut self) {
        let delta = self.filtered - self.filtered_synced;
        if delta > 0 {
            self.shared
                .counters
                .filtered_updates
                .fetch_add(delta, Ordering::Relaxed);
            self.filtered_synced = self.filtered;
        }
    }

    /// Hands the filled buffer over for propagation (lines 125–129) and,
    /// in `ParSketch` mode (no double buffering), waits for the merge.
    /// On failure the buffered updates have been discarded (see
    /// [`FlushError`]) and the writer is latched dead.
    fn flush_inner(&mut self) -> std::result::Result<(), FlushError> {
        self.sync_filtered();
        if let Some(err) = self.dead {
            self.abandon_buffer();
            return Err(err);
        }
        // Line 125: wait until prop_i ≠ 0.
        self.wait_merged()?;
        // Lines 126–129: flip cur, refresh b, request propagation.
        self.cur = 1 - self.cur;
        self.counter = 0;
        self.b = self.shared.buffer_size.load(Ordering::Relaxed);
        // SAFETY: wait_merged ensured the propagator released the buffers.
        unsafe { self.slot.hand_off(self.cur) };
        self.shared
            .counters
            .handoffs
            .fetch_add(1, Ordering::Relaxed);
        self.backend.after_handoff(&self.shared, self.shard);

        if !self.shared.config.double_buffering {
            // Unoptimised ParSketch: the update thread idles until its
            // (single) buffer has been merged (underlined line 124/125).
            self.wait_merged()?;
        }
        Ok(())
    }

    /// Spins until the pending propagation (if any) has returned buffer
    /// ownership, updating the hint from the piggy-backed value. Under
    /// the writer-assisted backend the wait loop itself drains the shard,
    /// so progress never depends on another thread. Fails — discarding
    /// the writer's buffered updates and latching the writer dead — when
    /// the engine shuts down or the shard's propagator has died, since
    /// either way the hand-off can never complete.
    fn wait_merged(&mut self) -> std::result::Result<(), FlushError> {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            // The dead check runs before the result check on purpose:
            // even if a last propagation completed before the propagator
            // died, handing the next buffer to a dead shard would lose it
            // silently — fail the flush instead.
            if self.shared.propagator_dead(self.shard) {
                return Err(self.latch_dead(FlushError::PropagatorDead { shard: self.shard }));
            }
            if let Some(raw) = self.slot.propagation_result() {
                let nz = NonZeroU64::new(raw).expect("hints are non-zero");
                self.hint = <G::Local as LocalSketch>::Hint::decode(nz);
                return Ok(());
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(self.latch_dead(FlushError::ShuttingDown));
            }
            self.backend.while_waiting(&self.shared, self.shard);
            backoff.snooze();
        }
    }

    /// Latches the writer's sticky failure and discards its local buffer.
    fn latch_dead(&mut self, err: FlushError) -> FlushError {
        self.dead = Some(err);
        self.abandon_buffer();
        err
    }

    /// Discards the writer's current local buffer. Safe at any point:
    /// `cur` is always worker-owned (a hand-off transfers the *other*
    /// buffer), and the final teardown drain only touches handed-off
    /// buffers.
    fn abandon_buffer(&mut self) {
        self.counter = 0;
        // SAFETY: we are the unique worker of this slot and `cur` is our
        // current buffer.
        unsafe {
            self.slot.with_worker_buffer(self.cur, |l| l.clear());
        }
    }

    /// Flushes the partially filled buffer so that its updates become
    /// visible to queries once propagated. Blocks until the previous
    /// propagation (if any) completes. Under the writer-assisted backend
    /// the hand-off is usually merged inline; if the shard is busy it
    /// stays pending until the next flush or a
    /// [`ConcurrentSketch::quiesce`].
    ///
    /// # Errors
    ///
    /// [`FlushError::PropagatorDead`] when the shard's propagation
    /// service has died (the buffered updates are discarded and every
    /// later flush on this writer fails fast with the same error);
    /// [`FlushError::ShuttingDown`] when the engine handle was dropped
    /// mid-flush. The buffer-boundary flushes inside
    /// [`Self::update`] / [`Self::update_batch`] hit the same
    /// conditions and discard in the same way; a caller that needs the
    /// error signal must call `flush` (the per-update paths stay
    /// infallible by design — the paper's hot loop has no error branch).
    pub fn flush(&mut self) -> std::result::Result<(), FlushError> {
        if let Some(err) = self.dead {
            self.abandon_buffer();
            return Err(err);
        }
        if self.counter > 0 {
            self.flush_inner()
        } else {
            Ok(())
        }
    }

    /// Number of updates currently buffered locally (not yet handed off).
    pub fn buffered(&self) -> u64 {
        self.counter
    }

    /// The writer's current buffer size `b`.
    pub fn buffer_size(&self) -> u64 {
        self.b
    }

    /// Updates this writer dropped via the `shouldAdd` pre-filter — the
    /// quantity §5.1 credits for the algorithm's scalability.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }
}

impl<G: GlobalSketch> Drop for SketchWriter<G> {
    fn drop(&mut self) {
        // A failing final flush already discarded the buffer; there is
        // nobody left to hand the error to.
        let _ = self.flush();
        // flush() skips empty buffers, so sync any drops it left behind.
        self.sync_filtered();
        self.slot.retire();
        // Nudge the shard's registry scan.
        self.shared.shards[self.shard]
            .slots_version
            .fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::scaled;

    /// A toy "sum sketch": exact, so the engine must not lose or duplicate
    /// a single update. Uses the trivial hint. Implements the sharding
    /// hooks (sums are trivially mergeable) so the engine tests below can
    /// exercise K > 1.
    #[derive(Debug, Default)]
    struct SumGlobal {
        total: u64,
        n: u64,
    }

    #[derive(Debug, Default)]
    struct SumLocal {
        items: Vec<u64>,
    }

    impl LocalSketch for SumLocal {
        type Item = u64;
        type Hint = ();
        fn update(&mut self, item: u64) {
            self.items.push(item);
        }
        fn should_add(_: (), _: &u64) -> bool {
            true
        }
        fn clear(&mut self) {
            self.items.clear();
        }
        fn len(&self) -> usize {
            self.items.len()
        }
    }

    impl GlobalSketch for SumGlobal {
        type Local = SumLocal;
        type View = crate::sync::AtomicF64;
        type Snapshot = f64;

        fn new_local(&self) -> SumLocal {
            SumLocal::default()
        }
        fn new_view(&self) -> Self::View {
            crate::sync::AtomicF64::new(self.total as f64)
        }
        fn merge(&mut self, local: &mut SumLocal) {
            for v in local.items.drain(..) {
                self.total += v;
                self.n += 1;
            }
        }
        fn update_direct(&mut self, item: u64) {
            self.total += item;
            self.n += 1;
        }
        fn publish(&self, view: &Self::View) {
            view.store(self.total as f64);
        }
        fn snapshot(view: &Self::View) -> f64 {
            view.load()
        }
        fn calc_hint(&self) {}
        fn stream_len(&self) -> u64 {
            self.n
        }
        fn new_shard(&self) -> Self {
            SumGlobal::default()
        }
        fn merge_shard_views(views: &[&Self::View]) -> f64 {
            views.iter().map(|v| v.load()).sum()
        }
    }

    fn run_sum(writers: usize, per_writer: u64, config: ConcurrencyConfig) -> f64 {
        let sketch = ConcurrentSketch::start(SumGlobal::default(), config).unwrap();
        std::thread::scope(|s| {
            for w in 0..writers {
                let mut wr = sketch.writer();
                s.spawn(move || {
                    for i in 0..per_writer {
                        wr.update(w as u64 * per_writer + i);
                    }
                    // Writer drop flushes the partial buffer.
                });
            }
        });
        sketch.quiesce();
        sketch.snapshot()
    }

    fn expected_sum(writers: usize, per_writer: u64) -> f64 {
        let total_items = writers as u64 * per_writer;
        // Values are 0..writers*per_writer, each exactly once.
        (total_items * (total_items - 1) / 2) as f64
    }

    #[test]
    fn exact_sum_single_writer_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0, // no eager phase
            ..Default::default()
        };
        assert_eq!(run_sum(1, 10_000, cfg), expected_sum(1, 10_000));
    }

    #[test]
    fn exact_sum_many_writers_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let n = scaled(25_000);
        assert_eq!(run_sum(4, n, cfg), expected_sum(4, n));
    }

    #[test]
    fn exact_sum_with_eager_phase() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 0.04, // eager limit 1250
            ..Default::default()
        };
        assert_eq!(run_sum(4, 5_000, cfg), expected_sum(4, 5_000));
    }

    #[test]
    fn exact_sum_stream_shorter_than_eager_limit() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 0.04,
            ..Default::default()
        };
        // 2 × 100 = 200 < 1250: never leaves the eager phase.
        assert_eq!(run_sum(2, 100, cfg), expected_sum(2, 100));
    }

    #[test]
    fn exact_sum_unoptimised_parsketch() {
        let cfg = ConcurrencyConfig {
            writers: 3,
            max_concurrency_error: 1.0,
            double_buffering: false,
            ..Default::default()
        };
        let n = scaled(10_000);
        assert_eq!(run_sum(3, n, cfg), expected_sum(3, n));
    }

    #[test]
    fn exact_sum_sharded_dedicated() {
        for shards in [1usize, 2, 4] {
            let cfg = ConcurrencyConfig {
                writers: 4,
                shards,
                max_concurrency_error: 1.0,
                ..Default::default()
            };
            let n = scaled(10_000);
            assert_eq!(
                run_sum(4, n, cfg),
                expected_sum(4, n),
                "lost updates with K = {shards}"
            );
        }
    }

    #[test]
    fn exact_sum_writer_assisted() {
        for shards in [1usize, 2, 4] {
            let cfg = ConcurrencyConfig {
                writers: 4,
                shards,
                backend: PropagationBackendKind::WriterAssisted,
                max_concurrency_error: 1.0,
                ..Default::default()
            };
            let n = scaled(10_000);
            assert_eq!(
                run_sum(4, n, cfg),
                expected_sum(4, n),
                "lost updates with K = {shards} (writer-assisted)"
            );
        }
    }

    #[test]
    fn writer_assisted_with_eager_phase() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            shards: 2,
            backend: PropagationBackendKind::WriterAssisted,
            max_concurrency_error: 0.04,
            ..Default::default()
        };
        assert_eq!(run_sum(4, 5_000, cfg), expected_sum(4, 5_000));
    }

    #[test]
    fn writer_assisted_spawns_no_threads() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            backend: PropagationBackendKind::WriterAssisted,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        assert!(
            sketch.handles.is_empty(),
            "threadless backend spawned threads"
        );
        let mut w = sketch.writer();
        for i in 0..10_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), (9_999 * 10_000 / 2) as f64);
    }

    #[test]
    fn writers_round_robin_over_shards() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            shards: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let writers: Vec<_> = (0..4).map(|_| sketch.writer()).collect();
        let assigned: Vec<usize> = writers.iter().map(|w| w.shard()).collect();
        assert_eq!(assigned, vec![0, 1, 0, 1]);
    }

    #[test]
    fn eager_phase_transitions_to_lazy() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 0.1, // eager limit 200
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        assert!(sketch.is_eager());
        let mut w = sketch.writer();
        for i in 0..500u64 {
            w.update(i);
        }
        assert!(!sketch.is_eager(), "should have left the eager phase");
        w.flush().unwrap();
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), (499 * 500 / 2) as f64);
    }

    #[test]
    fn snapshot_is_monotone_under_concurrent_ingestion() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let n = scaled(200_000);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let mut wr = sketch.writer();
                s.spawn(move || {
                    for i in 0..n {
                        wr.update(i % 7);
                    }
                });
            }
            let mut last = 0.0;
            for _ in 0..10_000 {
                let v = sketch.snapshot();
                assert!(v >= last, "sum went backwards: {v} < {last}");
                last = v;
            }
        });
    }

    #[test]
    fn sharded_snapshot_is_monotone_under_concurrent_ingestion() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            shards: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let n = scaled(100_000);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let mut wr = sketch.writer();
                s.spawn(move || {
                    for i in 0..n {
                        wr.update(i % 7);
                    }
                });
            }
            let mut last = 0.0;
            for _ in 0..5_000 {
                let v = sketch.snapshot();
                assert!(v >= last, "merged sum went backwards: {v} < {last}");
                last = v;
            }
        });
    }

    #[test]
    fn writers_can_join_mid_stream() {
        let cfg = ConcurrencyConfig {
            writers: 2,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        {
            let mut w1 = sketch.writer();
            for i in 0..1_000u64 {
                w1.update(i);
            }
        } // w1 dropped: flushed and retired
        {
            let mut w2 = sketch.writer();
            for i in 1_000..2_000u64 {
                w2.update(i);
            }
        }
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), (1999 * 2000 / 2) as f64);
    }

    #[test]
    fn manual_flush_makes_updates_visible() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            max_buffer_size: 16,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let mut w = sketch.writer();
        for _ in 0..5 {
            w.update(1); // stays in the local buffer (b = 16)
        }
        assert_eq!(w.buffered(), 5);
        w.flush().unwrap();
        assert_eq!(w.buffered(), 0);
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), 5.0);
    }

    #[test]
    fn batched_updates_are_exact_with_mid_batch_flushes() {
        // The sum sketch is exact, so update_batch must deliver every
        // item exactly once across awkward batch sizes (empty, single,
        // larger than b — forcing several flushes inside one call).
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            max_buffer_size: 8,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let items: Vec<u64> = (0..10_000u64).collect();
        let mut w = sketch.writer();
        let sizes = [0usize, 1, 3, 8, 27, 500];
        let mut pos = 0usize;
        let mut size_idx = 0usize;
        while pos < items.len() {
            let take = sizes[size_idx % sizes.len()].min(items.len() - pos);
            size_idx += 1;
            w.update_batch(&items[pos..pos + take]);
            pos += take;
        }
        w.flush().unwrap();
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), expected_sum(1, 10_000));
    }

    #[test]
    fn batched_updates_cross_the_eager_transition_exactly() {
        // Batches issued while the engine is still eager must fall back
        // to the scalar path item-by-item and lose nothing across the
        // EAGER → LAZY latch, including on a sharded engine.
        let cfg = ConcurrencyConfig {
            writers: 2,
            shards: 2,
            max_concurrency_error: 0.1, // eager limit 200
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    let items: Vec<u64> = (t * 5_000..(t + 1) * 5_000).collect();
                    for chunk in items.chunks(37) {
                        w.update_batch(chunk);
                    }
                });
            }
        });
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), expected_sum(2, 5_000));
        assert!(sketch.stats().eager_updates > 0, "eager phase never ran");
    }

    #[test]
    fn filtered_updates_stat_is_zero_without_a_filter() {
        // SumLocal's shouldAdd is constantly true: nothing may ever be
        // counted as filtered (the Θ-side nonzero assertion lives in the
        // theta module's saturation test).
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        {
            let mut w = sketch.writer();
            for i in 0..1_000u64 {
                w.update(i);
            }
        }
        sketch.quiesce();
        assert_eq!(sketch.stats().filtered_updates, 0);
    }

    #[test]
    fn drop_without_writers_is_clean() {
        let sketch =
            ConcurrentSketch::start(SumGlobal::default(), ConcurrencyConfig::default()).unwrap();
        drop(sketch);
    }

    #[test]
    fn drop_drains_pending_handoffs_writer_assisted() {
        // A hand-off left pending (no quiesce) must still be merged by
        // the engine's final drain before the handle drop completes.
        let cfg = ConcurrencyConfig {
            writers: 1,
            backend: PropagationBackendKind::WriterAssisted,
            max_concurrency_error: 1.0,
            max_buffer_size: 8,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        {
            let mut w = sketch.writer();
            for _ in 0..100u64 {
                w.update(1);
            }
        }
        sketch.quiesce();
        assert_eq!(sketch.snapshot(), 100.0);
    }

    #[test]
    fn image_every_throttles_image_publications() {
        // Writer-assisted so every merge happens on this thread
        // (deterministic counts), M = 4, no eager phase.
        let cfg = ConcurrencyConfig {
            writers: 2,
            shards: 2,
            backend: PropagationBackendKind::WriterAssisted,
            max_concurrency_error: 1.0,
            max_buffer_size: 8,
            image_every: 4,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        {
            let mut w0 = sketch.writer();
            let mut w1 = sketch.writer();
            for i in 0..1_000u64 {
                w0.update(i);
                w1.update(i);
            }
        }
        sketch.quiesce();
        let stats = sketch.stats();
        assert!(stats.merges >= 100, "merges = {}", stats.merges);
        // ~merges/4 + ≤ 2 forced at quiesce (start-time publications are
        // not counted): far below 1:1.
        assert!(
            stats.image_publications <= stats.merges / 4 + 8,
            "throttle ineffective: {} images for {} merges",
            stats.image_publications,
            stats.merges
        );
        assert!(stats.image_publications >= 1);
        // Quiesce restored full freshness (SumGlobal's image is its view,
        // but the engine-level contract is exactness after quiesce).
        assert_eq!(sketch.snapshot(), 2.0 * (999.0 * 1000.0 / 2.0));
        assert_eq!(sketch.query_relaxation(), sketch.relaxation() + 2 * 3 * 8);
    }

    #[test]
    fn single_shard_publishes_no_images() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let mut w = sketch.writer();
        for i in 0..10_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        sketch.quiesce();
        assert_eq!(sketch.stats().image_publications, 0);
    }

    /// A sum sketch whose merge panics when the buffer contains the
    /// poison value — models a propagator killed by a corrupt hand-off.
    #[derive(Debug, Default)]
    struct PoisonableSumGlobal {
        inner: SumGlobal,
    }

    const POISON: u64 = u64::MAX;

    impl GlobalSketch for PoisonableSumGlobal {
        type Local = SumLocal;
        type View = crate::sync::AtomicF64;
        type Snapshot = f64;

        fn new_local(&self) -> SumLocal {
            SumLocal::default()
        }
        fn new_view(&self) -> Self::View {
            self.inner.new_view()
        }
        fn merge(&mut self, local: &mut SumLocal) {
            assert!(
                !local.items.contains(&POISON),
                "poisoned hand-off killed the propagator"
            );
            self.inner.merge(local);
        }
        fn update_direct(&mut self, item: u64) {
            self.inner.update_direct(item);
        }
        fn publish(&self, view: &Self::View) {
            self.inner.publish(view);
        }
        fn snapshot(view: &Self::View) -> f64 {
            SumGlobal::snapshot(view)
        }
        fn calc_hint(&self) {}
        fn stream_len(&self) -> u64 {
            self.inner.stream_len()
        }
        fn merge_shard_views(views: &[&Self::View]) -> f64 {
            SumGlobal::merge_shard_views(views)
        }
    }

    #[test]
    fn dead_propagator_surfaces_flush_error_without_deadlock() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0, // no eager phase
            max_buffer_size: 4,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(PoisonableSumGlobal::default(), cfg).unwrap();
        let mut w = sketch.writer();
        // Fill and hand off a clean buffer first so a completed
        // propagation sits behind the poisoned one.
        for i in 0..4u64 {
            w.update(i);
        }
        // Fill a poisoned buffer; the boundary flush hands it off and the
        // propagator dies merging it.
        w.update(POISON);
        for i in 0..3u64 {
            w.update(i);
        }
        // The next flush must fail fast instead of spinning on the
        // never-completing hand-off.
        let mut got = Ok(());
        for i in 0..64u64 {
            w.update(i);
            got = w.flush();
            if got.is_err() {
                break;
            }
        }
        assert_eq!(
            got,
            Err(FlushError::PropagatorDead { shard: 0 }),
            "flush must surface the dead propagator"
        );
        // The latch is sticky and the buffer was discarded.
        assert_eq!(w.buffered(), 0);
        w.update(7);
        assert_eq!(got, w.flush(), "repeat flush must fail fast");
        assert!(sketch.is_degraded());
        // Neither quiesce nor teardown may hang or re-panic.
        sketch.quiesce();
        drop(w);
        drop(sketch);
    }

    #[test]
    fn flush_after_clean_run_is_ok() {
        let cfg = ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 1.0,
            max_buffer_size: 8,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        let mut w = sketch.writer();
        for i in 0..100u64 {
            w.update(i);
        }
        assert_eq!(w.flush(), Ok(()));
        assert!(!sketch.is_degraded());
    }

    #[test]
    fn relaxation_accessor() {
        let cfg = ConcurrencyConfig {
            writers: 4,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let r = cfg.relaxation();
        let sketch = ConcurrentSketch::start(SumGlobal::default(), cfg).unwrap();
        assert_eq!(sketch.relaxation(), r);
        let sharded = ConcurrencyConfig {
            writers: 4,
            shards: 4,
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        let sketch = ConcurrentSketch::start(SumGlobal::default(), sharded).unwrap();
        assert_eq!(sketch.relaxation(), r, "r must not depend on K");
        assert_eq!(sketch.shard_count(), 4);
    }
}
