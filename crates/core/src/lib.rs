//! # fcds-core — the generic concurrent sketch framework
//!
//! This crate is the primary contribution of
//! [*Fast Concurrent Data Sketches*](https://arxiv.org/abs/1902.10995)
//! (PODC 2019), reimplemented in Rust: a generic algorithm that wraps a
//! sequential *composable* sketch and serves **real-time queries
//! concurrently with multi-threaded ingestion**, with a provable
//! consistency guarantee — strong linearisability with respect to an
//! *r-relaxation* of the sequential sketch, `r = 2Nb` for `N` update
//! threads with local buffers of size `b` (Theorem 1).
//!
//! ## Architecture (Algorithm 2, sharded)
//!
//! ```text
//!  update threads t1..tN            K shards                    queries
//!  ┌───────────────────┐  prop_i  ┌──────────────────────┐  ┌───────────┐
//!  │ shouldAdd(hint,a)?│──hand-off──▶ shard 0: global+view │  │ merge all │
//!  │ localS_i[cur_i]   │◀──hint───│ shard 1: global+view ─┼─▶│ shard     │
//!  └───────────────────┘          │   …                   │  │ views     │
//!     (round-robined onto shards) │ shard K−1             │  └───────────┘
//!                                 └──────────────────────┘
//!                  propagation backend: one dedicated thread per shard
//!                  (the paper's t0), or writer-assisted (threadless)
//! ```
//!
//! * Each update thread buffers into a local sketch and hands it off via
//!   a single atomic (`prop_i`) every `b` updates — one memory fence per
//!   batch ([`sync::PropSlot`]).
//! * A [`runtime::PropagationBackend`] merges local buffers into the
//!   writer's shard and *publishes* a snapshot through an atomic view
//!   (Θ: a seqlock triple; Quantiles: an epoch-managed pointer) —
//!   queries never touch the global sketches and never block. The
//!   default is the paper's dedicated thread, one per shard; the
//!   writer-assisted backend removes the background thread entirely.
//! * Queries merge the `K` shard views losslessly
//!   ([`composable::GlobalSketch::merge_shard_views`]): Θ unions, HLL
//!   register max, Quantiles sample union, Misra–Gries counter addition.
//!   The relaxation bound stays `r = 2Nb` for any `K` — writers, not
//!   shards, carry the relaxation. Θ's shard image is published as
//!   chunked copy-on-write blocks (O(1) per publication, not
//!   O(retained)), and `ConcurrencyConfig::image_every` can throttle
//!   image publication to every M-th merge for a checker-verified
//!   bounded-staleness trade (`query_relaxation() = 2Nb + K·(M−1)·b`).
//! * The hint piggy-backed on `prop_i` (Θ itself for the Θ sketch) lets
//!   update threads pre-filter doomed updates (`shouldAdd`), which is
//!   what makes the design scale (Figure 1).
//! * For small streams the framework runs in the **eager** phase of
//!   §5.3 — updates go straight to the global sketch, serialised — so
//!   short streams suffer no relaxation error; it adapts to the buffered
//!   mode once the stream passes `2/e²` ([`config::ConcurrencyConfig`]).
//!
//! ## Instantiations
//!
//! * [`theta::ConcurrentThetaSketch`] — the concurrent Θ sketch the paper
//!   contributed to Apache DataSketches (§7's evaluation subject).
//! * [`quantiles::ConcurrentQuantilesSketch`] — the §6.2 instantiation.
//! * [`hll::ConcurrentHllSketch`] — an extra instantiation (future work
//!   per §8) with a novel min-register pre-filter hint.
//! * [`frequency::ConcurrentFrequencySketch`] — Misra–Gries heavy
//!   hitters with pre-aggregating local buffers.
//! * [`lock_based`] — the lock-protected baseline all figures compare
//!   against.
//!
//! Implement [`composable::GlobalSketch`]/[`composable::LocalSketch`] to
//! parallelise your own sketch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod composable;
pub mod config;
pub mod engine;
pub mod frequency;
pub mod hll;
pub mod lock_based;
pub mod quantiles;
pub mod runtime;
pub mod sync;
pub mod theta;

pub use config::{ConcurrencyConfig, PropagationBackendKind};
pub use engine::{
    EngineBuilder, EngineWriter, Family, FrequencyFamily, HllFamily, QuantilesFamily, StreamEngine,
    ThetaFamily, WireImage,
};
pub use runtime::{
    ConcurrentSketch, DedicatedThreadBackend, FlushError, PropagationBackend, SketchWriter,
    WriterAssistedBackend,
};

/// Test-only helpers shared by this crate's heavy suites and the facade
/// integration tests. Not part of the public API.
#[doc(hidden)]
pub mod test_support {
    /// Scales a stream size to the host's parallelism: the heavy
    /// multi-threaded suites are latency-bound on propagation hand-off
    /// when writers and propagators time-slice on few cores, so running
    /// quarter-size streams on a 1-CPU CI container keeps the same
    /// coverage at a quarter of the wall clock. Full size from 4 cores
    /// up; never scales below `n / 4`.
    pub fn scaled(n: u64) -> u64 {
        let par = std::thread::available_parallelism()
            .map(|p| p.get() as u64)
            .unwrap_or(1);
        (n * par.min(4) / 4).max(1)
    }
}
