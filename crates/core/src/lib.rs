//! # fcds-core — the generic concurrent sketch framework
//!
//! This crate is the primary contribution of
//! [*Fast Concurrent Data Sketches*](https://arxiv.org/abs/1902.10995)
//! (PODC 2019), reimplemented in Rust: a generic algorithm that wraps a
//! sequential *composable* sketch and serves **real-time queries
//! concurrently with multi-threaded ingestion**, with a provable
//! consistency guarantee — strong linearisability with respect to an
//! *r-relaxation* of the sequential sketch, `r = 2Nb` for `N` update
//! threads with local buffers of size `b` (Theorem 1).
//!
//! ## Architecture (Algorithm 2)
//!
//! ```text
//!  update threads t1..tN                    propagator t0         queries
//!  ┌───────────────────┐   prop_i (atomic)  ┌─────────────┐   ┌──────────┐
//!  │ shouldAdd(hint,a)?│──────hand-off─────▶│ merge local │   │ snapshot │
//!  │ localS_i[cur_i]   │◀────hint (Θ)───────│ into global │──▶│ from view│
//!  └───────────────────┘                    │ publish est │   └──────────┘
//!                                           └─────────────┘
//! ```
//!
//! * Each update thread buffers into a local sketch and hands it off via
//!   a single atomic (`prop_i`) every `b` updates — one memory fence per
//!   batch ([`sync::PropSlot`]).
//! * A dedicated propagator merges local buffers into the global sketch
//!   and *publishes* a snapshot through an atomic view (Θ: a seqlock
//!   triple; Quantiles: an epoch-managed pointer) — queries never touch
//!   the global sketch and never block.
//! * The hint piggy-backed on `prop_i` (Θ itself for the Θ sketch) lets
//!   update threads pre-filter doomed updates (`shouldAdd`), which is
//!   what makes the design scale (Figure 1).
//! * For small streams the framework runs in the **eager** phase of
//!   §5.3 — updates go straight to the global sketch, serialised — so
//!   short streams suffer no relaxation error; it adapts to the buffered
//!   mode once the stream passes `2/e²` ([`config::ConcurrencyConfig`]).
//!
//! ## Instantiations
//!
//! * [`theta::ConcurrentThetaSketch`] — the concurrent Θ sketch the paper
//!   contributed to Apache DataSketches (§7's evaluation subject).
//! * [`quantiles::ConcurrentQuantilesSketch`] — the §6.2 instantiation.
//! * [`hll::ConcurrentHllSketch`] — an extra instantiation (future work
//!   per §8) with a novel min-register pre-filter hint.
//! * [`frequency::ConcurrentFrequencySketch`] — Misra–Gries heavy
//!   hitters with pre-aggregating local buffers.
//! * [`lock_based`] — the lock-protected baseline all figures compare
//!   against.
//!
//! Implement [`composable::GlobalSketch`]/[`composable::LocalSketch`] to
//! parallelise your own sketch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod composable;
pub mod config;
pub mod frequency;
pub mod hll;
pub mod lock_based;
pub mod quantiles;
pub mod runtime;
pub mod sync;
pub mod theta;

pub use config::ConcurrencyConfig;
pub use runtime::{ConcurrentSketch, SketchWriter};
