//! The concurrent Θ sketch — the instantiation the paper contributed to
//! Apache DataSketches and evaluates in §7.
//!
//! * The **global sketch** is a sequential quick-select Θ sketch (the
//!   `HeapQuickSelectSketch` family, §7.1) owned by the propagator.
//! * Its published **view** is the snapshot triple (estimate, Θ,
//!   retained) behind a single-writer seqlock — the paper's composable Θ
//!   sketch publishes the atomic `est`; we additionally expose Θ and the
//!   retained count (consistently) because the relaxation checker needs
//!   them. Queries never touch the global sketch itself.
//! * **Local sketches** are plain hash buffers: items are hashed once on
//!   the update thread, pre-filtered by the piggy-backed hint
//!   (`shouldAdd(Θ_g, a) ⇔ h(a) < Θ_g`, §5.1), and handed to the
//!   propagator in batches of `b`.
//!
//! The hint filter is what makes Figure 1's near-perfect scalability
//! possible: once Θ shrinks, almost all updates die on the update thread
//! without any synchronisation.

use crate::composable::{extend_compact_u64, GlobalSketch, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, FlushError, SketchWriter};
use crate::sync::{EpochCell, SeqSnapshot};
use bytes::Bytes;
use fcds_sketches::error::Result;
use fcds_sketches::hash::{hash_batch_with_seed, Hashable, DEFAULT_SEED};
use fcds_sketches::oracle::Oracle;
use fcds_sketches::theta::{
    normalize_hash, theta_to_fraction, untrimmed_union, untrimmed_union_unsorted, BlockSnapshot,
    CompactThetaSketch, HashBlocks, QuickSelectThetaSketch, ThetaRead,
};
use fcds_sketches::wire::{encode_theta_unsorted, WireEncode};

/// A consistent query snapshot of the concurrent Θ sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaSnapshot {
    /// The distinct-count estimate (`est`).
    pub estimate: f64,
    /// The threshold Θ at the time of the snapshot (integer hash domain).
    pub theta: u64,
    /// Number of retained samples.
    pub retained: u64,
}

impl ThetaSnapshot {
    /// Θ as a fraction of the hash domain (the paper's real-valued Θ).
    pub fn theta_fraction(&self) -> f64 {
        theta_to_fraction(self.theta)
    }
}

/// The global side of the concurrent Θ sketch (the composable sketch of
/// §5.1 with `snapshot`/`calcHint`/`shouldAdd`).
#[derive(Debug)]
pub struct ThetaGlobal {
    sketch: QuickSelectThetaSketch,
    /// Distinct hashes accepted so far; drives the §5.3 adaptation.
    ingested: u64,
    /// Chunked copy-on-write mirror of the retained set, maintained only
    /// once [`GlobalSketch::prepare_sharded`] enabled it (i.e. on sharded
    /// engines). `None` on single-shard deployments, which therefore pay
    /// nothing for image publication — neither maintenance nor memory.
    blocks: Option<HashBlocks>,
}

impl ThetaGlobal {
    /// Wraps an empty quick-select sketch.
    pub fn new(lg_k: u8, seed: u64) -> Result<Self> {
        Ok(ThetaGlobal {
            sketch: QuickSelectThetaSketch::new(lg_k, seed)?,
            ingested: 0,
            blocks: None,
        })
    }

    fn image_now(&self) -> ThetaShardImage {
        let blocks = match &self.blocks {
            // Steady state: O(1) — two `Arc` clones of blocks the merge
            // path already maintained incrementally.
            Some(b) => b.snapshot(),
            // Fallback for publish_sharded without prepare_sharded
            // (custom embeddings): the pre-block O(retained) collect.
            None => {
                let mut b = HashBlocks::new();
                b.rebuild(self.sketch.hashes());
                b.snapshot()
            }
        };
        ThetaShardImage {
            theta: self.sketch.theta(),
            seed: self.sketch.seed(),
            blocks,
        }
    }

    fn snapshot_now(&self) -> ThetaSnapshot {
        ThetaSnapshot {
            estimate: self.sketch.estimate(),
            theta: self.sketch.theta(),
            retained: self.sketch.retained() as u64,
        }
    }

    /// Folds a newly *retained* hash into the block mirror, rebuilding it
    /// wholesale when Θ moved (the sketch evicted samples). The rebuild is
    /// O(retained) but the quick-select sketch only drops Θ once per
    /// ~0.875k accepted hashes, so the mirror stays O(1) amortised per
    /// accepted update.
    #[inline]
    fn mirror_retained(&mut self, hash: u64, theta_before: u64) {
        if let Some(blocks) = self.blocks.as_mut() {
            if self.sketch.theta() < theta_before {
                blocks.rebuild(self.sketch.hashes());
            } else {
                blocks.push(hash);
            }
        }
    }
}

/// An unsorted point-in-time image of one Θ shard: the threshold plus the
/// retained hashes, in whatever order they were accepted, chunked into
/// copy-on-write blocks ([`fcds_sketches::theta::blocks`]).
///
/// Publishing happens on the propagation path once per merge, so the
/// image is built to be O(1) to take: the blocks are shared with the
/// propagator's mirror, no hash is copied and no sort runs — queries are
/// the rare side, and the shard merge sorts the union once.
#[derive(Debug, Clone)]
pub struct ThetaShardImage {
    theta: u64,
    seed: u64,
    blocks: BlockSnapshot,
}

impl ThetaRead for ThetaShardImage {
    fn theta(&self) -> u64 {
        self.theta
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn retained(&self) -> usize {
        self.blocks.len() as usize
    }

    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        Box::new(self.blocks.iter())
    }
}

/// The published view of one Θ shard.
///
/// The seqlock triple serves single-shard fast-path queries exactly as
/// before; the shard image is only written by
/// [`GlobalSketch::publish_sharded`] — i.e., when the engine actually
/// runs `K > 1` shards — and is what the query-time shard union
/// consumes. Single-shard deployments never touch the image (it starts
/// empty and lazy), and sharded publication shares the propagator's
/// copy-on-write block mirror, so no publication copies the retained
/// set.
#[derive(Debug)]
pub struct ThetaView {
    triple: SeqSnapshot<ThetaSnapshot>,
    image: EpochCell<ThetaShardImage>,
}

/// The local side: a buffer of pre-hashed, pre-filtered updates.
#[derive(Debug, Default)]
pub struct ThetaLocal {
    hashes: Vec<u64>,
}

impl LocalSketch for ThetaLocal {
    /// Items are already-normalised 64-bit hashes: hashing happens once,
    /// on the update thread.
    type Item = u64;
    /// The hint is the global sketch's Θ (Algorithm 1's `calcHint`).
    type Hint = u64;

    fn update(&mut self, hash: u64) {
        self.hashes.push(hash);
    }

    fn update_batch(&mut self, hashes: &[u64]) {
        self.hashes.extend_from_slice(hashes);
    }

    /// Branchless batch filter: compact the hashes below the hint and
    /// append them in one reserved extend — the Θ half of the batched
    /// ingestion fast path.
    fn update_batch_filtered(&mut self, hint: u64, hashes: &[u64]) -> usize {
        extend_compact_u64(&mut self.hashes, hashes, |h| h < hint)
    }

    /// `shouldAdd(H, a) ⇔ h(a) < H` (Algorithm 1 line 26). Safe because Θ
    /// is monotonically decreasing: a hash at or above the current Θ can
    /// never enter the sample set.
    fn should_add(hint: u64, hash: &u64) -> bool {
        *hash < hint
    }

    fn clear(&mut self) {
        self.hashes.clear();
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }
}

impl GlobalSketch for ThetaGlobal {
    type Local = ThetaLocal;
    type View = ThetaView;
    type Snapshot = ThetaSnapshot;

    fn new_local(&self) -> ThetaLocal {
        ThetaLocal::default()
    }

    fn new_view(&self) -> Self::View {
        // The image starts *empty* (not a materialised copy of the
        // retained set): single-shard deployments never publish or read
        // it, and the sharded engine publishes a real image before the
        // view becomes reachable, so eagerly collecting O(retained)
        // hashes here would be pure waste.
        ThetaView {
            triple: SeqSnapshot::new(self.snapshot_now()),
            image: EpochCell::new(ThetaShardImage {
                theta: self.sketch.theta(),
                seed: self.sketch.seed(),
                blocks: BlockSnapshot::empty(),
            }),
        }
    }

    fn merge(&mut self, local: &mut ThetaLocal) {
        if self.blocks.is_none() {
            // No mirror to maintain (single-shard deployments): fold the
            // whole buffer through the batched quick-select path, which
            // is state-identical to the scalar loop but hoists Θ and the
            // rebuild check out of it.
            self.ingested += self.sketch.update_hashes(&local.hashes);
            local.hashes.clear();
            return;
        }
        for h in local.hashes.drain(..) {
            let theta_before = self.sketch.theta();
            if self.sketch.update_hash(h) {
                self.ingested += 1;
                self.mirror_retained(h, theta_before);
            }
        }
    }

    fn update_direct(&mut self, hash: u64) {
        let theta_before = self.sketch.theta();
        if self.sketch.update_hash(hash) {
            self.ingested += 1;
            self.mirror_retained(hash, theta_before);
        }
    }

    fn publish(&self, view: &Self::View) {
        view.triple.write(self.snapshot_now());
    }

    fn publish_sharded(&self, view: &Self::View) {
        view.triple.write(self.snapshot_now());
        view.image.store(self.image_now());
    }

    fn snapshot(view: &Self::View) -> ThetaSnapshot {
        view.triple.read()
    }

    fn merge_shard_views(views: &[&Self::View]) -> ThetaSnapshot {
        // The block-aware untrimmed union of the shard images (the
        // reference implementation lives in `fcds_relaxation::sharded`):
        // joint Θ = min Θᵢ, retained = every distinct hash below it.
        // Sorting happens here, once per query, not on the propagation
        // path.
        let images: Vec<_> = views.iter().map(|v| v.image.load()).collect();
        let union = untrimmed_union_unsorted(images.iter().map(|i| i.as_ref()))
            .expect("shard images share one hash seed");
        ThetaSnapshot {
            estimate: union.estimate(),
            theta: union.theta(),
            retained: union.retained() as u64,
        }
    }

    fn new_shard(&self) -> Self {
        ThetaGlobal::new(self.sketch.lg_k(), self.sketch.seed())
            .expect("shard parameters were already validated")
    }

    fn prepare_sharded(&mut self) {
        let mut blocks = HashBlocks::new();
        blocks.rebuild(self.sketch.hashes());
        self.blocks = Some(blocks);
    }

    fn calc_hint(&self) -> u64 {
        self.sketch.theta()
    }

    fn stream_len(&self) -> u64 {
        self.ingested
    }
}

/// Builder for [`ConcurrentThetaSketch`].
///
/// **Deprecated:** prefer the family-generic
/// [`EngineBuilder<ThetaFamily>`](crate::engine::EngineBuilder), which
/// shares one set of concurrency knobs across all four sketch families.
/// This per-family builder remains as a thin shim for one release and
/// will be removed.
///
/// # Examples
///
/// ```
/// use fcds_core::theta::ConcurrentThetaBuilder;
///
/// let sketch = ConcurrentThetaBuilder::new()
///     .lg_k(12)                    // k = 4096 (the paper's default)
///     .writers(4)                  // N update threads
///     .max_concurrency_error(0.04) // e; eager limit = 2/e² = 1250
///     .build()
///     .unwrap();
/// let mut w = sketch.writer();
/// for i in 0..10_000u64 {
///     w.update(i);
/// }
/// w.flush().unwrap();
/// sketch.quiesce();
/// assert!((sketch.estimate() - 10_000.0).abs() / 10_000.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrentThetaBuilder {
    lg_k: u8,
    seed: u64,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentThetaBuilder {
    fn default() -> Self {
        ConcurrentThetaBuilder {
            lg_k: 12,
            seed: DEFAULT_SEED,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentThetaBuilder {
    /// Starts from the paper's defaults: `lg_k = 12` (k = 4096),
    /// `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `lg_k` (nominal sample size `k = 2^lg_k`).
    pub fn lg_k(mut self, lg_k: u8) -> Self {
        self.lg_k = lg_k;
        self
    }

    /// Sets the hash seed directly.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws the hash seed from a de-randomisation oracle (§4).
    pub fn oracle(mut self, oracle: &mut dyn Oracle) -> Self {
        self.seed = oracle.hash_seed();
        self
    }

    /// Sets the expected number of update threads `N`.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency (`e`,
    /// §7.1). `1.0` disables the eager phase.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Caps the local buffer size `b`.
    pub fn max_buffer_size(mut self, b: u64) -> Self {
        self.config.max_buffer_size = b;
        self
    }

    /// Selects `OptParSketch` (true, default) or the unoptimised
    /// `ParSketch` (false).
    pub fn double_buffering(mut self, enabled: bool) -> Self {
        self.config.double_buffering = enabled;
        self
    }

    /// Splits the global sketch into `K` shards (writers round-robined,
    /// queries merged via an untrimmed Θ union). `r = 2Nb` is unchanged.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend (dedicated thread per shard by
    /// default; writer-assisted for threadless embedding).
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Publishes each shard's mergeable image only on every `m`-th merge
    /// (default 1). The seqlock triple still publishes on every merge;
    /// merged queries may additionally miss up to `(m − 1)·b` updates per
    /// shard (see [`ConcurrencyConfig::query_relaxation`]), and
    /// [`ConcurrentThetaSketch::quiesce`] restores full freshness. Only
    /// meaningful with [`Self::shards`] > 1.
    pub fn image_every(mut self, m: u64) -> Self {
        self.config.image_every = m;
        self
    }

    /// Ablation: disables the Θ hint pre-filter (`shouldAdd`), shipping
    /// every update through the hand-off protocol. Benchmarking only.
    pub fn disable_prefilter(mut self, disabled: bool) -> Self {
        self.config.disable_prefilter = disabled;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch (spawning the propagator thread).
    pub fn build(self) -> Result<ConcurrentThetaSketch> {
        let global = ThetaGlobal::new(self.lg_k, self.seed)?;
        let lg_k = self.lg_k;
        let seed = self.seed;
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentThetaSketch { inner, lg_k, seed })
    }
}

/// The concurrent Θ sketch (the paper's headline artefact).
///
/// Queries ([`estimate`](Self::estimate), [`snapshot`](Self::snapshot))
/// may be issued from any thread at any time and satisfy the r-relaxed
/// consistency of Theorem 1 with `r = 2Nb`. One [`ThetaWriter`] per
/// update thread ingests the stream.
#[derive(Debug)]
pub struct ConcurrentThetaSketch {
    inner: ConcurrentSketch<ThetaGlobal>,
    lg_k: u8,
    seed: u64,
}

impl ConcurrentThetaSketch {
    /// Shorthand for [`ConcurrentThetaBuilder::new`].
    pub fn builder() -> ConcurrentThetaBuilder {
        ConcurrentThetaBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> ThetaWriter {
        ThetaWriter {
            inner: self.inner.writer(),
            seed: self.seed,
        }
    }

    /// The current distinct-count estimate (reads one atomic snapshot;
    /// never blocks ingestion).
    pub fn estimate(&self) -> f64 {
        self.inner.snapshot().estimate
    }

    /// A consistent (estimate, Θ, retained) snapshot.
    pub fn snapshot(&self) -> ThetaSnapshot {
        self.inner.snapshot()
    }

    /// Nominal sample size `k`.
    pub fn k(&self) -> usize {
        1 << self.lg_k
    }

    /// The hash seed (update threads and mergeable peers must share it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The relaxation bound `r = 2Nb` (or `Nb` without double buffering).
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// The merged-query staleness bound: [`Self::relaxation`] plus
    /// `K·(M − 1)·b` when image publication is throttled
    /// (`image_every = M > 1` on a sharded engine).
    pub fn query_relaxation(&self) -> u64 {
        self.inner.query_relaxation()
    }

    /// Whether the sketch is still in the eager phase (§5.3).
    pub fn is_eager(&self) -> bool {
        self.inner.is_eager()
    }

    /// Waits until all handed-off buffers have been merged and published.
    /// Flush the writers first to capture their partial buffers.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }

    /// Freezes the current global state into an immutable compact sketch
    /// (for set operations or serialisation). With `K > 1` shards this is
    /// the untrimmed union of the shard images. Takes the shard locks in
    /// turn; not a hot-path operation.
    pub fn compact(&self) -> CompactThetaSketch {
        let mut parts = self.inner.with_globals(|g| g.sketch.compact());
        if parts.len() == 1 {
            return parts.pop().expect("at least one shard");
        }
        untrimmed_union(parts.iter()).expect("shards share one hash seed")
    }

    /// One wire image per shard, streamed straight from the propagators'
    /// copy-on-write block snapshots in insertion order (flag
    /// `FLAG_THETA_UNSORTED`) — no sort, no shard union on the export
    /// path. Decoders canonicalise, and the untrimmed union of the shard
    /// images equals [`WireImage::wire_image`]'s sketch.
    ///
    /// [`WireImage::wire_image`]: crate::engine::WireImage::wire_image
    pub fn shard_wire_images(&self) -> Vec<Bytes> {
        self.inner
            .with_globals(|g| encode_theta_unsorted(&g.image_now()))
    }

    /// The configured error bound `max{e + 1/√k, 2/√k}` (§7.1).
    pub fn error_bound(&self) -> f64 {
        self.inner.config().error_bound(self.k())
    }

    /// Engine diagnostics: merges performed, eager updates, hand-offs.
    pub fn stats(&self) -> crate::runtime::EngineStats {
        self.inner.stats()
    }
}

/// Serialises the merged global state into a unified wire image
/// (Θ family, canonical sorted form — see `fcds_sketches::wire`): the
/// per-node export of the "sketch anywhere, merge anywhere" tier. A
/// central node fans these in with
/// `fcds_sketches::wire::merge_wire_images` (untrimmed union) without
/// ever having seen the streams; a coordinator merging every query
/// tick should hold a `fcds_sketches::wire::MergeScratch` and call
/// `theta_multiway_union_into` for an allocation-free k-way union
/// straight off the raw images.
impl crate::engine::WireImage for ConcurrentThetaSketch {
    fn wire_image(&self) -> Bytes {
        self.compact().to_wire_bytes()
    }
}

/// Per-thread writer for [`ConcurrentThetaSketch`].
#[derive(Debug)]
pub struct ThetaWriter {
    inner: SketchWriter<ThetaGlobal>,
    seed: u64,
}

impl ThetaWriter {
    /// Processes one stream item: hashes it (once) and runs the
    /// `shouldAdd` pre-filter before buffering.
    #[inline]
    pub fn update<T: Hashable>(&mut self, item: T) {
        self.inner
            .update(normalize_hash(item.hash_with_seed(self.seed)));
    }

    /// Processes a pre-hashed item (must be normalised, i.e. non-zero).
    #[inline]
    pub fn update_hash(&mut self, hash: u64) {
        debug_assert_ne!(hash, 0);
        self.inner.update(hash);
    }

    /// Processes a batch of stream items through the fused fast path:
    /// one pass hashes each item (the fixed-width murmur3 lane for
    /// integer keys), normalises and filters it against one hoisted Θ
    /// hint read per chunk — all in registers, the hash array of the
    /// scalar path's per-call plumbing never materialises — and
    /// branchlessly compacts the rare survivors into a stack buffer
    /// that is appended to the local buffer in one reserved extend,
    /// handing off at `b`-boundaries mid-batch
    /// (`SketchWriter::push_accepted`).
    ///
    /// Equivalent to calling [`Self::update`] once per item: the hint
    /// may go stale within a chunk, which is safe because Θ only
    /// decreases — a stale hint filters *less*, and the global sketch
    /// rejects the extra hashes at merge time (see the
    /// [`crate::runtime`] module docs).
    pub fn update_batch<T: Hashable>(&mut self, items: &[T]) {
        const CHUNK: usize = 32;
        let mut rest = items;
        // Eager phase (§5.3): scalar until the writer latches lazy.
        while !self.inner.is_lazy() {
            let Some((first, tail)) = rest.split_first() else {
                return;
            };
            self.update(first);
            rest = tail;
        }
        if !self.inner.prefilter_enabled() {
            // Ablated filter: hash and ship everything.
            let mut hashes = [0u64; CHUNK];
            for chunk in rest.chunks(CHUNK) {
                hash_batch_with_seed(chunk, self.seed, &mut hashes[..chunk.len()]);
                for h in &mut hashes[..chunk.len()] {
                    *h = normalize_hash(*h);
                }
                self.inner.push_accepted(&hashes[..chunk.len()]);
            }
            return;
        }
        let mut survivors = [0u64; CHUNK];
        for chunk in rest.chunks(CHUNK) {
            // One hint read per chunk; flushes inside push_accepted
            // refresh it for the next chunk.
            let hint = self.inner.hint();
            let mut kept = 0usize;
            for item in chunk {
                let h = normalize_hash(item.hash_with_seed(self.seed));
                // Branchless compaction: always write, advance past
                // survivors only. The hash chains stay independent, so
                // the CPU overlaps them across iterations.
                survivors[kept] = h;
                kept += (h < hint) as usize;
            }
            self.inner.note_filtered((chunk.len() - kept) as u64);
            self.inner.push_accepted(&survivors[..kept]);
        }
    }

    /// Batched variant of [`Self::update_hash`] for pre-hashed streams
    /// (every hash must be normalised, i.e. non-zero).
    pub fn update_hashes(&mut self, hashes: &[u64]) {
        debug_assert!(hashes.iter().all(|&h| h != 0));
        self.inner.update_batch(hashes);
    }

    /// Hands the partially filled local buffer to the propagator.
    ///
    /// # Errors
    ///
    /// See [`SketchWriter::flush`]: [`FlushError::PropagatorDead`] when
    /// the shard's propagation service died (buffered updates were
    /// discarded; the writer is latched dead), [`FlushError::ShuttingDown`]
    /// when the engine was dropped mid-flush.
    pub fn flush(&mut self) -> std::result::Result<(), FlushError> {
        self.inner.flush()
    }

    /// Number of locally buffered (not yet visible) updates.
    pub fn buffered(&self) -> u64 {
        self.inner.buffered()
    }

    /// Updates dropped by the Θ hint pre-filter on this writer.
    pub fn filtered(&self) -> u64 {
        self.inner.filtered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::scaled;
    use fcds_sketches::theta::{rse, THETA_MAX};

    fn build(lg_k: u8, writers: usize, e: f64) -> ConcurrentThetaSketch {
        ConcurrentThetaBuilder::new()
            .lg_k(lg_k)
            .seed(42)
            .writers(writers)
            .max_concurrency_error(e)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = build(12, 1, 0.04);
        assert_eq!(s.estimate(), 0.0);
        let snap = s.snapshot();
        assert_eq!(snap.theta, THETA_MAX);
        assert_eq!(snap.retained, 0);
    }

    #[test]
    fn tiny_stream_with_eager_is_exact() {
        // Below the eager limit (1250) the sketch processes sequentially:
        // zero relaxation error, exact answers in exact mode (§5.3).
        let s = build(12, 2, 0.04);
        let mut w = s.writer();
        for i in 0..1_000u64 {
            w.update(i);
        }
        assert_eq!(s.estimate(), 1_000.0, "eager phase must be exact");
        assert!(s.is_eager());
    }

    #[test]
    fn single_writer_large_stream_accuracy() {
        let s = build(12, 1, 0.04);
        let n = scaled(500_000);
        let mut w = s.writer();
        for i in 0..n {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(4096), "relative error {rel}");
    }

    #[test]
    fn multi_writer_disjoint_streams_accuracy() {
        let s = build(12, 4, 0.04);
        let n_per = scaled(250_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                });
            }
        });
        s.quiesce();
        let n = 4.0 * n_per as f64;
        let rel = (s.estimate() - n).abs() / n;
        assert!(rel < 5.0 * rse(4096), "relative error {rel}");
    }

    #[test]
    fn multi_writer_overlapping_streams_count_once() {
        let s = build(11, 4, 0.04);
        let n = scaled(200_000);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(i); // all writers feed the same items
                    }
                });
            }
        });
        s.quiesce();
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(2048) + 0.01, "relative error {rel}");
    }

    #[test]
    fn queries_never_block_and_are_monotonicish() {
        // Distinct stream: the estimate should (weakly) grow; transient
        // non-monotonicity within the estimator noise is allowed, so we
        // only check it never collapses.
        let s = build(12, 2, 0.04);
        let n = scaled(300_000);
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(t * n + i);
                    }
                });
            }
            let mut peak: f64 = 0.0;
            for _ in 0..5_000 {
                let est = s.estimate();
                assert!(est >= 0.0);
                peak = peak.max(est);
                assert!(
                    est >= peak * 0.5,
                    "estimate collapsed: {est} vs peak {peak}"
                );
            }
        });
    }

    #[test]
    fn relaxation_staleness_bound_after_flush() {
        // After all writers flush and the engine quiesces, the snapshot
        // must reflect *every* update (staleness 0 at quiescence).
        let s = build(10, 3, 1.0); // no eager: pure relaxed mode
        let n_per = scaled(50_000);
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let n = 3.0 * n_per as f64;
        let rel = (s.estimate() - n).abs() / n;
        assert!(rel < 5.0 * rse(1024), "relative error {rel}");
    }

    #[test]
    fn compact_matches_snapshot() {
        let s = build(10, 1, 0.04);
        let mut w = s.writer();
        for i in 0..100_000u64 {
            w.update(i);
        }
        w.flush().unwrap();
        s.quiesce();
        let snap = s.snapshot();
        let compact = s.compact();
        assert_eq!(compact.theta(), snap.theta);
        assert_eq!(compact.retained() as u64, snap.retained);
    }

    #[test]
    fn compact_sketches_from_writers_union_correctly() {
        use fcds_sketches::theta::ThetaUnion;
        let s1 = build(10, 1, 0.04);
        let s2 = build(10, 1, 0.04);
        let n = scaled(80_000);
        {
            let mut w1 = s1.writer();
            let mut w2 = s2.writer();
            for i in 0..n {
                w1.update(i);
                w2.update(i + n / 2);
            }
        }
        s1.quiesce();
        s2.quiesce();
        let mut u = ThetaUnion::new(10, 42).unwrap();
        u.update(&s1.compact()).unwrap();
        u.update(&s2.compact()).unwrap();
        let est = u.result().estimate();
        let truth = 1.5 * n as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.1, "union relative error {rel}");
    }

    #[test]
    fn unoptimised_parsketch_variant_works() {
        let s = ConcurrentThetaBuilder::new()
            .lg_k(10)
            .seed(7)
            .writers(2)
            .max_concurrency_error(1.0)
            .double_buffering(false)
            .build()
            .unwrap();
        assert_eq!(s.relaxation(), 2 * s.inner.config().buffer_size());
        let n = scaled(100_000);
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(t * n + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let truth = 2.0 * n as f64;
        let rel = (s.estimate() - truth).abs() / truth;
        assert!(rel < 5.0 * rse(1024), "relative error {rel}");
    }

    #[test]
    fn hint_filter_reduces_buffered_traffic() {
        // Once Θ is small, almost every update dies at shouldAdd: the
        // writer's buffered count must stay far below the stream length.
        let s = build(8, 1, 1.0);
        let n = scaled(1_000_000);
        let mut w = s.writer();
        for i in 0..n {
            w.update(i);
        }
        // Θ after n distinct with k=256 is ≈ 256/n; the local buffer
        // can only ever hold b items, so just assert the writer made
        // progress without error and the estimate is sane.
        w.flush().unwrap();
        s.quiesce();
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(256), "relative error {rel}");
    }

    #[test]
    fn error_bound_accessor() {
        let s = build(12, 1, 0.04);
        let expected = (0.04 + 1.0 / 64.0f64).max(2.0 / 64.0);
        assert!((s.error_bound() - expected).abs() < 1e-12);
    }

    #[test]
    fn stats_expose_filter_and_merge_activity() {
        // Large distinct stream with small k: Θ collapses quickly, so the
        // overwhelming majority of updates must die at shouldAdd, and the
        // hand-off/merge counters must stay tiny relative to the stream.
        let s = build(6, 1, 1.0); // k = 64
        let n = scaled(500_000);
        let mut w = s.writer();
        for i in 0..n {
            w.update(i);
        }
        let filtered = w.filtered();
        w.flush().unwrap();
        s.quiesce();
        let stats = s.stats();
        assert!(
            filtered > n * 9 / 10,
            "expected >90% filtered, got {filtered}/{n}"
        );
        // The engine-level aggregate must expose the filter's work on a
        // live engine: nonzero once Θ saturates, never ahead of the
        // per-writer count it aggregates.
        assert!(
            stats.filtered_updates > n / 2,
            "filtered_updates = {} not tracking the saturated filter",
            stats.filtered_updates
        );
        assert!(stats.filtered_updates <= filtered);
        assert!(stats.merges >= 1);
        assert!(stats.handoffs >= 1);
        assert!(
            stats.handoffs < n / 100,
            "hand-offs {} not amortised",
            stats.handoffs
        );
        assert_eq!(stats.eager_updates, 0, "e = 1.0 must skip the eager phase");
        drop(w);
        assert_eq!(
            s.stats().filtered_updates,
            filtered,
            "retire must publish the final filtered count"
        );

        // And with the filter ablated, nothing is filtered.
        let s2 = ConcurrentThetaBuilder::new()
            .lg_k(6)
            .seed(1)
            .writers(1)
            .max_concurrency_error(1.0)
            .disable_prefilter(true)
            .build()
            .unwrap();
        let mut w2 = s2.writer();
        for i in 0..10_000u64 {
            w2.update(i);
        }
        assert_eq!(w2.filtered(), 0);
    }

    #[test]
    fn snapshot_estimate_matches_global_after_quiesce() {
        let s = build(10, 2, 0.04);
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..60_000u64 {
                        w.update(t * 60_000 + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let snap = s.snapshot();
        let global_est = s.inner.with_globals(|g| g.sketch.estimate());
        assert_eq!(global_est.len(), 1);
        assert_eq!(snap.estimate, global_est[0]);
    }

    fn build_sharded(
        lg_k: u8,
        writers: usize,
        shards: usize,
        e: f64,
        backend: PropagationBackendKind,
    ) -> ConcurrentThetaSketch {
        ConcurrentThetaBuilder::new()
            .lg_k(lg_k)
            .seed(42)
            .writers(writers)
            .shards(shards)
            .max_concurrency_error(e)
            .backend(backend)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_disjoint_streams_accuracy() {
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let s = build_sharded(12, 4, 4, 1.0, backend);
            let n_per = scaled(100_000);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in 0..n_per {
                            w.update(t * n_per + i);
                        }
                        w.flush().unwrap();
                    });
                }
            });
            s.quiesce();
            let n = 4.0 * n_per as f64;
            let rel = (s.estimate() - n).abs() / n;
            // Each shard has k = 4096 samples of its sub-stream; the
            // merged union retains up to 4k samples, so the estimator is
            // at least as tight as a single k = 4096 sketch.
            assert!(rel < 5.0 * rse(4096), "{backend:?}: relative error {rel}");
        }
    }

    #[test]
    fn sharded_overlapping_streams_count_once() {
        // The same items through different writers land in different
        // shards; the query-time union must dedupe across shards.
        let s = build_sharded(11, 2, 2, 1.0, PropagationBackendKind::DedicatedThread);
        let n = scaled(100_000);
        std::thread::scope(|sc| {
            for _ in 0..2 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n {
                        w.update(i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(2048), "relative error {rel}");
    }

    #[test]
    fn sharded_eager_tiny_stream_is_exact() {
        let s = build_sharded(12, 2, 2, 0.04, PropagationBackendKind::DedicatedThread);
        let mut w0 = s.writer();
        let mut w1 = s.writer();
        for i in 0..500u64 {
            w0.update(i);
            w1.update(i + 500);
        }
        assert!(s.is_eager());
        assert_eq!(s.estimate(), 1_000.0, "sharded eager phase must be exact");
    }

    #[test]
    fn new_view_starts_with_an_empty_lazy_image() {
        // Satellite: single-shard deployments must not materialise an
        // O(retained) image they never read.
        let mut g = ThetaGlobal::new(8, 42).unwrap();
        for i in 0..50_000u64 {
            g.update_direct(normalize_hash(i.hash_with_seed(42)));
        }
        let view = g.new_view();
        let image = view.image.load();
        assert_eq!(image.retained(), 0, "initial image must be empty");
        assert!(
            g.blocks.is_none(),
            "mirror must stay off until prepare_sharded"
        );
        // The triple is fully initialised regardless.
        assert_eq!(
            ThetaGlobal::snapshot(&view).retained,
            g.sketch.retained() as u64
        );
    }

    #[test]
    fn block_mirror_tracks_the_retained_set_across_rebuilds() {
        // Push enough distinct hashes through a small sketch that Θ drops
        // many times; the mirror must equal the sketch's retained set at
        // every publication point.
        let mut g = ThetaGlobal::new(6, 7).unwrap(); // k = 64
        g.prepare_sharded();
        let mut local = g.new_local();
        for chunk in 0..200u64 {
            for i in 0..100u64 {
                local.update(normalize_hash((chunk * 100 + i).hash_with_seed(7)));
            }
            g.merge(&mut local);
            let image = g.image_now();
            let mut mirror: Vec<u64> = image.hashes().collect();
            mirror.sort_unstable();
            let mut real: Vec<u64> = g.sketch.hashes().collect();
            real.sort_unstable();
            assert_eq!(mirror, real, "mirror diverged after chunk {chunk}");
            assert_eq!(image.theta(), g.sketch.theta());
        }
    }

    #[test]
    fn publish_sharded_without_prepare_falls_back_to_a_full_copy() {
        let mut g = ThetaGlobal::new(6, 7).unwrap();
        for i in 0..20_000u64 {
            g.update_direct(normalize_hash(i.hash_with_seed(7)));
        }
        let view = g.new_view();
        g.publish_sharded(&view);
        let image = view.image.load();
        assert_eq!(image.retained(), g.sketch.retained());
        assert_eq!(image.theta(), g.sketch.theta());
    }

    #[test]
    fn image_every_keeps_quiesced_queries_fresh_and_triple_per_merge() {
        for m in [1u64, 4] {
            let s = ConcurrentThetaBuilder::new()
                .lg_k(10)
                .seed(42)
                .writers(4)
                .shards(2)
                .max_concurrency_error(1.0)
                .image_every(m)
                .backend(PropagationBackendKind::WriterAssisted)
                .build()
                .unwrap();
            let n_per = scaled(50_000);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let mut w = s.writer();
                    sc.spawn(move || {
                        for i in 0..n_per {
                            w.update(t * n_per + i);
                        }
                        w.flush().unwrap();
                    });
                }
            });
            s.quiesce();
            // Quiesce republishes skipped images: the merged snapshot must
            // agree exactly with the untrimmed union of the globals.
            let snap = s.snapshot();
            let compact = s.compact();
            assert_eq!(compact.theta(), snap.theta, "M = {m}");
            assert_eq!(compact.retained() as u64, snap.retained, "M = {m}");
            assert_eq!(compact.estimate(), snap.estimate, "M = {m}");
            if m > 1 {
                let stats = s.stats();
                assert!(
                    stats.image_publications < stats.merges,
                    "M = {m}: {} images for {} merges",
                    stats.image_publications,
                    stats.merges
                );
                // e = 1.0 ⇒ b = max_buffer_size = 16; K = 2 shards.
                assert_eq!(s.query_relaxation(), s.relaxation() + 2 * (m - 1) * 16);
            }
        }
    }

    #[test]
    fn sharded_compact_agrees_with_merged_snapshot() {
        let s = build_sharded(10, 4, 2, 1.0, PropagationBackendKind::DedicatedThread);
        let n_per = scaled(50_000);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mut w = s.writer();
                sc.spawn(move || {
                    for i in 0..n_per {
                        w.update(t * n_per + i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        s.quiesce();
        let snap = s.snapshot();
        let compact = s.compact();
        assert_eq!(compact.theta(), snap.theta);
        assert_eq!(compact.retained() as u64, snap.retained);
        assert_eq!(compact.estimate(), snap.estimate);
    }
}
