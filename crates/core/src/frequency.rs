//! A concurrent frequent-items (Misra–Gries) sketch — a fourth
//! instantiation of the generic framework.
//!
//! Misra–Gries merges by counter addition + reduction, so local buffers
//! can even pre-aggregate: the local sketch here is a small counting map
//! that collapses duplicate items before the hand-off, which both
//! shrinks the merge and demonstrates that "local sketch" need not mean
//! "plain buffer". There is no sound static pre-filter (any item can
//! grow a counter), so the hint is trivial — exactly the degenerate case
//! §5.1 permits.
//!
//! Snapshots are published as an immutable heavy-hitters table behind an
//! epoch pointer, like the Quantiles instantiation.

use crate::composable::{GlobalSketch, LocalSketch};
use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::runtime::{ConcurrentSketch, FlushError, SketchWriter};
use crate::sync::EpochCell;
use fcds_sketches::error::Result;
use fcds_sketches::frequency::{FrequencyEstimate, MisraGriesSketch};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Immutable snapshot of the frequency summary.
#[derive(Debug, Clone)]
pub struct FrequencySnapshot<T: Eq + Hash + Clone> {
    counters: HashMap<T, u64>,
    /// Uniform error slack (see [`MisraGriesSketch::max_error`]).
    pub max_error: u64,
    /// Stream length reflected by this snapshot.
    pub n: u64,
}

impl<T: Eq + Hash + Clone> FrequencySnapshot<T> {
    /// Frequency estimate for an item.
    pub fn estimate(&self, item: &T) -> FrequencyEstimate {
        let lower = self.counters.get(item).copied().unwrap_or(0);
        FrequencyEstimate {
            lower_bound: lower,
            upper_bound: lower + self.max_error,
        }
    }

    /// Merges per-shard snapshots into one summary of the concatenated
    /// streams: counters add (an item's occurrences split across shards),
    /// and so do the error slacks — an estimate's true frequency lies in
    /// `[Σ lowerᵢ, Σ (lowerᵢ + errᵢ)]`. No counter is ever reduced away
    /// during the merge, so the combined table retains up to `K·k` keys.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Self>) -> Self
    where
        T: 'a,
    {
        let mut counters: HashMap<T, u64> = HashMap::new();
        let mut max_error = 0u64;
        let mut n = 0u64;
        for p in parts {
            for (item, &c) in &p.counters {
                *counters.entry(item.clone()).or_insert(0) += c;
            }
            max_error += p.max_error;
            n += p.n;
        }
        FrequencySnapshot {
            counters,
            max_error,
            n,
        }
    }

    /// Items possibly above `threshold`, sorted by decreasing lower
    /// bound (no false negatives among retained items).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(T, FrequencyEstimate)> {
        let mut out: Vec<(T, FrequencyEstimate)> = self
            .counters
            .iter()
            .map(|(item, &c)| {
                (
                    item.clone(),
                    FrequencyEstimate {
                        lower_bound: c,
                        upper_bound: c + self.max_error,
                    },
                )
            })
            .filter(|(_, e)| e.upper_bound > threshold)
            .collect();
        out.sort_by_key(|(_, e)| std::cmp::Reverse(e.lower_bound));
        out
    }
}

/// Global side: the sequential Misra–Gries summary.
pub struct FrequencyGlobal<T: Eq + Hash + Clone + Send + Sync + 'static> {
    sketch: MisraGriesSketch<T>,
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> std::fmt::Debug for FrequencyGlobal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrequencyGlobal")
            .field("n", &self.sketch.n())
            .finish()
    }
}

/// Local side: a pre-aggregating counter map.
#[derive(Debug)]
pub struct FrequencyLocal<T: Eq + Hash> {
    counts: HashMap<T, u64>,
    items: usize,
}

impl<T: Eq + Hash> Default for FrequencyLocal<T> {
    fn default() -> Self {
        FrequencyLocal {
            counts: HashMap::new(),
            items: 0,
        }
    }
}

impl<T: Eq + Hash + Clone + Send + 'static> LocalSketch for FrequencyLocal<T> {
    type Item = T;
    type Hint = ();

    fn update(&mut self, item: T) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.items += 1;
    }

    fn should_add(_: (), _: &T) -> bool {
        true
    }

    fn clear(&mut self) {
        self.counts.clear();
        self.items = 0;
    }

    /// Counts *stream items* buffered (not distinct keys): the engine's
    /// `b` bound is on updates, matching the `r = 2Nb` analysis.
    fn len(&self) -> usize {
        self.items
    }
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> GlobalSketch for FrequencyGlobal<T> {
    type Local = FrequencyLocal<T>;
    type View = EpochCell<FrequencySnapshot<T>>;
    type Snapshot = Arc<FrequencySnapshot<T>>;

    fn new_local(&self) -> FrequencyLocal<T> {
        FrequencyLocal::default()
    }

    fn new_view(&self) -> Self::View {
        EpochCell::new(self.snapshot_now())
    }

    fn merge(&mut self, local: &mut FrequencyLocal<T>) {
        for (item, count) in local.counts.drain() {
            self.sketch.update_weighted(item, count);
        }
        local.items = 0;
    }

    fn update_direct(&mut self, item: T) {
        self.sketch.update(item);
    }

    fn publish(&self, view: &Self::View) {
        view.store(self.snapshot_now());
    }

    fn snapshot(view: &Self::View) -> Arc<FrequencySnapshot<T>> {
        view.load()
    }

    fn merge_shard_views(views: &[&Self::View]) -> Arc<FrequencySnapshot<T>> {
        let parts: Vec<_> = views.iter().map(|v| v.load()).collect();
        Arc::new(FrequencySnapshot::merged(parts.iter().map(|a| a.as_ref())))
    }

    fn new_shard(&self) -> Self {
        FrequencyGlobal {
            sketch: MisraGriesSketch::new(self.sketch.k())
                .expect("shard parameters were already validated"),
        }
    }

    fn calc_hint(&self) {}

    fn stream_len(&self) -> u64 {
        self.sketch.n()
    }
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> FrequencyGlobal<T> {
    fn snapshot_now(&self) -> FrequencySnapshot<T> {
        let counters: HashMap<T, u64> = self
            .sketch
            .heavy_hitters(0)
            .into_iter()
            .map(|(item, e)| (item, e.lower_bound))
            .collect();
        FrequencySnapshot {
            counters,
            max_error: self.sketch.max_error(),
            n: self.sketch.n(),
        }
    }
}

/// Builder for [`ConcurrentFrequencySketch`].
///
/// **Deprecated:** prefer the family-generic
/// [`EngineBuilder<FrequencyFamily<T>>`](crate::engine::EngineBuilder),
/// which shares one set of concurrency knobs across all four sketch
/// families. This per-family builder remains as a thin shim for one
/// release and will be removed.
#[derive(Debug, Clone)]
pub struct ConcurrentFrequencyBuilder {
    k: usize,
    config: ConcurrencyConfig,
}

impl Default for ConcurrentFrequencyBuilder {
    fn default() -> Self {
        ConcurrentFrequencyBuilder {
            k: 64,
            config: ConcurrencyConfig::default(),
        }
    }
}

impl ConcurrentFrequencyBuilder {
    /// Starts from defaults: 64 counters, `e = 0.04`, one writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of counters `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the expected number of update threads.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Splits the summary into `K` shards (writers round-robined, queries
    /// sum the shards' counter tables).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the sketch.
    pub fn build<T: Eq + Hash + Clone + Send + Sync + 'static>(
        self,
    ) -> Result<ConcurrentFrequencySketch<T>> {
        let global = FrequencyGlobal {
            sketch: MisraGriesSketch::new(self.k)?,
        };
        let inner = ConcurrentSketch::start(global, self.config)?;
        Ok(ConcurrentFrequencySketch { inner, k: self.k })
    }
}

/// Concurrent heavy-hitters sketch.
///
/// # Examples
///
/// ```
/// use fcds_core::frequency::ConcurrentFrequencyBuilder;
///
/// let sketch = ConcurrentFrequencyBuilder::new().k(32).writers(2).build::<u64>().unwrap();
/// let mut w = sketch.writer();
/// for i in 0..10_000u64 {
///     w.update(if i % 4 == 0 { 7 } else { i });
/// }
/// w.flush().unwrap();
/// sketch.quiesce();
/// let snap = sketch.snapshot();
/// assert!(snap.estimate(&7).upper_bound >= 2_500);
/// ```
pub struct ConcurrentFrequencySketch<T: Eq + Hash + Clone + Send + Sync + 'static> {
    inner: ConcurrentSketch<FrequencyGlobal<T>>,
    k: usize,
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> std::fmt::Debug
    for ConcurrentFrequencySketch<T>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentFrequencySketch").finish()
    }
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> ConcurrentFrequencySketch<T> {
    /// Shorthand for [`ConcurrentFrequencyBuilder::new`].
    pub fn builder() -> ConcurrentFrequencyBuilder {
        ConcurrentFrequencyBuilder::new()
    }

    /// Registers an update thread.
    pub fn writer(&self) -> FrequencyWriter<T> {
        FrequencyWriter {
            inner: self.inner.writer(),
        }
    }

    /// Wait-free snapshot of the current heavy-hitters table.
    pub fn snapshot(&self) -> Arc<FrequencySnapshot<T>> {
        self.inner.snapshot()
    }

    /// The maximum number of counters per shard.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The relaxation bound `r = 2Nb`.
    pub fn relaxation(&self) -> u64 {
        self.inner.relaxation()
    }

    /// Waits until all handed-off buffers have been merged and published.
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }

    /// Engine diagnostics: merges performed, eager updates, hand-offs.
    pub fn stats(&self) -> crate::runtime::EngineStats {
        self.inner.stats()
    }
}

/// Serialises the merged heavy-hitters state into a unified wire
/// image (Misra–Gries family — see `fcds_sketches::wire`). The
/// merged shard table can hold up to `K·k` counters; the export
/// reduces it back to `k` (accruing the reduction slack into the
/// image's error term), so every image is a valid `k`-counter
/// summary whose bounds still bracket the true counts. On the
/// fan-in side, `fcds_sketches::wire::mg_multiway_merge` accumulates
/// the counters of many images with one final reduction.
impl<T> crate::engine::WireImage for ConcurrentFrequencySketch<T>
where
    T: Eq + Hash + Ord + Clone + Send + Sync + 'static + fcds_sketches::wire::WireItem,
{
    fn wire_image(&self) -> bytes::Bytes {
        use fcds_sketches::wire::WireEncode;
        let snap = self.snapshot();
        let mg = MisraGriesSketch::from_parts(
            self.k,
            snap.n,
            snap.max_error,
            snap.counters.iter().map(|(item, &c)| (item.clone(), c)),
        )
        .expect("snapshot counters satisfy the Misra-Gries invariants");
        mg.to_wire_bytes()
    }
}

/// Per-thread writer for [`ConcurrentFrequencySketch`].
pub struct FrequencyWriter<T: Eq + Hash + Clone + Send + Sync + 'static> {
    inner: SketchWriter<FrequencyGlobal<T>>,
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> std::fmt::Debug for FrequencyWriter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrequencyWriter").finish()
    }
}

impl<T: Eq + Hash + Clone + Send + Sync + 'static> FrequencyWriter<T> {
    /// Processes one stream item.
    #[inline]
    pub fn update(&mut self, item: T) {
        self.inner.update(item);
    }

    /// Processes a batch of stream items through the amortised fast path
    /// (hand-offs at `b`-boundaries mid-batch — see
    /// [`SketchWriter::update_batch`]); the pre-aggregating local map
    /// still collapses duplicates before the hand-off. Equivalent to
    /// calling [`Self::update`] once per item.
    pub fn update_batch(&mut self, items: &[T]) {
        self.inner.update_batch(items);
    }

    /// Hands the partial local buffer to the propagator.
    ///
    /// # Errors
    ///
    /// See [`SketchWriter::flush`]: [`FlushError::PropagatorDead`] when
    /// the shard's propagation service died (buffered updates were
    /// discarded; the writer is latched dead), [`FlushError::ShuttingDown`]
    /// when the engine was dropped mid-flush.
    pub fn flush(&mut self) -> std::result::Result<(), FlushError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitter_survives_concurrency() {
        let sketch = ConcurrentFrequencyBuilder::new()
            .k(32)
            .writers(4)
            .build::<u64>()
            .unwrap();
        let per = crate::test_support::scaled(50_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    for i in 0..per {
                        // 25% of traffic is item 42; the rest is noise
                        // spread over a wide key space.
                        let item = if i % 4 == 0 { 42 } else { t * per + i };
                        w.update(item);
                    }
                    w.flush().unwrap();
                });
            }
        });
        sketch.quiesce();
        let snap = sketch.snapshot();
        assert_eq!(snap.n, 4 * per);
        let truth = 4 * per / 4;
        let est = snap.estimate(&42);
        assert!(est.lower_bound <= truth);
        assert!(
            est.upper_bound >= truth,
            "upper {} < {truth}",
            est.upper_bound
        );
        // It must be the top heavy hitter.
        let hh = snap.heavy_hitters(snap.n / 10);
        assert_eq!(hh.first().map(|(i, _)| *i), Some(42));
    }

    #[test]
    fn local_preaggregation_counts_duplicates() {
        // All updates are the same key: local buffers collapse them, and
        // the merged weight must equal the stream length exactly.
        let sketch = ConcurrentFrequencyBuilder::new()
            .k(8)
            .writers(2)
            .max_concurrency_error(1.0)
            .build::<&'static str>()
            .unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        w.update("hot");
                    }
                    w.flush().unwrap();
                });
            }
        });
        sketch.quiesce();
        let snap = sketch.snapshot();
        assert_eq!(snap.estimate(&"hot").lower_bound, 20_000);
        assert_eq!(snap.n, 20_000);
    }

    #[test]
    fn eager_phase_small_stream_exact() {
        let sketch = ConcurrentFrequencyBuilder::new()
            .k(16)
            .writers(1)
            .build::<u64>()
            .unwrap();
        let mut w = sketch.writer();
        for i in 0..100u64 {
            w.update(i % 10);
        }
        // Eager: visible immediately and exact (10 keys < k counters).
        let snap = sketch.snapshot();
        assert_eq!(snap.n, 100);
        assert_eq!(snap.estimate(&3).lower_bound, 10);
        assert_eq!(snap.max_error, 0);
    }

    #[test]
    fn sharded_exact_counts_for_distinct_keys() {
        // Fewer hot keys than counters per shard ⇒ no reductions anywhere
        // and the merged table must be exact, for both backends.
        for backend in [
            PropagationBackendKind::DedicatedThread,
            PropagationBackendKind::WriterAssisted,
        ] {
            let sketch = ConcurrentFrequencyBuilder::new()
                .k(16)
                .writers(4)
                .shards(2)
                .max_concurrency_error(1.0)
                .backend(backend)
                .build::<u64>()
                .unwrap();
            // Multiple of 8 so every key gets exactly per/8 occurrences.
            let per = crate::test_support::scaled(10_000) / 8 * 8;
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let mut w = sketch.writer();
                    s.spawn(move || {
                        for i in 0..per {
                            w.update(i % 8);
                        }
                        w.flush().unwrap();
                    });
                }
            });
            sketch.quiesce();
            let snap = sketch.snapshot();
            assert_eq!(snap.n, 4 * per, "{backend:?}");
            assert_eq!(snap.max_error, 0, "{backend:?}");
            assert_eq!(snap.estimate(&3).lower_bound, 4 * per / 8, "{backend:?}");
        }
    }

    #[test]
    fn string_keys_work() {
        let sketch = ConcurrentFrequencyBuilder::new()
            .k(16)
            .writers(1)
            .build::<String>()
            .unwrap();
        let mut w = sketch.writer();
        for i in 0..1_000u64 {
            w.update(format!("key{}", i % 5));
        }
        w.flush().unwrap();
        sketch.quiesce();
        let snap = sketch.snapshot();
        assert_eq!(snap.estimate(&"key0".to_string()).lower_bound, 200);
    }
}
