//! The family-generic engine seam: one trait surface over all four
//! concurrent sketches, plus the unified builder.
//!
//! PR 8 put a network tier in front of *one* hard-wired Θ engine. The
//! multi-stream service needs to host many engines of mixed families
//! behind per-key routing, and the code doing that routing must not
//! care which family a stream is — so this module defines:
//!
//! * [`WireImage`] — the one-method trait every concurrent sketch
//!   implements to export its mergeable wire envelope
//!   (`fcds_sketches::wire`). Replica sync and registry code call it
//!   family-generically; the fan-in kernels on the receiving side do
//!   the family dispatch from the envelope's own header.
//! * [`EngineWriter`] / [`StreamEngine`] — the object-safe pair the
//!   server's per-stream workers are written against: a `StreamEngine`
//!   is a running engine ingesting `u64` stream items (the service's
//!   item type; Θ/HLL hash them, Quantiles/Misra–Gries take them as
//!   values), and each worker thread owns one `EngineWriter` obtained
//!   from it.
//! * [`Family`] + [`EngineBuilder`] — the unified construction entry:
//!   the shared [`ConcurrencyConfig`] knobs (writers, shards, backend,
//!   error budget…) are set once on `EngineBuilder<F>` for any family
//!   `F`, with one family-interpreted [`accuracy`](EngineBuilder::accuracy)
//!   knob instead of four builder types each re-declaring the same
//!   setters. The per-family builders (`ConcurrentThetaBuilder` and
//!   friends) remain as thin deprecated shims for this PR.

use crate::config::{ConcurrencyConfig, PropagationBackendKind};
use crate::frequency::{ConcurrentFrequencyBuilder, ConcurrentFrequencySketch, FrequencyWriter};
use crate::hll::{ConcurrentHllBuilder, ConcurrentHllSketch, HllWriter};
use crate::quantiles::{ConcurrentQuantilesBuilder, ConcurrentQuantilesSketch, QuantilesWriter};
use crate::runtime::{EngineStats, FlushError};
use crate::theta::{ConcurrentThetaBuilder, ConcurrentThetaSketch, ThetaWriter};
use bytes::Bytes;
use fcds_sketches::error::Result;
use fcds_sketches::hash::DEFAULT_SEED;
use fcds_sketches::wire::SketchFamily;
use std::marker::PhantomData;

/// Export of a sketch's mergeable state as a versioned wire envelope.
///
/// Every concurrent sketch implements this; the envelope's header
/// carries the family code, so a consumer can stay family-generic and
/// let `fcds_sketches::wire::peek` plus the multiway fan-in kernels do
/// the dispatch. Replica sync is exactly this: a timer calling
/// `wire_image()` on every registered stream and shipping the bytes to
/// a peer's merge store.
pub trait WireImage {
    /// Serialises the current published state into one wire envelope.
    fn wire_image(&self) -> Bytes;
}

/// A per-thread ingest handle for a [`StreamEngine`], object-safe so a
/// server worker can own "a writer" without knowing the family.
///
/// Items are `u64` stream elements: Θ and HLL hash them, Quantiles and
/// Misra–Gries treat them as values. Buffered updates become durable at
/// [`flush`](Self::flush); a failed flush is the engine-level fault
/// signal (dead propagator) and the writer should be retired.
pub trait EngineWriter: Send {
    /// Buffers (and opportunistically propagates) a batch of items.
    fn ingest_batch(&mut self, items: &[u64]);
    /// Makes all buffered updates durable.
    ///
    /// # Errors
    ///
    /// [`FlushError`] when the engine's propagation service died; the
    /// writer is permanently broken and must be discarded.
    fn flush(&mut self) -> std::result::Result<(), FlushError>;
}

/// An object-safe running concurrent sketch, the unit the server's
/// stream registry maps keys onto.
///
/// The five capabilities are exactly what the service needs per stream:
/// spawn writers (ingest-batch + flush via [`EngineWriter`]), export a
/// mergeable image ([`WireImage`], a supertrait), serve a scalar
/// estimate where the family has one, quiesce at drain, and report
/// engine-level drain statistics.
pub trait StreamEngine: WireImage + Send + Sync {
    /// The wire family this engine speaks.
    fn family(&self) -> SketchFamily;
    /// Registers a new update thread.
    fn writer(&self) -> Box<dyn EngineWriter>;
    /// The scalar estimate, for families that define one (Θ and HLL
    /// distinct counts); `None` for Quantiles/Misra–Gries, whose
    /// queries go through the wire image.
    fn estimate(&self) -> Option<f64>;
    /// Merges every handed-off buffer and republishes images.
    fn quiesce(&self);
    /// Engine-level diagnostic counters (merges, hand-offs, eager
    /// updates…), reported at drain.
    fn stats(&self) -> EngineStats;
}

impl EngineWriter for ThetaWriter {
    fn ingest_batch(&mut self, items: &[u64]) {
        self.update_batch(items);
    }

    fn flush(&mut self) -> std::result::Result<(), FlushError> {
        ThetaWriter::flush(self)
    }
}

impl EngineWriter for HllWriter {
    fn ingest_batch(&mut self, items: &[u64]) {
        self.update_batch(items);
    }

    fn flush(&mut self) -> std::result::Result<(), FlushError> {
        HllWriter::flush(self)
    }
}

impl EngineWriter for QuantilesWriter<u64> {
    fn ingest_batch(&mut self, items: &[u64]) {
        self.update_batch(items);
    }

    fn flush(&mut self) -> std::result::Result<(), FlushError> {
        QuantilesWriter::flush(self)
    }
}

impl EngineWriter for FrequencyWriter<u64> {
    fn ingest_batch(&mut self, items: &[u64]) {
        self.update_batch(items);
    }

    fn flush(&mut self) -> std::result::Result<(), FlushError> {
        FrequencyWriter::flush(self)
    }
}

impl StreamEngine for ConcurrentThetaSketch {
    fn family(&self) -> SketchFamily {
        SketchFamily::Theta
    }

    fn writer(&self) -> Box<dyn EngineWriter> {
        Box::new(ConcurrentThetaSketch::writer(self))
    }

    fn estimate(&self) -> Option<f64> {
        Some(ConcurrentThetaSketch::estimate(self))
    }

    fn quiesce(&self) {
        ConcurrentThetaSketch::quiesce(self);
    }

    fn stats(&self) -> EngineStats {
        ConcurrentThetaSketch::stats(self)
    }
}

impl StreamEngine for ConcurrentHllSketch {
    fn family(&self) -> SketchFamily {
        SketchFamily::Hll
    }

    fn writer(&self) -> Box<dyn EngineWriter> {
        Box::new(ConcurrentHllSketch::writer(self))
    }

    fn estimate(&self) -> Option<f64> {
        Some(ConcurrentHllSketch::estimate(self))
    }

    fn quiesce(&self) {
        ConcurrentHllSketch::quiesce(self);
    }

    fn stats(&self) -> EngineStats {
        ConcurrentHllSketch::stats(self)
    }
}

impl StreamEngine for ConcurrentQuantilesSketch<u64> {
    fn family(&self) -> SketchFamily {
        SketchFamily::Quantiles
    }

    fn writer(&self) -> Box<dyn EngineWriter> {
        Box::new(ConcurrentQuantilesSketch::writer(self))
    }

    fn estimate(&self) -> Option<f64> {
        None
    }

    fn quiesce(&self) {
        ConcurrentQuantilesSketch::quiesce(self);
    }

    fn stats(&self) -> EngineStats {
        ConcurrentQuantilesSketch::stats(self)
    }
}

impl StreamEngine for ConcurrentFrequencySketch<u64> {
    fn family(&self) -> SketchFamily {
        SketchFamily::Frequency
    }

    fn writer(&self) -> Box<dyn EngineWriter> {
        Box::new(ConcurrentFrequencySketch::writer(self))
    }

    fn estimate(&self) -> Option<f64> {
        None
    }

    fn quiesce(&self) {
        ConcurrentFrequencySketch::quiesce(self);
    }

    fn stats(&self) -> EngineStats {
        ConcurrentFrequencySketch::stats(self)
    }
}

/// A sketch family [`EngineBuilder`] can construct: the associated
/// engine type, the wire family code, and how the one `accuracy` knob
/// maps onto the family's sizing parameter.
pub trait Family {
    /// The concurrent sketch this family builds.
    type Engine;
    /// The wire-format family code of [`Self::Engine`]'s images.
    const FAMILY: SketchFamily;
    /// Default for [`EngineBuilder::accuracy`].
    const DEFAULT_ACCURACY: usize;
    /// Builds and starts an engine.
    ///
    /// # Errors
    ///
    /// Invalid accuracy parameter or [`ConcurrencyConfig`] (surfaced
    /// from the underlying sketch constructor).
    fn build(accuracy: usize, seed: u64, config: ConcurrencyConfig) -> Result<Self::Engine>;
}

/// Θ family marker: `accuracy` is `lg_k`, `seed` the hash seed.
#[derive(Debug, Clone, Copy)]
pub struct ThetaFamily;

impl Family for ThetaFamily {
    type Engine = ConcurrentThetaSketch;
    const FAMILY: SketchFamily = SketchFamily::Theta;
    const DEFAULT_ACCURACY: usize = 12;

    fn build(accuracy: usize, seed: u64, config: ConcurrencyConfig) -> Result<Self::Engine> {
        ConcurrentThetaBuilder::new()
            .lg_k(accuracy as u8)
            .seed(seed)
            .config(config)
            .build()
    }
}

/// HLL family marker: `accuracy` is `lg_m`, `seed` the hash seed.
#[derive(Debug, Clone, Copy)]
pub struct HllFamily;

impl Family for HllFamily {
    type Engine = ConcurrentHllSketch;
    const FAMILY: SketchFamily = SketchFamily::Hll;
    const DEFAULT_ACCURACY: usize = 12;

    fn build(accuracy: usize, seed: u64, config: ConcurrencyConfig) -> Result<Self::Engine> {
        ConcurrentHllBuilder::new()
            .lg_m(accuracy as u8)
            .seed(seed)
            .config(config)
            .build()
    }
}

/// Quantiles family marker: `accuracy` is the sketch parameter `k`,
/// `seed` seeds the de-randomisation oracle. Generic over the item
/// type; the service instantiates `T = u64`.
#[derive(Debug, Clone, Copy)]
pub struct QuantilesFamily<T = u64>(PhantomData<T>);

impl<T: Ord + Clone + Send + Sync + 'static> Family for QuantilesFamily<T> {
    type Engine = ConcurrentQuantilesSketch<T>;
    const FAMILY: SketchFamily = SketchFamily::Quantiles;
    const DEFAULT_ACCURACY: usize = 128;

    fn build(accuracy: usize, seed: u64, config: ConcurrencyConfig) -> Result<Self::Engine> {
        ConcurrentQuantilesBuilder::new()
            .k(accuracy)
            .oracle_seed(seed)
            .config(config)
            .build()
    }
}

/// Misra–Gries family marker: `accuracy` is the counter budget `k`;
/// `seed` is unused (the sketch is deterministic). Generic over the
/// item type; the service instantiates `T = u64`.
#[derive(Debug, Clone, Copy)]
pub struct FrequencyFamily<T = u64>(PhantomData<T>);

impl<T: Eq + std::hash::Hash + Clone + Send + Sync + 'static> Family for FrequencyFamily<T> {
    type Engine = ConcurrentFrequencySketch<T>;
    const FAMILY: SketchFamily = SketchFamily::Frequency;
    const DEFAULT_ACCURACY: usize = 64;

    fn build(accuracy: usize, _seed: u64, config: ConcurrencyConfig) -> Result<Self::Engine> {
        ConcurrentFrequencyBuilder::new()
            .k(accuracy)
            .config(config)
            .build()
    }
}

/// The unified builder: one entry point for all four families, sharing
/// the [`ConcurrencyConfig`] knobs instead of duplicating them per
/// family.
///
/// # Examples
///
/// ```
/// use fcds_core::engine::{EngineBuilder, HllFamily, ThetaFamily};
///
/// // Same concurrency shape, two families — set the shared knobs once
/// // per engine, vary only the family parameter.
/// let theta = EngineBuilder::<ThetaFamily>::new()
///     .accuracy(12) // lg_k
///     .writers(2)
///     .build()
///     .unwrap();
/// let hll = EngineBuilder::<HllFamily>::new()
///     .accuracy(12) // lg_m
///     .writers(2)
///     .build()
///     .unwrap();
/// let (mut tw, mut hw) = (theta.writer(), hll.writer());
/// for i in 0..50_000u64 {
///     tw.update(i);
///     hw.update(i);
/// }
/// tw.flush().unwrap();
/// hw.flush().unwrap();
/// theta.quiesce();
/// hll.quiesce();
/// assert!((theta.estimate() - 50_000.0).abs() / 50_000.0 < 0.05);
/// assert!((hll.estimate() - 50_000.0).abs() / 50_000.0 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder<F: Family> {
    accuracy: usize,
    seed: u64,
    config: ConcurrencyConfig,
    _family: PhantomData<F>,
}

impl<F: Family> Default for EngineBuilder<F> {
    fn default() -> Self {
        EngineBuilder {
            accuracy: F::DEFAULT_ACCURACY,
            seed: DEFAULT_SEED,
            config: ConcurrencyConfig::default(),
            _family: PhantomData,
        }
    }
}

impl<F: Family> EngineBuilder<F> {
    /// Starts from the family's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the family's accuracy parameter: `lg_k` (Θ), `lg_m` (HLL),
    /// or `k` (Quantiles, Misra–Gries).
    pub fn accuracy(mut self, accuracy: usize) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Sets the seed: the hash seed (Θ, HLL), the oracle seed
    /// (Quantiles); ignored by the deterministic Misra–Gries.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected number of update threads `N`.
    pub fn writers(mut self, writers: usize) -> Self {
        self.config.writers = writers;
        self
    }

    /// Sets the maximum relative error attributable to concurrency
    /// (`e`, §7.1). `1.0` disables the eager phase.
    pub fn max_concurrency_error(mut self, e: f64) -> Self {
        self.config.max_concurrency_error = e;
        self
    }

    /// Caps the local buffer size `b`.
    pub fn max_buffer_size(mut self, b: u64) -> Self {
        self.config.max_buffer_size = b;
        self
    }

    /// Selects `OptParSketch` (true, default) or the unoptimised
    /// `ParSketch` (false).
    pub fn double_buffering(mut self, enabled: bool) -> Self {
        self.config.double_buffering = enabled;
        self
    }

    /// Splits the global sketch into `K` shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Selects the propagation backend.
    pub fn backend(mut self, backend: PropagationBackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Publishes each shard's mergeable image only on every `m`-th
    /// merge (default 1).
    pub fn image_every(mut self, m: u64) -> Self {
        self.config.image_every = m;
        self
    }

    /// Ablation: disables the pre-filter hint. Benchmarking only.
    pub fn disable_prefilter(mut self, disabled: bool) -> Self {
        self.config.disable_prefilter = disabled;
        self
    }

    /// Overrides the full concurrency configuration.
    pub fn config(mut self, config: ConcurrencyConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds and starts the engine.
    ///
    /// # Errors
    ///
    /// Invalid accuracy parameter or concurrency configuration.
    pub fn build(self) -> Result<F::Engine> {
        F::build(self.accuracy, self.seed, self.config)
    }

    /// Builds and starts the engine behind the object-safe
    /// [`StreamEngine`] interface — what the server's stream registry
    /// stores.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn build_boxed(self) -> Result<Box<dyn StreamEngine>>
    where
        F::Engine: StreamEngine + 'static,
    {
        Ok(Box::new(self.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &dyn StreamEngine, items: std::ops::Range<u64>) {
        let batch: Vec<u64> = items.collect();
        let mut w = engine.writer();
        w.ingest_batch(&batch);
        w.flush().unwrap();
        engine.quiesce();
    }

    #[test]
    fn all_four_families_build_behind_the_object_safe_trait() {
        let engines: Vec<Box<dyn StreamEngine>> = vec![
            EngineBuilder::<ThetaFamily>::new().build_boxed().unwrap(),
            EngineBuilder::<HllFamily>::new().build_boxed().unwrap(),
            EngineBuilder::<QuantilesFamily>::new()
                .build_boxed()
                .unwrap(),
            EngineBuilder::<FrequencyFamily>::new()
                .build_boxed()
                .unwrap(),
        ];
        let expected = [
            SketchFamily::Theta,
            SketchFamily::Hll,
            SketchFamily::Quantiles,
            SketchFamily::Frequency,
        ];
        for (engine, fam) in engines.iter().zip(expected) {
            assert_eq!(engine.family(), fam);
            drive(engine.as_ref(), 0..10_000);
            // Every family exports a decodable image of its own family.
            let img = engine.wire_image();
            let peeked = fcds_sketches::wire::peek(&img, u64::MAX).unwrap();
            assert_eq!(peeked.family, fam);
            // Scalar estimates exist exactly for the counting families.
            match fam {
                SketchFamily::Theta | SketchFamily::Hll => {
                    let est = engine.estimate().expect("counting family");
                    assert!((est - 10_000.0).abs() / 10_000.0 < 0.1);
                }
                _ => assert!(engine.estimate().is_none()),
            }
            // Drain stats flow through the trait.
            assert!(engine.stats().handoffs + engine.stats().eager_updates > 0);
        }
    }

    #[test]
    fn shared_knobs_apply_to_every_family() {
        // A config error (shards > writers) must surface identically
        // through the unified builder for any family.
        assert!(EngineBuilder::<ThetaFamily>::new()
            .writers(1)
            .shards(4)
            .build()
            .is_err());
        assert!(EngineBuilder::<QuantilesFamily>::new()
            .writers(1)
            .shards(4)
            .build()
            .is_err());
    }
}
