//! Configuration of the concurrent framework: buffer sizing, the eager
//! adaptation point, and the induced relaxation/error bounds (§5.3, §7.1).

use fcds_sketches::error::{Result, SketchError};

/// Default cap on the local buffer size `b` (the paper's no-eager runs use
/// `b = 16`; see Figure 8's discussion).
pub const DEFAULT_MAX_BUFFER: u64 = 16;

/// How merged local buffers reach the shards' global sketches.
///
/// The paper dedicates a background thread (`t0` of Algorithm 2) to
/// propagation. That is the default, generalised to one thread per shard.
/// The writer-assisted backend removes the background thread entirely:
/// the writer that hands a buffer off (or any writer waiting on its own
/// hand-off) merges pending buffers into the shard under a try-lock.
/// Embedders that cannot spawn threads get the same `r = 2Nb` relaxation
/// guarantee, trading propagation latency for writer cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationBackendKind {
    /// One dedicated propagator thread per shard (the paper's `t0`).
    #[default]
    DedicatedThread,
    /// Threadless: flushing writers propagate into their shard under a
    /// try-lock; `quiesce` drives any leftovers.
    WriterAssisted,
}

/// Configuration of the generic concurrent algorithm.
///
/// `max_concurrency_error` is the `e` parameter of §7.1: the maximum
/// *relative* error the relaxation may add. The implementation derives
/// from it the eager-propagation limit `2/e²` and the lazy buffer size
/// `b`, such that the total error stays within
/// `max{e + 1/√k, 2/√k}` (§7.1). Setting `e = 1.0` disables the eager
/// phase entirely (the "no-eager" baseline of Figures 5a/8).
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyConfig {
    /// Number of update (writer) threads `N`.
    pub writers: usize,
    /// Maximum relative error attributable to concurrency (`e`).
    pub max_concurrency_error: f64,
    /// Upper bound on the local buffer size `b`.
    pub max_buffer_size: u64,
    /// Use double buffering (`OptParSketch`, Theorem 1) instead of the
    /// unoptimised `ParSketch` (Lemma 1). On by default.
    pub double_buffering: bool,
    /// Ablation switch: disable the `shouldAdd` hint pre-filter (§5.1).
    /// Every update is then buffered and shipped to the propagator,
    /// which is exactly the design the paper's filter avoids — useful
    /// for measuring the filter's contribution, never for production.
    pub disable_prefilter: bool,
    /// Number of shards `K` the global sketch is split into (writers are
    /// round-robined onto shards; queries merge all shard views). `K = 1`
    /// is the paper's single-global layout. Sharding lifts the
    /// serial-propagation ceiling of §7 without changing the relaxation
    /// bound: `r = 2Nb` counts writers, not shards.
    pub shards: usize,
    /// How buffers are propagated into the shards' globals.
    pub backend: PropagationBackendKind,
    /// Publish the shard's mergeable *image* only on every `M`-th merge
    /// (`M = image_every`, default 1 = publish on every merge). The cheap
    /// per-merge publication (Θ's seqlock triple, HLL's atomic estimate)
    /// still happens on every merge, so this is a *deliberate,
    /// bounded-staleness* relaxation of the sharded query path only: a
    /// merged query may additionally miss up to `(M − 1)·b` merged-but-
    /// unpublished updates per shard, raising the query staleness bound
    /// from `r = 2Nb` to `r + K·(M − 1)·b` (see
    /// [`Self::query_relaxation`]). Ignored when `shards == 1` (no image
    /// is published at all) and during the eager phase (which publishes
    /// the image on every update — its contract is zero relaxation
    /// error). [`crate::runtime::ConcurrentSketch::quiesce`] republishes
    /// skipped images, restoring full freshness at quiescence.
    pub image_every: u64,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            writers: 1,
            max_concurrency_error: 0.04,
            max_buffer_size: DEFAULT_MAX_BUFFER,
            double_buffering: true,
            disable_prefilter: false,
            shards: 1,
            backend: PropagationBackendKind::default(),
            image_every: 1,
        }
    }
}

impl ConcurrencyConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.writers == 0 {
            return Err(SketchError::invalid("writers", "must be ≥ 1"));
        }
        if !(self.max_concurrency_error > 0.0 && self.max_concurrency_error <= 1.0) {
            return Err(SketchError::invalid(
                "max_concurrency_error",
                format!("must be in (0, 1], got {}", self.max_concurrency_error),
            ));
        }
        if self.max_buffer_size == 0 {
            return Err(SketchError::invalid("max_buffer_size", "must be ≥ 1"));
        }
        if self.shards == 0 {
            return Err(SketchError::invalid("shards", "must be ≥ 1"));
        }
        if self.image_every == 0 {
            return Err(SketchError::invalid("image_every", "must be ≥ 1"));
        }
        if self.shards > self.writers {
            return Err(SketchError::invalid(
                "shards",
                format!(
                    "{} shards but only {} writers: extra shards would sit idle \
                     while still paying the per-shard query-merge cost",
                    self.shards, self.writers
                ),
            ));
        }
        Ok(())
    }

    /// The eager-propagation limit of §5.3/§7.1: the stream length up to
    /// which updates are propagated eagerly, `⌈2/e²⌉`. An error parameter
    /// of 1.0 means "no eager phase" (limit 0).
    pub fn eager_limit(&self) -> u64 {
        if self.max_concurrency_error >= 1.0 {
            0
        } else {
            (2.0 / (self.max_concurrency_error * self.max_concurrency_error)).ceil() as u64
        }
    }

    /// The lazy-phase buffer size `b`.
    ///
    /// Once the stream is past the eager limit `2/e²`, a query may miss up
    /// to `r = 2Nb` updates, adding relative error at most
    /// `r/n ≤ 2Nb·e²/2 = Nb·e²`; keeping that within `e` requires
    /// `b ≤ 1/(N·e)`. The result is clamped to `1..=max_buffer_size`
    /// (the paper reports 1–5 for its configurations; `e = 1` yields the
    /// un-throttled `max_buffer_size`).
    pub fn buffer_size(&self) -> u64 {
        if self.max_concurrency_error >= 1.0 {
            return self.max_buffer_size;
        }
        let b = (1.0 / (self.writers as f64 * self.max_concurrency_error)).floor() as u64;
        b.clamp(1, self.max_buffer_size)
    }

    /// The relaxation bound `r` induced by this configuration: `2Nb` with
    /// double buffering (Theorem 1), `Nb` without (Lemma 1).
    ///
    /// Deliberately independent of [`shards`](Self::shards): writers, not
    /// shards, carry the relaxation. Each writer has at most one full
    /// buffer in flight plus one partial buffer regardless of which shard
    /// it is keyed onto, so splitting the global sketch `K` ways leaves
    /// the query staleness bound at `2Nb`.
    pub fn relaxation(&self) -> u64 {
        let factor = if self.double_buffering { 2 } else { 1 };
        factor * self.writers as u64 * self.buffer_size()
    }

    /// The staleness bound a *merged query* satisfies: the writer-side
    /// relaxation [`Self::relaxation`] plus, when image publication is
    /// throttled (`shards > 1` and `image_every > 1`), up to
    /// `(image_every − 1)·b` merged-but-unpublished updates per shard.
    ///
    /// The extra term is per-shard because each shard throttles its own
    /// image independently: between two image publications a shard
    /// performs at most `image_every − 1` merges, each carrying at most
    /// one local buffer of `b` updates. `fcds-relaxation`'s
    /// `sharded::sharded_query_relaxation` is the executable reference
    /// for this accounting.
    pub fn query_relaxation(&self) -> u64 {
        let r = self.relaxation();
        if self.shards > 1 && self.image_every > 1 {
            r + self.shards as u64 * (self.image_every - 1) * self.buffer_size()
        } else {
            r
        }
    }

    /// The overall error bound of §7.1 for a Θ sketch with nominal size
    /// `k`: `max{e + 1/√k, 2/√k}`.
    pub fn error_bound(&self, k: usize) -> f64 {
        let sqrt_k = (k as f64).sqrt();
        (self.max_concurrency_error + 1.0 / sqrt_k).max(2.0 / sqrt_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        // §7.1: k = 4096, e = 0.04 ⇒ eager limit 2/e² = 1250.
        let c = ConcurrencyConfig::default();
        assert_eq!(c.eager_limit(), 1250);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn no_eager_configuration() {
        let c = ConcurrencyConfig {
            max_concurrency_error: 1.0,
            ..Default::default()
        };
        assert_eq!(c.eager_limit(), 0);
        assert_eq!(c.buffer_size(), DEFAULT_MAX_BUFFER);
    }

    #[test]
    fn buffer_size_shrinks_with_writers() {
        let mk = |n| ConcurrencyConfig {
            writers: n,
            ..Default::default()
        };
        // e = 0.04: b = ⌊1/(N·e)⌋ clamped to 16.
        assert_eq!(mk(1).buffer_size(), 16); // 25 → clamp 16
        assert_eq!(mk(4).buffer_size(), 6);
        assert_eq!(mk(12).buffer_size(), 2);
        assert_eq!(mk(64).buffer_size(), 1); // 0 → clamp 1
    }

    #[test]
    fn relaxation_is_2nb_with_double_buffering() {
        let c = ConcurrencyConfig {
            writers: 4,
            ..Default::default()
        };
        assert_eq!(c.relaxation(), 2 * 4 * c.buffer_size());
        let u = ConcurrencyConfig {
            double_buffering: false,
            ..c
        };
        assert_eq!(u.relaxation(), 4 * u.buffer_size());
    }

    #[test]
    fn error_bound_formula() {
        let c = ConcurrencyConfig::default();
        let k = 4096;
        let expected = (0.04 + 1.0 / 64.0f64).max(2.0 / 64.0);
        assert!((c.error_bound(k) - expected).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = ConcurrencyConfig {
            writers: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ConcurrencyConfig {
            max_concurrency_error: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ConcurrencyConfig {
            max_concurrency_error: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ConcurrencyConfig {
            max_buffer_size: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ConcurrencyConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ConcurrencyConfig {
            writers: 2,
            shards: 4,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "more shards than writers");
    }

    #[test]
    fn relaxation_is_independent_of_shard_count() {
        let base = ConcurrencyConfig {
            writers: 8,
            ..Default::default()
        };
        let r1 = base.relaxation();
        for shards in [2usize, 4, 8] {
            let c = ConcurrencyConfig {
                shards,
                ..base.clone()
            };
            assert!(c.validate().is_ok());
            assert_eq!(c.relaxation(), r1, "r must not depend on K");
        }
    }

    #[test]
    fn image_every_validation_and_query_relaxation() {
        let c = ConcurrencyConfig {
            image_every: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "image_every = 0 must be rejected");

        // K = 1: no image is published, so image_every never widens r.
        let c = ConcurrencyConfig {
            writers: 4,
            image_every: 4,
            ..Default::default()
        };
        assert_eq!(c.query_relaxation(), c.relaxation());

        // Sharded with M = 1: unchanged (today's semantics).
        let c = ConcurrencyConfig {
            writers: 4,
            shards: 4,
            ..Default::default()
        };
        assert_eq!(c.query_relaxation(), c.relaxation());

        // Sharded with M > 1: + K·(M−1)·b.
        let c = ConcurrencyConfig {
            writers: 4,
            shards: 2,
            image_every: 4,
            ..Default::default()
        };
        assert_eq!(
            c.query_relaxation(),
            c.relaxation() + 2 * 3 * c.buffer_size()
        );
    }

    #[test]
    fn backend_default_is_dedicated_thread() {
        assert_eq!(
            ConcurrencyConfig::default().backend,
            PropagationBackendKind::DedicatedThread
        );
    }

    #[test]
    fn eager_limit_scales_inverse_square() {
        let mk = |e| ConcurrencyConfig {
            max_concurrency_error: e,
            ..Default::default()
        };
        assert_eq!(mk(0.1).eager_limit(), 200);
        assert_eq!(mk(0.01).eager_limit(), 20_000);
    }
}
