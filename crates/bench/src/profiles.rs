//! The two characterisation profiles of §7.1.
//!
//! * **SpeedProfile** — for each stream size on a log ladder, measure the
//!   time to feed that many unique values and report nanoseconds per
//!   update (`nS/u`, convertible to updates/second as `1e9/nS`), averaged
//!   over a trial count that shrinks geometrically with the size.
//! * **AccuracyProfile** — for each stream size, run many single-writer
//!   trials, log the relative error of a query issued right after the
//!   last update, and report the mean plus error quantiles. Plotting the
//!   quantile curves produces the paper's "pitchfork" (Figure 5).

use crate::drivers::{self, ThetaImpl};
use crate::workload;
use std::time::Duration;

/// One speed-profile measurement point.
#[derive(Debug, Clone, Copy)]
pub struct SpeedPoint {
    /// Number of unique values fed (`InU` in the artifact's output).
    pub uniques: u64,
    /// Trials averaged.
    pub trials: u64,
    /// Mean nanoseconds per update (`nS/u`).
    pub nanos_per_update: f64,
}

impl SpeedPoint {
    /// Throughput in million updates per second.
    pub fn mops(&self) -> f64 {
        1e3 / self.nanos_per_update
    }
}

/// Configuration of a speed profile run.
#[derive(Debug, Clone, Copy)]
pub struct SpeedProfile {
    /// Sketch size (`lg_k`).
    pub lg_k: u8,
    /// Smallest stream size: `2^lg_min`.
    pub lg_min: u32,
    /// Largest stream size: `2^lg_max`.
    pub lg_max: u32,
    /// Update budget per measurement point (drives the trial schedule).
    pub budget: u64,
    /// Cap on trials per point.
    pub max_trials: u64,
}

impl SpeedProfile {
    /// A quick profile (seconds per implementation).
    pub fn quick(lg_k: u8) -> Self {
        SpeedProfile {
            lg_k,
            lg_min: 10,
            lg_max: 20,
            budget: 1 << 21,
            max_trials: 64,
        }
    }

    /// A paper-scale profile (minutes per implementation).
    pub fn full(lg_k: u8) -> Self {
        SpeedProfile {
            lg_k,
            lg_min: 4,
            lg_max: 23,
            budget: 1 << 24,
            max_trials: 4096,
        }
    }

    /// Runs the profile for one implementation.
    pub fn run(&self, impl_: ThetaImpl) -> Vec<SpeedPoint> {
        let sizes = workload::size_ladder(self.lg_min, self.lg_max, false);
        sizes
            .iter()
            .map(|&uniques| {
                let trials = workload::trials_for_size(uniques, self.budget, self.max_trials);
                // One warm-up trial absorbs allocator and thread-spawn
                // noise.
                let _ = drivers::time_write_only(impl_, self.lg_k, uniques, u64::MAX);
                let total: Duration = (0..trials)
                    .map(|t| drivers::time_write_only(impl_, self.lg_k, uniques, t))
                    .sum();
                SpeedPoint {
                    uniques,
                    trials,
                    nanos_per_update: total.as_nanos() as f64 / (trials * uniques) as f64,
                }
            })
            .collect()
    }
}

/// One accuracy-profile measurement point: the error distribution at a
/// given stream size.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Number of unique values fed.
    pub uniques: u64,
    /// Trials.
    pub trials: u64,
    /// Mean relative error.
    pub mean: f64,
    /// Relative-error quantiles `(q, value)` for q in the requested list.
    pub quantiles: Vec<(f64, f64)>,
}

impl AccuracyPoint {
    /// Looks up a quantile recorded in this point.
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantiles
            .iter()
            .find(|(qq, _)| (qq - q).abs() < 1e-9)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    }
}

/// Configuration of an accuracy ("pitchfork") profile.
#[derive(Debug, Clone)]
pub struct AccuracyProfile {
    /// Sketch size (`lg_k`).
    pub lg_k: u8,
    /// Concurrency error parameter `e` (1.0 = no eager propagation).
    pub e: f64,
    /// Smallest stream size: `2^lg_min`.
    pub lg_min: u32,
    /// Largest stream size: `2^lg_max`.
    pub lg_max: u32,
    /// Trials per point (the paper uses 4096).
    pub trials: u64,
    /// Quantiles to report (the pitchfork tines).
    pub quantiles: Vec<f64>,
}

impl AccuracyProfile {
    /// The pitchfork quantiles used by the DataSketches characterisation.
    pub fn default_quantiles() -> Vec<f64> {
        vec![0.01, 0.25, 0.5, 0.75, 0.99]
    }

    /// A quick profile.
    pub fn quick(lg_k: u8, e: f64) -> Self {
        AccuracyProfile {
            lg_k,
            e,
            lg_min: 4,
            lg_max: 16,
            trials: 128,
            quantiles: Self::default_quantiles(),
        }
    }

    /// A paper-scale profile (4096 trials per point).
    pub fn full(lg_k: u8, e: f64) -> Self {
        AccuracyProfile {
            lg_k,
            e,
            lg_min: 2,
            lg_max: 21,
            trials: 4096,
            quantiles: Self::default_quantiles(),
        }
    }

    /// Runs the profile.
    pub fn run(&self) -> Vec<AccuracyPoint> {
        let sizes = workload::size_ladder(self.lg_min, self.lg_max, true);
        sizes
            .iter()
            .map(|&uniques| {
                let mut errors: Vec<f64> = (0..self.trials)
                    .map(|t| drivers::accuracy_trial(self.lg_k, self.e, uniques, t))
                    .collect();
                errors.sort_by(f64::total_cmp);
                let mean = errors.iter().sum::<f64>() / errors.len() as f64;
                let quantiles = self
                    .quantiles
                    .iter()
                    .map(|&q| {
                        let idx = ((q * (errors.len() - 1) as f64).round() as usize)
                            .min(errors.len() - 1);
                        (q, errors[idx])
                    })
                    .collect();
                AccuracyPoint {
                    uniques,
                    trials: self.trials,
                    mean,
                    quantiles,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_profile_produces_ladder_points() {
        let p = SpeedProfile {
            lg_k: 9,
            lg_min: 8,
            lg_max: 10,
            budget: 1 << 12,
            max_trials: 4,
        };
        let pts = p.run(ThetaImpl::LockBased { threads: 1 });
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|pt| pt.nanos_per_update > 0.0));
        assert!(pts.iter().all(|pt| pt.mops() > 0.0));
    }

    #[test]
    fn accuracy_profile_pitchfork_shape() {
        let p = AccuracyProfile {
            lg_k: 9,
            e: 0.04,
            lg_min: 6,
            lg_max: 8,
            trials: 16,
            quantiles: AccuracyProfile::default_quantiles(),
        };
        let pts = p.run();
        assert_eq!(pts.len(), 5); // dense ladder 64..256
        for pt in &pts {
            // Quantiles must be monotone.
            let vals: Vec<f64> = pt.quantiles.iter().map(|(_, v)| *v).collect();
            assert!(vals.windows(2).all(|w| w[0] <= w[1]));
            // Small streams with eager propagation: near-exact.
            assert!(
                pt.mean.abs() < 0.05,
                "mean error {} at {}",
                pt.mean,
                pt.uniques
            );
        }
    }

    #[test]
    fn accuracy_point_quantile_lookup() {
        let pt = AccuracyPoint {
            uniques: 10,
            trials: 1,
            mean: 0.0,
            quantiles: vec![(0.5, 0.1)],
        };
        assert_eq!(pt.quantile(0.5), 0.1);
        assert!(pt.quantile(0.25).is_nan());
    }
}
