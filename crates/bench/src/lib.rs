//! # fcds-bench — the characterisation harness
//!
//! A Rust re-implementation of the methodology of §7.1 (the Apache
//! DataSketches "characterization framework"): speed profiles, accuracy
//! profiles ("pitchforks"), and workload drivers for every table and
//! figure of the paper. One binary per experiment:
//!
//! | binary     | regenerates |
//! |------------|-------------|
//! | `figure1`  | scalability: concurrent vs lock-based Θ, update-only |
//! | `figure3`  | strong-adversary decision regions |
//! | `figure4`  | distribution of `e` and `e_Aw` |
//! | `figure5`  | accuracy pitchforks (no-eager / eager) |
//! | `figure6`  | write-only throughput vs stream size |
//! | `figure7`  | mixed read/write workload |
//! | `figure8`  | eager vs no-eager speed-up |
//! | `table1`   | Θ error analysis (closed-form + Monte-Carlo) |
//! | `table2`   | k trade-off: crossing point and error quantiles |
//!
//! Absolute numbers depend on the host; the *shapes* (scaling slopes,
//! crossing points, pitchfork envelopes) are the reproduction target.
//! Run with `--full` for paper-scale parameters; the default is sized for
//! minutes, not hours.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod drivers;
pub mod gate;
pub mod profiles;
pub mod report;
pub mod workload;
