//! Workload generation: unique-value streams and the trial schedule of
//! §7.1.
//!
//! The paper feeds sketches with streams of unique values whose size
//! ranges from 1 to 8M on a log scale, averaging many trials per point —
//! 2¹⁸ trials at the low end, decreasing geometrically to 16 at 8M —
//! because short measurements are noisy.

/// A ladder of stream sizes: powers of two from `2^lg_min` to `2^lg_max`,
/// optionally with intermediate ×1.5 points for smoother curves.
pub fn size_ladder(lg_min: u32, lg_max: u32, dense: bool) -> Vec<u64> {
    let mut sizes = Vec::new();
    for lg in lg_min..=lg_max {
        sizes.push(1u64 << lg);
        if dense && lg < lg_max {
            let mid = (1u64 << lg) + (1u64 << lg.saturating_sub(1));
            sizes.push(mid);
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// The §7.1 trial schedule: many trials for small streams, few for large
/// ones. `budget` is roughly the number of updates spent per point.
pub fn trials_for_size(size: u64, budget: u64, max_trials: u64) -> u64 {
    (budget / size.max(1)).clamp(1, max_trials)
}

/// Generates `n` unique `u64` values for a given thread `t` of `threads`:
/// disjoint strided ranges so that concurrent writers never collide.
///
/// The values are consecutive integers (hashed by the sketch itself, so
/// their distribution is irrelevant), offset by a per-trial nonce to
/// de-correlate successive trials.
#[derive(Debug, Clone, Copy)]
pub struct UniqueStream {
    /// First value of this thread's slice.
    pub start: u64,
    /// Number of values in this thread's slice.
    pub count: u64,
}

impl UniqueStream {
    /// Splits `total` unique values across `threads` threads for trial
    /// `nonce`; thread `t` receives a contiguous slice.
    pub fn for_thread(total: u64, threads: usize, t: usize, nonce: u64) -> UniqueStream {
        let threads = threads as u64;
        let t = t as u64;
        let base = total / threads;
        let extra = total % threads;
        let count = base + u64::from(t < extra);
        let start_off = t * base + t.min(extra);
        UniqueStream {
            start: nonce
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(start_off),
            count,
        }
    }

    /// Iterates the values of this slice.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |i| self.start.wrapping_add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_sorted_powers() {
        let l = size_ladder(0, 5, false);
        assert_eq!(l, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn dense_ladder_adds_midpoints() {
        let l = size_ladder(2, 4, true);
        assert_eq!(l, vec![4, 6, 8, 12, 16]);
    }

    #[test]
    fn trials_schedule_decreases() {
        let budget = 1 << 16;
        let t_small = trials_for_size(16, budget, 4096);
        let t_big = trials_for_size(1 << 20, budget, 4096);
        assert!(t_small > t_big);
        assert_eq!(t_big, 1);
        assert_eq!(trials_for_size(1, budget, 4096), 4096);
    }

    #[test]
    fn thread_slices_partition_the_stream() {
        let total = 1003u64;
        let threads = 4;
        let nonce = 7;
        let mut all: Vec<u64> = Vec::new();
        for t in 0..threads {
            let s = UniqueStream::for_thread(total, threads, t, nonce);
            all.extend(s.iter());
        }
        assert_eq!(all.len() as u64, total);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, total, "slices overlapped");
    }

    #[test]
    fn different_nonces_produce_different_values() {
        let a: Vec<u64> = UniqueStream::for_thread(10, 1, 0, 1).iter().collect();
        let b: Vec<u64> = UniqueStream::for_thread(10, 1, 0, 2).iter().collect();
        assert_ne!(a, b);
    }
}
