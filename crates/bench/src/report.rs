//! Report formatting: aligned console tables and CSV emission, mirroring
//! the artifact's `SpeedProfile`/`AccuracyProfile` text outputs.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table printer.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV form to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with 4 significant decimals.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a throughput in million ops per second.
pub fn mops(v: f64) -> String {
    format!("{v:.2}")
}

/// Parses harness CLI flags of the form `--full` / `--out=DIR`.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Paper-scale parameters instead of the quick defaults.
    pub full: bool,
    /// Output directory for CSV artefacts.
    pub out_dir: String,
    /// Remaining free-form key=value flags.
    pub extra: Vec<(String, String)>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, skipping the binary name.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Like [`Self::parse`], but with `out_dir` defaulting to `default`
    /// when the caller passed no `--out=` flag. The CI JSON emitters
    /// (`bench_smoke`, `prop_cost`) use `"."` so their artefacts land in
    /// the working directory without extra flags, unlike the figure
    /// binaries' `results/` default.
    pub fn parse_with_out_default(default: &str) -> Self {
        let mut out = Self::parse();
        if !std::env::args().any(|a| a.starts_with("--out=")) {
            out.out_dir = default.to_string();
        }
        out
    }

    /// Parses from an explicit iterator (testable).
    // Not `FromIterator`: this parses CLI flags (fallible-ish, ordered)
    // rather than collecting, and the call sites read better as an
    // explicit constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(args: impl Iterator<Item = String>) -> Self {
        let mut out = HarnessArgs {
            full: false,
            out_dir: "results".to_string(),
            extra: Vec::new(),
        };
        for a in args {
            if a == "--full" {
                out.full = true;
            } else if let Some(dir) = a.strip_prefix("--out=") {
                out.out_dir = dir.to_string();
            } else if let Some(kv) = a.strip_prefix("--") {
                match kv.split_once('=') {
                    Some((k, v)) => out.extra.push((k.to_string(), v.to_string())),
                    None => out.extra.push((kv.to_string(), "true".to_string())),
                }
            }
        }
        out
    }

    /// Looks up an extra flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("a  bbbb") || r.contains("  a  bbbb"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn args_parse() {
        let a = HarnessArgs::from_iter(
            ["--full", "--out=/tmp/x", "--k=256", "--eager"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(a.full);
        assert_eq!(a.out_dir, "/tmp/x");
        assert_eq!(a.get("k"), Some("256"));
        assert_eq!(a.get("eager"), Some("true"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.2346");
        assert_eq!(pct(0.0312), "3.12%");
        assert_eq!(mops(123.456), "123.46");
    }
}
