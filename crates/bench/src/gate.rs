//! The CI bench-regression gate: parses the acceptance ratios the bench
//! JSON emitters record and fails when one regresses past its threshold.
//!
//! The contract is *data-driven*: every bench JSON documents its own
//! thresholds in a top-level `"thresholds"` object whose keys are the
//! acceptance-ratio names suffixed with the bound direction —
//! `<ratio>_max` requires `acceptance.<ratio> ≤ value`, `<ratio>_min`
//! requires `acceptance.<ratio> ≥ value`. The `bench_gate` binary simply
//! enforces whatever the JSON declares, so adding a gated ratio to a
//! bench needs no gate change, and the thresholds are visible in the CI
//! artefacts themselves.
//!
//! The canonical thresholds live here as constants (the emitters embed
//! them into the JSON; the gate then reads them back out of the
//! artefact, keeping a single source of truth):
//!
//! * Θ (`BENCH_prop_cost.json`): delta-image publication at most
//!   [`THETA_DELTA_VS_NO_IMAGE_MAX`]× the no-image K = 1 path, and the
//!   pre-block whole-copy at least [`THETA_WHOLE_COPY_VS_DELTA_MIN`]×
//!   slower than delta — both at lg_k = 16.
//! * Quantiles (`BENCH_quantiles_prop.json`): the ladder publish at
//!   least [`QUANTILES_SPEEDUP_MIN`]× faster than the full rebuild at
//!   the larger retained size, and at most [`QUANTILES_FLATNESS_MAX`]×
//!   its own cost at the smaller size (retained-independence).
//! * Ingestion (`BENCH_ingest.json`): the single-writer Θ hot path.
//!   The scalar hint-on path must hold
//!   [`INGEST_SCALAR_HINT_MOPS_MIN`] M updates/s (2.5× the pre-PR
//!   baseline), batched must stay at parity with it
//!   ([`INGEST_BATCHED_VS_SCALAR_MIN`], a noise-margin guard — see the
//!   constant's docs for why parity, not 1.25×, is the honest bound),
//!   and batched must beat scalar outright on the ship-everything
//!   ablation ([`INGEST_BATCHED_VS_SCALAR_SHIPALL_MIN`]).

/// Θ delta-image publication may cost at most this multiple of the
/// no-image single-shard path (lg_k = 16; PR 3 measured ≈ 2.5×).
pub const THETA_DELTA_VS_NO_IMAGE_MAX: f64 = 3.0;

/// The pre-block whole-copy fallback must stay at least this much slower
/// than delta publication (lg_k = 16; PR 3 measured ≈ 340×) — i.e. the
/// block images must keep buying at least a 5× win.
pub const THETA_WHOLE_COPY_VS_DELTA_MIN: f64 = 5.0;

/// The ladder publish must beat the full O(retained · log retained)
/// rebuild by at least this factor at the larger retained size.
pub const QUANTILES_SPEEDUP_MIN: f64 = 5.0;

/// Ladder publish cost at the larger retained size may be at most this
/// multiple of its cost at the smaller size (1.0 = perfectly
/// retained-independent; headroom for timer noise and cache effects).
pub const QUANTILES_FLATNESS_MAX: f64 = 2.0;

/// Single-writer batched Θ ingestion (hint on, lazy phase) must stay at
/// parity or better with the scalar per-item path. This PR's measured
/// reality: the same work that built the batched path (fixed-width
/// murmur3 lane, latched phase flip, cached pre-filter switch) also
/// removed every per-item overhead from the *scalar* path, which now
/// sits at the murmur3 multiply-throughput wall (~295 M updates/s on
/// the 1-CPU container, vs the ~40 M/s recorded baseline) — and the
/// out-of-order core already overlaps the independent per-item hash
/// chains, so explicit batching has only ~5% left to win on hint-on
/// integer streams (measured 1.04–1.05×). The bound is therefore a
/// noise-margin parity guard, not a speedup claim; the absolute win is
/// gated by [`INGEST_SCALAR_HINT_MOPS_MIN`].
pub const INGEST_BATCHED_VS_SCALAR_MIN: f64 = 0.95;

/// Where batching has a structural edge — the `disable_prefilter`
/// ablation, where every update is buffered and shipped through the
/// hand-off — the bulk append must actually win (measured ≈ 1.1×).
pub const INGEST_BATCHED_VS_SCALAR_SHIPALL_MIN: f64 = 1.0;

/// The scalar hint-on path must sustain at least this many million
/// updates per second — 2.5× the ~40 M updates/s baseline the ROADMAP
/// recorded for this container before this PR (measured ≈ 295 after
/// it), so the hot-path win can never silently regress.
pub const INGEST_SCALAR_HINT_MOPS_MIN: f64 = 100.0;

/// Merge tree (`BENCH_merge_tree.json`): Θ fan-in estimate error vs the
/// exact disjoint-union oracle. lg_k = 12 gives RSE ≈ 1.6%; 0.08 is a
/// 5σ ceiling that only a merge-path bug can breach.
pub const MERGE_TREE_THETA_RELERR_MAX: f64 = 0.08;

/// Merge tree: HLL fan-in estimate error vs the oracle. lg_m = 10 gives
/// a standard error ≈ 3.3%; 0.12 is a ~3.6σ ceiling (the merge itself
/// is an exact lattice join, so only the estimator variance is in play).
pub const MERGE_TREE_HLL_RELERR_MAX: f64 = 0.12;

/// Merge tree: worst rank error of the merged Quantiles ladder across
/// the φ grid, expressed as a multiple of the single-sketch
/// `epsilon_for_k` — fan-in across N nodes × K shards compounds the
/// per-sketch epsilon, so the bound is a small multiple, not 1.
pub const MERGE_TREE_QUANTILES_RANKERR_VS_EPS_MAX: f64 = 4.0;

/// Merge tree: the merged Misra–Gries `max_error` over the theoretical
/// mergeable-summaries bound `n/(k+1)` — the theorem says ≤ 1 under any
/// fan-in order.
pub const MERGE_TREE_MG_ERROR_VS_BOUND_MAX: f64 = 1.0;

/// Merge tree: fraction of probed items whose true count lies inside
/// the merged `[lower_bound, upper_bound]` — must be every one of them.
pub const MERGE_TREE_MG_COVERAGE_MIN: f64 = 1.0;

/// Merge tree: the slowest family's fan-in rate, in images merged per
/// second. A deliberately loose floor (real rates are thousands/s even
/// on a loaded 1-CPU runner) that still catches an accidentally
/// quadratic merge path.
pub const MERGE_TREE_FANIN_IPS_MIN: f64 = 100.0;

/// Merge tree: the Θ multiway loser-tree union must beat the reference
/// pairwise decode-and-fold by at least this factor at fan-in 32. The
/// pairwise fold re-merges a growing accumulator f − 1 times
/// (O(f² · k) hash traffic plus f decode allocations); the kernel is a
/// single O(f · k · log f) pass over borrowed views, so 2× is far below
/// the measured gap and only a kernel regression can breach it.
pub const MERGE_TREE_THETA_MULTIWAY_SPEEDUP_F32_MIN: f64 = 2.0;

/// Merge tree: the HLL register-max kernel must beat the pairwise
/// decode-and-fold by at least this factor at fan-in 32 — pairwise pays
/// per-image register validation and a register-vector allocation per
/// decode; the kernel folds payload bytes into one accumulator and
/// validates once.
pub const MERGE_TREE_HLL_MULTIWAY_SPEEDUP_F32_MIN: f64 = 2.0;

/// Merge tree: heap allocations per merge in the *warm* coordinator
/// loop (persistent [`fcds_sketches::wire::MergeScratch`], Θ and HLL
/// `*_into` kernels), as counted by the bench binary's instrumented
/// global allocator. The whole point of the scratch arena is that this
/// is exactly zero.
pub const MERGE_TREE_WARM_ALLOCS_PER_MERGE_MAX: f64 = 0.0;

/// Network tier (`BENCH_serve.json`, emitted by `fcds-load`): sustained
/// batched ingest over loopback TCP through the frame protocol, in
/// million items per second. The protocol costs one round trip and one
/// FNV-1a pass per batch, so the floor is far below the in-process
/// ingest gate — but a framing or dispatch regression (per-item
/// syscalls, lost batching) would crash through it.
pub const SERVE_INGEST_MITEMS_PER_S_MIN: f64 = 1.0;

/// Network tier: p99 latency of live-engine estimate queries issued
/// concurrently with the ingest load, in milliseconds.
pub const SERVE_QUERY_P99_MS_MAX: f64 = 50.0;

/// Network tier: of every rejected or failed request the load harness
/// observed (across the baseline and every fault phase), the fraction
/// that carried a *typed* error — a frame-protocol NACK code or a
/// transport-level close. 1.0 is the PR's headline contract: the server
/// never sheds silently.
pub const SERVE_TYPED_ERROR_COVERAGE_MIN: f64 = 1.0;

/// Network tier: the number of injected fault classes (delay, truncate,
/// corrupt, sever, disconnect) after which the server still answered a
/// clean request. All of them, or the tier is not fault-tolerant.
pub const SERVE_FAULT_CLASSES_SURVIVED_MIN: f64 = 5.0;

/// Network tier: worst time to recover to ≥ 50% of baseline ingest
/// throughput after a fault clears, in milliseconds. The slowest class
/// is stream desync (truncate): the writer sits in its 2 s reply
/// timeout while the server burns its 2 s frame deadline on the
/// half-frame, then both sides reconnect — so the protocol's own
/// worst-case bound is ~4 s and the gate sits just above it. A wedge
/// (breaker stuck open, connection leak) blows far past this.
pub const SERVE_RECOVERY_MS_MAX: f64 = 5_000.0;

/// Network tier, multi-stream mode (FCF1 v2): aggregate stream-addressed
/// ingest throughput across ≥ 8 named streams spanning all four
/// families, in million items per second. Same floor as the
/// single-stream gate — per-key registry dispatch must not cost the
/// tier its throughput contract.
pub const SERVE_MULTISTREAM_INGEST_MITEMS_PER_S_MIN: f64 = 1.0;

/// Network tier, multi-stream mode: p99 latency of stream-addressed
/// estimate queries (Θ/HLL streams) issued concurrently with the
/// multi-stream ingest load, in milliseconds. Image queries on the
/// Quantiles/Frequency streams run concurrently to exercise their
/// fan-in path but are not latency-gated — they are bulk exports whose
/// size scales with the stream.
pub const SERVE_MULTISTREAM_QUERY_P99_MS_MAX: f64 = 50.0;

/// Network tier, multi-stream mode: the fraction of healthy-stream
/// requests still ACKed while one stream's worker is dead from a
/// poisoned batch. 1.0 is the isolation contract — per-stream workers,
/// queues and breakers mean one stream's fault can never shed another
/// stream's traffic.
pub const SERVE_MULTISTREAM_ISOLATION_MIN: f64 = 1.0;

/// Network tier, multi-stream mode: typed error coverage across the
/// multi-stream drill, which deliberately provokes the v2 additions to
/// the taxonomy (`UnknownStream`, `FamilyMismatch`) on top of the
/// poisoned stream's failures. 1.0, same contract as single-stream.
pub const SERVE_MULTISTREAM_TYPED_COVERAGE_MIN: f64 = 1.0;

/// Replica sync: the number of streams (round-robin across all four
/// families) that must converge on the passive peer after the source's
/// background pusher ships their wire images. One per family, so every
/// family's fan-in kernel is exercised through the sync path.
pub const SYNC_CONVERGENCE_STREAMS_MIN: f64 = 4.0;

/// Replica sync: worst peer-side relative error across converged
/// streams. Quantiles/Frequency image counts replicate exactly; the
/// bound is the probabilistic envelope of the Θ (lg_k = 12 ⇒ ~1.6% σ)
/// and HLL (lg_m = 12 ⇒ ~1.6% σ) estimates with generous headroom.
pub const SYNC_CONVERGENCE_RELERR_MAX: f64 = 0.08;

/// Durability (`run_crash_drill`): worst-case wall-clock from
/// re-spawning the killed server process to every stream answering
/// queries again, in seconds. Recovery is a boot-time directory scan —
/// O(streams) decode + CRC + registry insert, milliseconds of real
/// work — so 5 s is dominated by process spawn + connect retries on a
/// loaded 1-CPU runner. A recovery that scales with ingested *items*
/// (replaying a journal instead of loading a snapshot) would blow
/// through it.
pub const DURABILITY_RECOVERY_S_MAX: f64 = 5.0;

/// Durability: number of streams the restarted server must answer for
/// after the SIGKILL. The drill ingests (and waits for a durable
/// on-disk snapshot of) every one of its 8 streams before killing, so
/// all 8 must come back — bounded loss is about *tail* items, never
/// whole streams.
pub const DURABILITY_STREAMS_RECOVERED_MIN: f64 = 8.0;

/// Durability: worst per-family relative error of the recovered counts
/// vs the pre-kill ingest oracle. The drill keeps churning between the
/// last confirmed snapshot and the SIGKILL, so the recovered value may
/// legitimately *exceed* the oracle by the churn fraction; below it,
/// the Θ/HLL estimator envelope (~8%) is the only slack. 0.15 covers
/// both; losing more than one snapshot interval of ingest breaks it.
pub const DURABILITY_RELERR_MAX: f64 = 0.15;

/// Durability: snapshot records that failed CRC/wire validation but
/// were *served anyway* after restart. The drill plants a garbage file
/// and a CRC-flipped forged record in the data dir before rebooting;
/// recovery must quarantine both and the forged stream's key must NACK
/// `UnknownStream`. Exactly zero — a torn or doctored record is never
/// trusted.
pub const DURABILITY_CORRUPT_ACCEPTED_MAX: f64 = 0.0;

/// The bound direction encoded in a threshold key's suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// `<ratio>_min`: the acceptance value must be ≥ the threshold.
    Min,
    /// `<ratio>_max`: the acceptance value must be ≤ the threshold.
    Max,
}

/// One enforced acceptance ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The acceptance-ratio name (threshold key minus the suffix).
    pub name: String,
    /// The measured value from the `"acceptance"` object.
    pub value: f64,
    /// The bound from the `"thresholds"` object.
    pub threshold: f64,
    /// Which direction the bound cuts.
    pub bound: Bound,
}

impl GateCheck {
    /// Whether the measured value satisfies its bound.
    pub fn passed(&self) -> bool {
        match self.bound {
            Bound::Min => self.value >= self.threshold,
            Bound::Max => self.value <= self.threshold,
        }
    }
}

impl std::fmt::Display for GateCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (op, verdict) = match (self.bound, self.passed()) {
            (Bound::Min, true) => ("≥", "ok"),
            (Bound::Min, false) => ("≥", "REGRESSED"),
            (Bound::Max, true) => ("≤", "ok"),
            (Bound::Max, false) => ("≤", "REGRESSED"),
        };
        write!(
            f,
            "{:<40} {:>8.2} (must be {op} {:.2})  {verdict}",
            self.name, self.value, self.threshold
        )
    }
}

/// Extracts the number stored under `"key"` anywhere in `doc` (the bench
/// JSONs are flat enough that the fully quoted key is unambiguous).
pub fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The body of the flat JSON object stored under `"key"` (between its
/// braces, exclusive).
fn object_body<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = &doc[at + needle.len()..];
    let open = at + needle.len() + rest.find('{')? + 1;
    let close = open + doc[open..].find('}')?;
    Some(&doc[open..close])
}

/// Iterates the `("key", value)` pairs of a flat JSON object body.
fn entries(body: &str) -> impl Iterator<Item = (&str, Option<f64>)> {
    body.split(',').filter_map(|entry| {
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().trim_matches('"');
        Some((key, value.trim().parse().ok()))
    })
}

/// Checks one bench JSON document against the thresholds it declares.
///
/// # Errors
///
/// Returns a description when the document declares no (or only
/// malformed) thresholds, or when a declared threshold has no matching
/// acceptance value — a gate that silently passes on a renamed ratio
/// would be worse than none.
pub fn check_doc(doc: &str) -> Result<Vec<GateCheck>, String> {
    let body = object_body(doc, "thresholds")
        .ok_or_else(|| "no \"thresholds\" object in document".to_string())?;
    // Ratio lookups are scoped to the "acceptance" object, not the whole
    // document: a row field that happens to share a ratio's name must
    // not satisfy (or shadow) the gate.
    let acceptance = object_body(doc, "acceptance")
        .ok_or_else(|| "no \"acceptance\" object in document".to_string())?;
    let mut checks = Vec::new();
    for (key, threshold) in entries(body) {
        let threshold = threshold.ok_or_else(|| format!("threshold \"{key}\" is not a number"))?;
        let (name, bound) = if let Some(base) = key.strip_suffix("_min") {
            (base, Bound::Min)
        } else if let Some(base) = key.strip_suffix("_max") {
            (base, Bound::Max)
        } else {
            return Err(format!(
                "threshold \"{key}\" lacks a _min/_max suffix; cannot tell \
                 which direction it cuts"
            ));
        };
        let value = extract_number(acceptance, name).ok_or_else(|| {
            format!("threshold \"{key}\" has no matching acceptance ratio \"{name}\"")
        })?;
        checks.push(GateCheck {
            name: name.to_string(),
            value,
            threshold,
            bound,
        });
    }
    if checks.is_empty() {
        return Err("\"thresholds\" object declares no bounds".to_string());
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "schema": "fcds-bench-quantiles-prop-v1",
  "rows": [
    {"k": 128, "strategy": "ladder", "per_merge_ns": 400.0}
  ],
  "acceptance": {
    "ladder_vs_rebuild_speedup_large": 12.3,
    "ladder_flatness_ratio": 1.10
  },
  "thresholds": {
    "ladder_vs_rebuild_speedup_large_min": 5.0,
    "ladder_flatness_ratio_max": 2.0
  }
}"#;

    #[test]
    fn good_document_passes_both_checks() {
        let checks = check_doc(GOOD).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.passed()), "{checks:?}");
        let speedup = &checks[0];
        assert_eq!(speedup.name, "ladder_vs_rebuild_speedup_large");
        assert_eq!(speedup.bound, Bound::Min);
        assert_eq!(speedup.value, 12.3);
        assert_eq!(speedup.threshold, 5.0);
    }

    #[test]
    fn doctored_regression_fails_the_matching_check_only() {
        // The injected-regression drill of the CI gate: a speedup that
        // fell to 2× must trip the _min bound.
        let doctored = GOOD.replace(
            "\"ladder_vs_rebuild_speedup_large\": 12.3",
            "\"ladder_vs_rebuild_speedup_large\": 2.0",
        );
        let checks = check_doc(&doctored).unwrap();
        assert!(!checks[0].passed(), "regressed speedup must fail");
        assert!(checks[1].passed(), "flatness untouched, must still pass");
    }

    #[test]
    fn doctored_flatness_blowup_fails_the_max_bound() {
        let doctored = GOOD.replace(
            "\"ladder_flatness_ratio\": 1.10",
            "\"ladder_flatness_ratio\": 4.5",
        );
        let checks = check_doc(&doctored).unwrap();
        assert!(checks[0].passed());
        assert!(!checks[1].passed(), "flatness blow-up must fail");
    }

    #[test]
    fn boundary_values_pass_inclusively() {
        let boundary = GOOD
            .replace(
                "\"ladder_vs_rebuild_speedup_large\": 12.3",
                "\"ladder_vs_rebuild_speedup_large\": 5.0",
            )
            .replace(
                "\"ladder_flatness_ratio\": 1.10",
                "\"ladder_flatness_ratio\": 2.0",
            );
        assert!(check_doc(&boundary).unwrap().iter().all(|c| c.passed()));
    }

    #[test]
    fn row_field_sharing_a_ratio_name_cannot_shadow_the_acceptance_value() {
        // The rows array precedes the acceptance object in the emitted
        // JSON; a row key colliding with a ratio name must not be the
        // value the gate validates.
        let shadowed = GOOD
            .replace(
                "\"strategy\": \"ladder\"",
                "\"strategy\": \"ladder\", \"ladder_vs_rebuild_speedup_large\": 99.0",
            )
            .replace(
                "\"ladder_vs_rebuild_speedup_large\": 12.3",
                "\"ladder_vs_rebuild_speedup_large\": 2.0",
            );
        let checks = check_doc(&shadowed).unwrap();
        assert_eq!(checks[0].value, 2.0, "must read the acceptance object");
        assert!(
            !checks[0].passed(),
            "regressed ratio shadowed by a row field"
        );
    }

    #[test]
    fn missing_thresholds_object_is_an_error() {
        let no_thresholds = &GOOD[..GOOD.find("\"thresholds\"").unwrap()];
        assert!(check_doc(no_thresholds).is_err());
    }

    #[test]
    fn threshold_without_matching_acceptance_is_an_error() {
        // A renamed acceptance ratio must not silently un-gate itself.
        let renamed = GOOD.replace(
            "\"ladder_vs_rebuild_speedup_large\": 12.3",
            "\"ladder_speedup_renamed\": 12.3",
        );
        let err = check_doc(&renamed).unwrap_err();
        assert!(err.contains("no matching acceptance"), "{err}");
    }

    #[test]
    fn suffixless_threshold_is_an_error() {
        let bad = GOOD.replace("ladder_flatness_ratio_max", "ladder_flatness_ratio_bound");
        assert!(check_doc(&bad).is_err());
    }

    #[test]
    fn extract_number_requires_the_exact_key() {
        // "ratio" must not match "ratio_max".
        assert_eq!(extract_number(GOOD, "ladder_flatness_ratio"), Some(1.10));
        assert_eq!(extract_number(GOOD, "ladder_flatness"), None);
        assert_eq!(extract_number(GOOD, "absent"), None);
    }

    #[test]
    fn display_reports_direction_and_verdict() {
        let check = GateCheck {
            name: "x".into(),
            value: 1.0,
            threshold: 5.0,
            bound: Bound::Min,
        };
        let s = check.to_string();
        assert!(s.contains("REGRESSED") && s.contains("≥"), "{s}");
    }
}
