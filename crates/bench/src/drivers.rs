//! Sketch drivers: uniform interfaces for timing the concurrent Θ sketch
//! against the lock-based baseline under the workloads of §7.

use crate::workload::UniqueStream;
use fcds_core::lock_based::LockBasedTheta;
use fcds_core::theta::{ConcurrentThetaBuilder, ConcurrentThetaSketch};
use fcds_core::PropagationBackendKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which Θ implementation a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThetaImpl {
    /// The paper's concurrent sketch with `N` writers and error parameter
    /// `e` (`e = 1.0` disables eager propagation).
    Concurrent {
        /// Number of writer threads.
        writers: usize,
        /// Max concurrency error `e`.
        e: f64,
        /// Optional explicit cap on the buffer size `b`.
        max_b: Option<u64>,
    },
    /// The K-way sharded engine (no eager phase, default `b`): writers
    /// round-robined onto `shards` independent globals, propagation per
    /// the selected backend.
    Sharded {
        /// Number of writer threads.
        writers: usize,
        /// Number of shards `K`.
        shards: usize,
        /// Propagation backend.
        backend: PropagationBackendKind,
    },
    /// The concurrent sketch fed through [`fcds_core::theta::ThetaWriter::update_batch`]
    /// in chunks of `chunk` items (the batched ingestion fast path)
    /// instead of one `update` call per item.
    Batched {
        /// Number of writer threads.
        writers: usize,
        /// Max concurrency error `e`.
        e: f64,
        /// Items per `update_batch` call.
        chunk: usize,
    },
    /// The lock-based baseline with `threads` updating threads.
    LockBased {
        /// Number of updating threads.
        threads: usize,
    },
}

impl ThetaImpl {
    /// The paper's Figure-1 concurrent configuration: `b = 1` per writer.
    pub fn concurrent_b1(writers: usize) -> Self {
        ThetaImpl::Concurrent {
            writers,
            e: 1.0,
            max_b: Some(1),
        }
    }

    /// The default concurrent configuration (`e = 0.04`).
    pub fn concurrent(writers: usize) -> Self {
        ThetaImpl::Concurrent {
            writers,
            e: 0.04,
            max_b: None,
        }
    }

    /// A K-way sharded configuration.
    pub fn sharded(writers: usize, shards: usize, backend: PropagationBackendKind) -> Self {
        ThetaImpl::Sharded {
            writers,
            shards,
            backend,
        }
    }

    /// The batched-ingestion configuration (`e = 1.0`, default `b`,
    /// 256-item chunks).
    pub fn batched(writers: usize) -> Self {
        ThetaImpl::Batched {
            writers,
            e: 1.0,
            chunk: 256,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            ThetaImpl::Concurrent { writers, e, max_b } => match max_b {
                Some(b) => format!("concurrent({writers}w,e={e},b={b})"),
                None => format!("concurrent({writers}w,e={e})"),
            },
            ThetaImpl::Sharded {
                writers,
                shards,
                backend,
            } => {
                let bk = match backend {
                    PropagationBackendKind::DedicatedThread => "dedicated",
                    PropagationBackendKind::WriterAssisted => "assisted",
                };
                format!("sharded({writers}w,{shards}K,{bk})")
            }
            ThetaImpl::Batched { writers, e, chunk } => {
                format!("batched({writers}w,e={e},chunk={chunk})")
            }
            ThetaImpl::LockBased { threads } => format!("lock-based({threads}t)"),
        }
    }

    /// Number of updating threads this implementation uses.
    pub fn threads(&self) -> usize {
        match self {
            ThetaImpl::Concurrent { writers, .. } => *writers,
            ThetaImpl::Sharded { writers, .. } => *writers,
            ThetaImpl::Batched { writers, .. } => *writers,
            ThetaImpl::LockBased { threads } => *threads,
        }
    }

    /// Items per `update_batch` call, when this is a batched variant.
    fn batch_chunk(&self) -> Option<usize> {
        match self {
            ThetaImpl::Batched { chunk, .. } => Some(*chunk),
            _ => None,
        }
    }

    /// Builds the concurrent sketch for the non-lock-based variants.
    fn build_concurrent(&self, lg_k: u8) -> Option<ConcurrentThetaSketch> {
        match *self {
            ThetaImpl::Concurrent { writers, e, max_b } => {
                let mut builder = ConcurrentThetaBuilder::new()
                    .lg_k(lg_k)
                    .seed(9001)
                    .writers(writers)
                    .max_concurrency_error(e);
                if let Some(mb) = max_b {
                    builder = builder.max_buffer_size(mb);
                }
                Some(builder.build().expect("build concurrent sketch"))
            }
            ThetaImpl::Sharded {
                writers,
                shards,
                backend,
            } => Some(
                ConcurrentThetaBuilder::new()
                    .lg_k(lg_k)
                    .seed(9001)
                    .writers(writers)
                    .shards(shards)
                    .max_concurrency_error(1.0)
                    .backend(backend)
                    .build()
                    .expect("build sharded sketch"),
            ),
            ThetaImpl::Batched { writers, e, .. } => Some(
                ConcurrentThetaBuilder::new()
                    .lg_k(lg_k)
                    .seed(9001)
                    .writers(writers)
                    .max_concurrency_error(e)
                    .build()
                    .expect("build batched sketch"),
            ),
            ThetaImpl::LockBased { .. } => None,
        }
    }
}

/// Feeds `stream` into `w`, either one update per item or — when `chunk`
/// is set — through the batched fast path in `chunk`-item slices.
fn feed_writer(w: &mut fcds_core::theta::ThetaWriter, stream: &UniqueStream, chunk: Option<usize>) {
    match chunk {
        None => {
            for v in stream.iter() {
                w.update(v);
            }
        }
        Some(chunk) => {
            let mut buf = Vec::with_capacity(chunk);
            for v in stream.iter() {
                buf.push(v);
                if buf.len() == chunk {
                    w.update_batch(&buf);
                    buf.clear();
                }
            }
            w.update_batch(&buf);
        }
    }
}

/// Feeds `uniques` distinct values (split across the configured threads)
/// into a fresh sketch and returns the wall-clock duration of the feed
/// phase (§7.1's write-only workload). `nonce` de-correlates trials.
pub fn time_write_only(impl_: ThetaImpl, lg_k: u8, uniques: u64, nonce: u64) -> Duration {
    match impl_ {
        ThetaImpl::Concurrent { .. } | ThetaImpl::Sharded { .. } | ThetaImpl::Batched { .. } => {
            let writers = impl_.threads();
            let chunk = impl_.batch_chunk();
            let sketch = impl_.build_concurrent(lg_k).expect("concurrent variant");
            if writers == 1 {
                // Feed inline: thread-spawn latency would otherwise
                // dominate small-stream measurements (§7.1 measures feed
                // time, not setup).
                let mut w = sketch.writer();
                let stream = UniqueStream::for_thread(uniques, 1, 0, nonce);
                let start = Instant::now();
                feed_writer(&mut w, &stream, chunk);
                return start.elapsed();
            }
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..writers {
                    let mut w = sketch.writer();
                    let stream = UniqueStream::for_thread(uniques, writers, t, nonce);
                    s.spawn(move || feed_writer(&mut w, &stream, chunk));
                }
            });
            start.elapsed()
        }
        ThetaImpl::LockBased { threads } => {
            let sketch = LockBasedTheta::new(lg_k, 9001).expect("build lock-based sketch");
            if threads == 1 {
                let stream = UniqueStream::for_thread(uniques, 1, 0, nonce);
                let start = Instant::now();
                for v in stream.iter() {
                    sketch.update(v);
                }
                return start.elapsed();
            }
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let sketch = &sketch;
                    let stream = UniqueStream::for_thread(uniques, threads, t, nonce);
                    s.spawn(move || {
                        for v in stream.iter() {
                            sketch.update(v);
                        }
                    });
                }
            });
            start.elapsed()
        }
    }
}

/// Result of a mixed read/write measurement (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct MixedResult {
    /// Wall-clock duration of the write phase.
    pub write_duration: Duration,
    /// Number of queries the background readers completed meanwhile.
    pub queries: u64,
}

/// The §7.1 mixed workload: `readers` background threads issue a query
/// then pause `read_pause` (the paper uses 1 ms), while the writers
/// ingest `uniques` values. Returns the write duration.
pub fn time_mixed(
    impl_: ThetaImpl,
    lg_k: u8,
    uniques: u64,
    readers: usize,
    read_pause: Duration,
    nonce: u64,
) -> MixedResult {
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let write_duration = match impl_ {
        ThetaImpl::Concurrent { .. } | ThetaImpl::Sharded { .. } | ThetaImpl::Batched { .. } => {
            let writers = impl_.threads();
            let chunk = impl_.batch_chunk();
            let sketch = impl_.build_concurrent(lg_k).expect("concurrent variant");
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..readers {
                    let sketch = &sketch;
                    let (stop, queries) = (&stop, &queries);
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            std::hint::black_box(sketch.estimate());
                            queries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(read_pause);
                        }
                    });
                }
                let writer_handles: Vec<_> = (0..writers)
                    .map(|t| {
                        let mut w = sketch.writer();
                        let stream = UniqueStream::for_thread(uniques, writers, t, nonce);
                        s.spawn(move || feed_writer(&mut w, &stream, chunk))
                    })
                    .collect();
                for h in writer_handles {
                    let _ = h.join();
                }
                stop.store(true, Ordering::Relaxed);
            });
            start.elapsed()
        }
        ThetaImpl::LockBased { threads } => {
            let sketch = LockBasedTheta::new(lg_k, 9001).expect("build lock-based sketch");
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..readers {
                    let sketch = &sketch;
                    let (stop, queries) = (&stop, &queries);
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            std::hint::black_box(sketch.estimate());
                            queries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(read_pause);
                        }
                    });
                }
                let writer_handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let sketch = &sketch;
                        let stream = UniqueStream::for_thread(uniques, threads, t, nonce);
                        s.spawn(move || {
                            for v in stream.iter() {
                                sketch.update(v);
                            }
                        })
                    })
                    .collect();
                for h in writer_handles {
                    let _ = h.join();
                }
                stop.store(true, Ordering::Relaxed);
            });
            start.elapsed()
        }
    };
    MixedResult {
        write_duration,
        queries: queries.load(Ordering::Relaxed),
    }
}

/// One accuracy trial of §7.1: feed `uniques` values through a single
/// writer and log the *relative error* `est/true − 1` of a query taken
/// immediately after the last update — without flushing, so propagation
/// delay is part of what is measured. A fresh hash seed per trial
/// (`nonce`) gives independent samples.
pub fn accuracy_trial(lg_k: u8, e: f64, uniques: u64, nonce: u64) -> f64 {
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(lg_k)
        .seed(0x5EED_0000 + nonce)
        .writers(1)
        .max_concurrency_error(e)
        .build()
        .expect("build concurrent sketch");
    let mut w = sketch.writer();
    let stream = UniqueStream::for_thread(uniques, 1, 0, nonce);
    for v in stream.iter() {
        w.update(v);
    }
    let est = sketch.estimate();
    est / uniques as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_only_drivers_run() {
        for impl_ in [
            ThetaImpl::concurrent(2),
            ThetaImpl::concurrent_b1(2),
            ThetaImpl::sharded(2, 2, PropagationBackendKind::DedicatedThread),
            ThetaImpl::sharded(2, 2, PropagationBackendKind::WriterAssisted),
            ThetaImpl::batched(1),
            ThetaImpl::batched(2),
            ThetaImpl::LockBased { threads: 2 },
        ] {
            let d = time_write_only(impl_, 9, 10_000, 1);
            assert!(d.as_nanos() > 0, "{} produced zero duration", impl_.label());
        }
    }

    #[test]
    fn batched_labels_are_informative() {
        let l = ThetaImpl::batched(4).label();
        assert!(l.contains("4w") && l.contains("chunk=256"), "{l}");
    }

    #[test]
    fn sharded_labels_are_informative() {
        let l = ThetaImpl::sharded(8, 4, PropagationBackendKind::WriterAssisted).label();
        assert!(
            l.contains("8w") && l.contains("4K") && l.contains("assisted"),
            "{l}"
        );
    }

    #[test]
    fn mixed_driver_counts_queries() {
        let r = time_mixed(
            ThetaImpl::concurrent(1),
            9,
            50_000,
            2,
            Duration::from_micros(100),
            1,
        );
        assert!(r.write_duration.as_nanos() > 0);
        // Readers should have managed at least one query each.
        assert!(r.queries >= 1, "queries = {}", r.queries);
    }

    #[test]
    fn accuracy_trial_is_small_for_large_streams() {
        let re = accuracy_trial(12, 0.04, 100_000, 3);
        assert!(re.abs() < 0.2, "relative error {re}");
    }

    #[test]
    fn labels_are_informative() {
        assert!(ThetaImpl::concurrent_b1(4).label().contains("b=1"));
        assert!(ThetaImpl::LockBased { threads: 3 }.label().contains("3t"));
    }
}
