//! Figure 3: the strong adversary's decision regions over the joint
//! values of `M₍ₖ₎` and `M₍ₖ₊ᵣ₎`.
//!
//! For each feasible pair (the white region `x > y` is infeasible since
//! `M₍ₖ₎ ≤ M₍ₖ₊ᵣ₎`), the adversary compares `|est(M₍ₖ₎) − n|` with
//! `|est(M₍ₖ₊ᵣ₎) − n|`: where the latter wins it hides `r` elements
//! (Θ = `M₍ₖ₊ᵣ₎`, dark gray in the paper), elsewhere it hides none
//! (Θ = `M₍ₖ₎`, light gray). The binary emits the region grid as CSV and
//! prints an ASCII rendering.
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure3 [--full]`

use fcds_bench::report::{HarnessArgs, Table};
use fcds_relaxation::adversary::{strong_prefers_hiding, AdversaryParams};

fn main() {
    let args = HarnessArgs::parse();
    let params = AdversaryParams::table1();
    let grid = if args.full { 120 } else { 48 };
    // The interesting range of Θ is around k/n = 2^10/2^15 = 1/32 ≈ 0.031.
    let center = params.k as f64 / params.n as f64;
    let (lo, hi) = (0.5 * center, 1.6 * center);

    println!(
        "Figure 3: strong-adversary regions, k = {}, r = {}, n = {} (Θ* = k/n = {:.4})",
        params.k, params.r, params.n, center
    );
    println!("x-axis: M(k); y-axis: M(k+r); grid {grid}x{grid} over [{lo:.4}, {hi:.4}]\n");

    let mut table = Table::new(&["m_k", "m_k_r", "region"]);
    let step = (hi - lo) / grid as f64;
    let mut rows_ascii: Vec<String> = Vec::new();
    for iy in (0..grid).rev() {
        let y = lo + (iy as f64 + 0.5) * step;
        let mut line = String::new();
        for ix in 0..grid {
            let x = lo + (ix as f64 + 0.5) * step;
            let ch = if x > y {
                ' ' // infeasible: M(k) ≤ M(k+r)
            } else if strong_prefers_hiding(params, x, y) {
                '#' // Θ = M(k+r): adversary hides r elements (dark gray)
            } else {
                '.' // Θ = M(k) (light gray)
            };
            line.push(ch);
            if x <= y {
                table.row(&[
                    format!("{x:.5}"),
                    format!("{y:.5}"),
                    (if ch == '#' { "hide_r" } else { "hide_0" }).to_string(),
                ]);
            }
        }
        rows_ascii.push(line);
    }
    for l in &rows_ascii {
        println!("{l}");
    }
    println!(
        "\nlegend: '#' = g(0,r) = r (Θ = M(k+r)), '.' = g(0,r) = 0 (Θ = M(k)), blank = infeasible"
    );
    let path = format!("{}/figure3.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
}
