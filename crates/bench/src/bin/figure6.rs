//! Figure 6: write-only throughput vs stream size (`k = 4096`,
//! `e = 0.04`), log-log (6a) with a zoom on large streams (6b).
//!
//! Curves: concurrent sketch with 1, 2, 4 (…, up to the host's cores)
//! writers vs the lock-based baseline with 1 and 12 threads. Expected
//! shape (§7.2): lock-based wins on small streams; the concurrent sketch
//! overtakes past a few hundred thousand uniques (the paper's crossing:
//! ~200K for ≥4 threads, ~700K for a single writer) and scales with
//! writers on large streams.
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure6 [--full]`

use fcds_bench::drivers::ThetaImpl;
use fcds_bench::profiles::SpeedProfile;
use fcds_bench::report::{mops, HarnessArgs, Table};

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let lg_k = 12;
    let profile = if args.full {
        SpeedProfile::full(lg_k)
    } else {
        SpeedProfile::quick(lg_k)
    };

    let mut impls: Vec<ThetaImpl> = vec![ThetaImpl::concurrent(1)];
    for w in [2usize, 4, 8, 12] {
        if w <= cores {
            impls.push(ThetaImpl::concurrent(w));
        }
    }
    impls.push(ThetaImpl::LockBased { threads: 1 });
    if 12 <= cores {
        impls.push(ThetaImpl::LockBased { threads: 12 });
    } else if cores >= 2 {
        impls.push(ThetaImpl::LockBased { threads: cores });
    }

    println!(
        "Figure 6: write-only throughput (Mops/s) vs stream size, k = 4096, e = 0.04 (host: {cores} cores)\n"
    );
    let mut header: Vec<String> = vec!["uniques".into()];
    header.extend(impls.iter().map(|i| i.label()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let runs: Vec<Vec<fcds_bench::profiles::SpeedPoint>> =
        impls.iter().map(|&i| profile.run(i)).collect();
    let n_points = runs[0].len();
    for idx in 0..n_points {
        let mut row = vec![runs[0][idx].uniques.to_string()];
        for r in &runs {
            row.push(mops(r[idx].mops()));
        }
        table.row(&row);
    }
    println!("{}", table.render());
    let path = format!("{}/figure6.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");

    // Figure 6b: the zoom — report the large-stream end and the crossing
    // point of concurrent(1w) over lock-based(1t).
    let conc1 = &runs[0];
    let lock1 = runs[impls
        .iter()
        .position(|i| matches!(i, ThetaImpl::LockBased { threads: 1 }))
        .unwrap()]
    .clone();
    // A sustained crossing: concurrent stays ahead for every larger size.
    let crossing = (0..conc1.len())
        .find(|&i| (i..conc1.len()).all(|j| conc1[j].mops() > lock1[j].mops()))
        .map(|i| conc1[i].uniques);
    println!(
        "\nFigure 6b (zoom): at {} uniques —",
        conc1.last().unwrap().uniques
    );
    for (i, r) in impls.iter().zip(&runs) {
        println!(
            "  {:<24} {} Mops/s",
            i.label(),
            mops(r.last().unwrap().mops())
        );
    }
    match crossing {
        Some(x) => println!(
            "\ncrossing point (concurrent 1w > lock-based 1t): ~{x} uniques (paper: ~700K)"
        ),
        None => println!("\nno crossing in measured range (increase --full range)"),
    }
}
