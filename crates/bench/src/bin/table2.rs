//! Table 2: the accuracy/throughput trade-off as a function of `k` —
//! for `k ∈ {256, 1024, 4096}`: the stream size where the concurrent
//! implementation overtakes the lock-based one (both single-threaded),
//! and the maximum median / 99th-percentile relative error across sizes.
//!
//! Usage: `cargo run --release -p fcds-bench --bin table2 [--full]`

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::profiles::AccuracyProfile;
use fcds_bench::report::{pct, HarnessArgs, Table};
use fcds_bench::workload;

fn crossing_point(lg_k: u8, full: bool) -> Option<u64> {
    // Scan stream sizes; report the first where concurrent(1w) beats
    // lock-based(1t).
    let sizes = workload::size_ladder(10, if full { 23 } else { 21 }, true);
    let budget: u64 = if full { 1 << 23 } else { 1 << 21 };
    let ratios: Vec<(u64, f64)> = sizes
        .iter()
        .map(|&n| {
            let trials = workload::trials_for_size(n, budget, 64);
            let mean = |impl_: ThetaImpl| -> f64 {
                let total: u128 = (0..trials)
                    .map(|t| drivers::time_write_only(impl_, lg_k, n, t).as_nanos())
                    .sum();
                total as f64 / (trials * n) as f64
            };
            (
                n,
                mean(ThetaImpl::LockBased { threads: 1 }) / mean(ThetaImpl::concurrent(1)),
            )
        })
        .collect();
    // Sustained crossing: concurrent at least ties lock-based from this
    // size on (a single noisy win does not count).
    (0..ratios.len())
        .find(|&i| (i..ratios.len()).all(|j| ratios[j].1 > 1.0))
        .map(|i| ratios[i].0)
}

fn max_errors(lg_k: u8, full: bool) -> (f64, f64) {
    let profile = if full {
        AccuracyProfile::full(lg_k, 0.04)
    } else {
        AccuracyProfile::quick(lg_k, 0.04)
    };
    let points = profile.run();
    let max_med = points
        .iter()
        .map(|p| p.quantile(0.5).abs())
        .fold(0.0f64, f64::max);
    let max_q99 = points
        .iter()
        .map(|p| p.quantile(0.99).abs().max(p.quantile(0.01).abs()))
        .fold(0.0f64, f64::max);
    (max_med, max_q99)
}

fn main() {
    let args = HarnessArgs::parse();
    println!("Table 2: performance vs accuracy as a function of k (e = 0.04)\n");
    let mut table = Table::new(&[
        "k",
        "thpt crossing point",
        "max |median error|",
        "max |Q99 error|",
    ]);
    for lg_k in [8u8, 10, 12] {
        let k = 1usize << lg_k;
        let crossing = crossing_point(lg_k, args.full);
        let (med, q99) = max_errors(lg_k, args.full);
        table.row(&[
            k.to_string(),
            crossing.map_or("> max size".into(), |c| format!("~{c}")),
            pct(med),
            pct(q99),
        ]);
    }
    println!("{}", table.render());
    let path = format!("{}/table2.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("\npaper (Java, 12-core Xeon): k=256 → 15K crossing, 0.16/0.27 errors;");
    println!("k=1024 → 100K, 0.05/0.13; k=4096 → 700K, 0.03/0.05.");
    println!("expected shape: larger k ⇒ later crossing, smaller errors.");
}
