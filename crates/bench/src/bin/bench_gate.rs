//! CI bench-regression gate over the JSON artefacts the bench binaries
//! emit (`BENCH_prop_cost.json`, `BENCH_quantiles_prop.json`,
//! `BENCH_ingest.json`, `BENCH_merge_tree.json`, `BENCH_serve.json`).
//!
//! Each artefact documents its own acceptance ratios and thresholds (see
//! [`fcds_bench::gate`]); this binary reads them back and exits nonzero
//! when any ratio regressed past its bound, when an artefact is missing,
//! or when one declares no enforceable thresholds — so a renamed ratio
//! or a silently skipped bench run fails CI instead of un-gating itself.
//!
//! Usage: `cargo run --release -p fcds-bench --bin bench_gate
//! [--dir=DIR]` (reads the artefacts from `DIR`, default the working
//! directory — where the bench runs put them in CI).

use fcds_bench::gate::check_doc;
use fcds_bench::report::HarnessArgs;
use std::process::ExitCode;

const ARTEFACTS: [&str; 5] = [
    "BENCH_prop_cost.json",
    "BENCH_quantiles_prop.json",
    "BENCH_ingest.json",
    "BENCH_merge_tree.json",
    "BENCH_serve.json",
];

fn main() -> ExitCode {
    let args = HarnessArgs::parse();
    let dir = args.get("dir").unwrap_or(".");
    let mut failures = 0usize;
    let mut enforced = 0usize;
    for name in ARTEFACTS {
        let path = format!("{dir}/{name}");
        println!("{path}:");
        let doc = match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                println!("  MISSING: {e}");
                failures += 1;
                continue;
            }
        };
        match check_doc(&doc) {
            Ok(checks) => {
                for check in checks {
                    println!("  {check}");
                    enforced += 1;
                    if !check.passed() {
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                println!("  UNPARSEABLE: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("bench gate: {failures} failure(s) across {enforced} enforced ratio(s)");
        ExitCode::FAILURE
    } else {
        println!("bench gate: all {enforced} enforced ratio(s) within thresholds");
        ExitCode::SUCCESS
    }
}
