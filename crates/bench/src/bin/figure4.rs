//! Figure 4: the distributions of the sequential estimator `e` and the
//! weak-adversary estimator `e_Aw` (`n = 2¹⁵`, `k = 2¹⁰`, `r = 8`).
//!
//! The paper shows two nearby bell curves: `e` centred on `n`, `e_Aw`
//! shifted left (the adversary hides small elements, inflating Θ and
//! deflating the estimate). The binary prints histograms and emits the
//! binned densities as CSV.
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure4 [--full]`

use fcds_bench::report::{HarnessArgs, Table};
use fcds_relaxation::adversary::{simulate, AdversaryParams};

fn main() {
    let args = HarnessArgs::parse();
    let trials = if args.full { 200_000 } else { 40_000 };
    let params = AdversaryParams::table1();
    let res = simulate(params, trials, 0xF16);

    let n = params.n as f64;
    let (lo, hi) = (0.85 * n, 1.15 * n);
    let bins = 41usize;
    let width = (hi - lo) / bins as f64;
    let mut h_seq = vec![0u64; bins];
    let mut h_weak = vec![0u64; bins];
    for t in &res.samples {
        for (v, h) in [(t.sequential, &mut h_seq), (t.weak, &mut h_weak)] {
            if v >= lo && v < hi {
                h[((v - lo) / width) as usize] += 1;
            }
        }
    }

    println!("Figure 4: distribution of e (sequential) and e_Aw (weak adversary)");
    println!(
        "n = {}, k = {}, r = {}, {trials} trials\n",
        params.n, params.k, params.r
    );
    let max_count = h_seq
        .iter()
        .chain(h_weak.iter())
        .copied()
        .max()
        .unwrap_or(1);
    let mut table = Table::new(&["bin_center/n", "density_e", "density_e_Aw"]);
    for i in 0..bins {
        let center = lo + (i as f64 + 0.5) * width;
        let bar = |c: u64| "█".repeat((c * 30 / max_count) as usize);
        println!(
            "{:>6.3}  e:{:<30}  eAw:{:<30}",
            center / n,
            bar(h_seq[i]),
            bar(h_weak[i])
        );
        table.row(&[
            format!("{:.4}", center / n),
            format!("{:.6}", h_seq[i] as f64 / trials as f64 / (width / n)),
            format!("{:.6}", h_weak[i] as f64 / trials as f64 / (width / n)),
        ]);
    }
    println!(
        "\nmeans: e = {:.0} ({}·n), e_Aw = {:.0} ({}·n)  — paper: e_Aw shifted left of e",
        res.sequential.mean,
        format_args!("{:.4}", res.sequential.mean / n),
        res.weak.mean,
        format_args!("{:.4}", res.weak.mean / n),
    );
    let path = format!("{}/figure4.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
}
