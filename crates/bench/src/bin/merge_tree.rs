//! The merge-anywhere scenario: N simulated nodes ingest disjoint
//! streams through the *concurrent* engine, export versioned wire
//! images, and a coordinator fan-in merges them into one queryable
//! global — emitting `BENCH_merge_tree.json`.
//!
//! One row per sketch family records the image size, the fan-in merge
//! cost (µs per image, images per second), and the merged estimate's
//! error against the exact oracle the disjoint streams make computable:
//!
//! * **Θ / HLL** — true distinct count is `nodes × per_node`; the merge
//!   is lossless (untrimmed union / register max), so only estimator
//!   variance contributes.
//! * **Quantiles** — the union stream is exactly `0..total`, so the
//!   true rank of any merged quantile value is `value / total`; the row
//!   reports the worst rank error over a φ grid as a multiple of the
//!   single-sketch `epsilon_for_k`.
//! * **Misra–Gries** — true per-item counts are replayed alongside the
//!   engines; the row reports the merged `max_error` against the
//!   mergeable-summaries bound `n/(k+1)` and the bound-coverage of
//!   every probed item.
//!
//! The acceptance ratios and the thresholds `bench_gate` enforces (see
//! [`fcds_bench::gate`]) are error-based — a merge-path bug shows up as
//! an estimate outside the statistical envelope — plus one loose
//! throughput floor catching accidentally quadratic fan-in.
//!
//! Usage: `cargo run --release -p fcds-bench --bin merge_tree
//! [--out=DIR]` (writes `<out>/BENCH_merge_tree.json`, default the
//! working directory).

use fcds_bench::gate::{
    MERGE_TREE_FANIN_IPS_MIN, MERGE_TREE_HLL_RELERR_MAX, MERGE_TREE_MG_COVERAGE_MIN,
    MERGE_TREE_MG_ERROR_VS_BOUND_MAX, MERGE_TREE_QUANTILES_RANKERR_VS_EPS_MAX,
    MERGE_TREE_THETA_RELERR_MAX,
};
use fcds_bench::report::HarnessArgs;
use fcds_core::frequency::ConcurrentFrequencySketch;
use fcds_core::hll::ConcurrentHllSketch;
use fcds_core::quantiles::ConcurrentQuantilesSketch;
use fcds_core::theta::ConcurrentThetaSketch;
use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::quantiles::{epsilon_for_k, QuantilesLadder};
use fcds_sketches::theta::{CompactThetaSketch, ThetaRead};
use fcds_sketches::wire::{merge_wire_images, WireMerge};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

const NODES: u64 = 8;
const PER_NODE: u64 = 50_000;
const THETA_LG_K: u8 = 12;
const HLL_LG_M: u8 = 10;
const QUANTILES_K: usize = 64;
const MG_K: usize = 64;
const MG_MODULUS: u64 = 400;
/// Fan-in repetitions for the timing loop (each repetition decodes and
/// merges all `NODES` images from scratch).
const MERGE_REPS: u32 = 64;

/// Times `reps` full fan-ins of `images` and returns
/// (merged result, µs per image, images per second).
fn time_fanin<W: WireMerge>(images: &[bytes::Bytes], reps: u32) -> (W, f64, f64) {
    let start = Instant::now();
    let mut merged = merge_wire_images(images).expect("images merge");
    for _ in 1..reps {
        merged = merge_wire_images(images).expect("images merge");
    }
    let elapsed = start.elapsed();
    let total_images = images.len() as f64 * reps as f64;
    let us_per_image = elapsed.as_secs_f64() * 1e6 / total_images;
    let images_per_sec = total_images / elapsed.as_secs_f64();
    (merged, us_per_image, images_per_sec)
}

fn avg_bytes(images: &[bytes::Bytes]) -> u64 {
    images.iter().map(|b| b.len() as u64).sum::<u64>() / images.len() as u64
}

fn theta_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch = ConcurrentThetaSketch::builder()
                .lg_k(THETA_LG_K)
                .seed(2024)
                .writers(1)
                .max_concurrency_error(0.04)
                .build()
                .expect("theta engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn hll_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch = ConcurrentHllSketch::builder()
                .lg_m(HLL_LG_M)
                .seed(2024)
                .writers(1)
                .max_concurrency_error(0.04)
                .build()
                .expect("hll engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn quantiles_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch: ConcurrentQuantilesSketch<u64> =
                ConcurrentQuantilesSketch::<u64>::builder()
                    .k(QUANTILES_K)
                    .oracle_seed(2024)
                    .writers(1)
                    .max_concurrency_error(0.04)
                    .build()
                    .expect("quantiles engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn mg_images() -> (Vec<bytes::Bytes>, HashMap<u64, u64>) {
    let mut truth = HashMap::new();
    let images = (0..NODES)
        .map(|node| {
            let sketch: ConcurrentFrequencySketch<u64> =
                ConcurrentFrequencySketch::<u64>::builder()
                    .k(MG_K)
                    .writers(1)
                    .max_concurrency_error(0.04)
                    .build()
                    .expect("frequency engine");
            let mut w = sketch.writer();
            for i in 0..PER_NODE {
                // Skewed: item 0 is globally heavy, the tail cycles
                // through a modulus wider than k.
                let item = if i % 4 == 0 {
                    0
                } else {
                    1 + (node * PER_NODE + i) % MG_MODULUS
                };
                w.update(item);
                *truth.entry(item).or_insert(0u64) += 1;
            }
            w.flush();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect();
    (images, truth)
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let total = NODES * PER_NODE;
    let mut rows = String::new();
    let mut fanin_floor = f64::INFINITY;

    // Θ: exact oracle is the disjoint union cardinality.
    let images = theta_images();
    let (merged, us, ips) = time_fanin::<CompactThetaSketch>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let theta_rel_error = (merged.estimate() - total as f64).abs() / total as f64;
    let _ = writeln!(
        rows,
        "    {{\"family\": \"theta\", \"lg_k\": {THETA_LG_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"rel_error\": {theta_rel_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!("theta: {us:.1} us/image, {ips:.0} images/s, rel_error {theta_rel_error:.4}");

    // HLL: same oracle; the merge is an exact register-max join.
    let images = hll_images();
    let (merged, us, ips) = time_fanin::<HllSketch>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let hll_rel_error = (merged.estimate() - total as f64).abs() / total as f64;
    let _ = writeln!(
        rows,
        "    {{\"family\": \"hll\", \"lg_m\": {HLL_LG_M}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"rel_error\": {hll_rel_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!("hll: {us:.1} us/image, {ips:.0} images/s, rel_error {hll_rel_error:.4}");

    // Quantiles: the union stream is exactly 0..total, so the true rank
    // of a merged quantile value is value/total.
    let images = quantiles_images();
    let (merged, us, ips) = time_fanin::<QuantilesLadder<u64>>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let mut worst_rank_error = 0.0f64;
    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let v = merged.quantile(phi).expect("nonempty merged ladder");
        worst_rank_error = worst_rank_error.max((v as f64 / total as f64 - phi).abs());
    }
    let quantiles_rankerr_vs_eps = worst_rank_error / epsilon_for_k(QUANTILES_K);
    let _ = writeln!(
        rows,
        "    {{\"family\": \"quantiles\", \"k\": {QUANTILES_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"worst_rank_error\": {worst_rank_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!(
        "quantiles: {us:.1} us/image, {ips:.0} images/s, worst rank error \
         {worst_rank_error:.4} ({quantiles_rankerr_vs_eps:.2}x eps)"
    );

    // Misra–Gries: replayed truth gives exact per-item counts; the
    // merged summary must keep every truth inside its bounds and its
    // error within the mergeable-summaries bound.
    let (images, truth) = mg_images();
    let (merged, us, ips) = time_fanin::<MisraGriesSketch<u64>>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let mg_error_vs_bound = merged.max_error() as f64 / (total as f64 / (MG_K as f64 + 1.0));
    let covered = truth
        .iter()
        .filter(|(item, &count)| {
            let est = merged.estimate(item);
            est.lower_bound <= count && count <= est.upper_bound
        })
        .count();
    let mg_coverage = covered as f64 / truth.len() as f64;
    let _ = write!(
        rows,
        "    {{\"family\": \"misra_gries\", \"k\": {MG_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"error_vs_bound\": {mg_error_vs_bound:.4}, \
         \"truth_coverage\": {mg_coverage:.4}}}",
        avg_bytes(&images)
    );
    eprintln!(
        "misra-gries: {us:.1} us/image, {ips:.0} images/s, error/bound \
         {mg_error_vs_bound:.3}, coverage {mg_coverage:.3}"
    );

    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-merge-tree-v1\",\n  \"cores\": {cores},\n  \
         \"nodes\": {NODES},\n  \"per_node\": {PER_NODE},\n  \"merge_reps\": {MERGE_REPS},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"theta_rel_error\": {theta_rel_error:.4},\n    \
         \"hll_rel_error\": {hll_rel_error:.4},\n    \
         \"quantiles_rankerr_vs_eps\": {quantiles_rankerr_vs_eps:.3},\n    \
         \"mg_error_vs_bound\": {mg_error_vs_bound:.4},\n    \
         \"mg_truth_coverage\": {mg_coverage:.4},\n    \
         \"fanin_images_per_sec_floor\": {fanin_floor:.0}\n  }},\n  \
         \"thresholds\": {{\n    \
         \"theta_rel_error_max\": {MERGE_TREE_THETA_RELERR_MAX:.2},\n    \
         \"hll_rel_error_max\": {MERGE_TREE_HLL_RELERR_MAX:.2},\n    \
         \"quantiles_rankerr_vs_eps_max\": {MERGE_TREE_QUANTILES_RANKERR_VS_EPS_MAX:.1},\n    \
         \"mg_error_vs_bound_max\": {MERGE_TREE_MG_ERROR_VS_BOUND_MAX:.1},\n    \
         \"mg_truth_coverage_min\": {MERGE_TREE_MG_COVERAGE_MIN:.1},\n    \
         \"fanin_images_per_sec_floor_min\": {MERGE_TREE_FANIN_IPS_MIN:.0}\n  }}\n}}\n"
    );

    let path = format!("{}/BENCH_merge_tree.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_merge_tree.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
