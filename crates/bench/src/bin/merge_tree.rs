//! The merge-anywhere scenario: N simulated nodes ingest disjoint
//! streams through the *concurrent* engine, export versioned wire
//! images, and a coordinator fan-in merges them into one queryable
//! global — emitting `BENCH_merge_tree.json`.
//!
//! One row per sketch family records the image size, the fan-in merge
//! cost (µs per image, images per second), and the merged estimate's
//! error against the exact oracle the disjoint streams make computable:
//!
//! * **Θ / HLL** — true distinct count is `nodes × per_node`; the merge
//!   is lossless (untrimmed union / register max), so only estimator
//!   variance contributes.
//! * **Quantiles** — the union stream is exactly `0..total`, so the
//!   true rank of any merged quantile value is `value / total`; the row
//!   reports the worst rank error over a φ grid as a multiple of the
//!   single-sketch `epsilon_for_k`.
//! * **Misra–Gries** — true per-item counts are replayed alongside the
//!   engines; the row reports the merged `max_error` against the
//!   mergeable-summaries bound `n/(k+1)` and the bound-coverage of
//!   every probed item.
//!
//! On top of the accuracy rows, the **fan-in sweep** pits the multiway
//! kernels (`fcds_sketches::wire::fanin`) against the reference
//! pairwise decode-and-fold at widths f ∈ {2, 8, 32, 128}, per family.
//! The binary installs a counting global allocator so every sweep row
//! also records heap allocations and bytes per merge — for Θ and HLL
//! the multiway loop holds a persistent `MergeScratch`, and the gate
//! pins its warm-loop allocation count at exactly zero. A final stat
//! times re-encoding a decoded Θ image (the borrowed-slice encode fast
//! path).
//!
//! The acceptance ratios and the thresholds `bench_gate` enforces (see
//! [`fcds_bench::gate`]) are error-based — a merge-path bug shows up as
//! an estimate outside the statistical envelope — plus one loose
//! throughput floor catching accidentally quadratic fan-in, the
//! multiway-vs-pairwise speedup bounds at f = 32, and the zero-alloc
//! bound on the warm loops.
//!
//! Usage: `cargo run --release -p fcds-bench --bin merge_tree
//! [--out=DIR]` (writes `<out>/BENCH_merge_tree.json`, default the
//! working directory).

use fcds_bench::gate::{
    MERGE_TREE_FANIN_IPS_MIN, MERGE_TREE_HLL_MULTIWAY_SPEEDUP_F32_MIN, MERGE_TREE_HLL_RELERR_MAX,
    MERGE_TREE_MG_COVERAGE_MIN, MERGE_TREE_MG_ERROR_VS_BOUND_MAX,
    MERGE_TREE_QUANTILES_RANKERR_VS_EPS_MAX, MERGE_TREE_THETA_MULTIWAY_SPEEDUP_F32_MIN,
    MERGE_TREE_THETA_RELERR_MAX, MERGE_TREE_WARM_ALLOCS_PER_MERGE_MAX,
};
use fcds_bench::report::HarnessArgs;
use fcds_core::frequency::ConcurrentFrequencySketch;
use fcds_core::hll::ConcurrentHllSketch;
use fcds_core::quantiles::ConcurrentQuantilesSketch;
use fcds_core::theta::ConcurrentThetaSketch;
use fcds_core::WireImage;
use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::quantiles::{epsilon_for_k, QuantilesLadder, QuantilesSketch};
use fcds_sketches::theta::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
use fcds_sketches::wire::{
    hll_multiway_merge_into, ladder_multiway_concat, merge_wire_images, mg_multiway_merge,
    theta_multiway_union_into, MergeScratch, WireDecode, WireEncode, WireMerge,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

/// Instrumented global allocator: counts every heap allocation and its
/// size so each sweep row can report allocations and bytes per merge —
/// and so the gate can pin the warm multiway loops at exactly zero.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation straight to `System`; the relaxed
// counters are the only addition (per-thread precision does not matter —
// the timed loops run on the main thread with no engine threads alive).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// Scenario parameters
// ---------------------------------------------------------------------------

const NODES: u64 = 8;
const PER_NODE: u64 = 50_000;
const THETA_LG_K: u8 = 12;
const HLL_LG_M: u8 = 10;
const QUANTILES_K: usize = 64;
const MG_K: usize = 64;
const MG_MODULUS: u64 = 400;
/// Fan-in repetitions for the accuracy-section timing loop (each
/// repetition merges all `NODES` images from scratch).
const MERGE_REPS: u32 = 64;

/// Fan-in widths the sweep probes. The gate bounds sit at f = 32.
const FANIN_WIDTHS: [usize; 4] = [2, 8, 32, 128];
/// Items per node for the sweep images (enough to saturate the Θ sketch
/// at `THETA_LG_K`, so every image carries a full 2^lg_k hash set).
const SWEEP_PER_NODE: u64 = 20_000;

/// Repetitions per sweep width, scaled so total image traffic stays
/// roughly constant across widths.
fn sweep_reps(fanin: usize) -> u32 {
    (2048 / fanin).max(4) as u32
}

/// Times `reps` full fan-ins of `images` through the shipping
/// `merge_wire_images` path and returns
/// (merged result, µs per image, images per second).
fn time_fanin<W: WireMerge>(images: &[bytes::Bytes], reps: u32) -> (W, f64, f64) {
    let start = Instant::now();
    let mut merged = merge_wire_images(images).expect("images merge");
    for _ in 1..reps {
        merged = merge_wire_images(images).expect("images merge");
    }
    let elapsed = start.elapsed();
    let total_images = images.len() as f64 * reps as f64;
    let us_per_image = elapsed.as_secs_f64() * 1e6 / total_images;
    let images_per_sec = total_images / elapsed.as_secs_f64();
    (merged, us_per_image, images_per_sec)
}

fn avg_bytes(images: &[bytes::Bytes]) -> u64 {
    images.iter().map(|b| b.len() as u64).sum::<u64>() / images.len() as u64
}

// ---------------------------------------------------------------------------
// Sweep machinery
// ---------------------------------------------------------------------------

/// One timed sweep leg: cost per image, rate, and per-merge allocator
/// traffic. `sink` folds each merge's observable result so the loop
/// cannot be optimised away.
struct SweepTiming {
    us_per_image: f64,
    images_per_sec: f64,
    allocs_per_merge: f64,
    bytes_per_merge: f64,
    sink: f64,
}

/// Runs `merge` once unmeasured (warming any reusable scratch to size),
/// then times `reps` runs and snapshots the allocation counters around
/// the loop.
fn time_sweep(n_images: usize, reps: u32, mut merge: impl FnMut() -> f64) -> SweepTiming {
    let mut sink = merge();
    let allocs0 = ALLOC_COUNT.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..reps {
        sink += merge();
    }
    let elapsed = start.elapsed();
    let allocs = ALLOC_COUNT.load(Ordering::Relaxed) - allocs0;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
    let total_images = n_images as f64 * reps as f64;
    SweepTiming {
        us_per_image: elapsed.as_secs_f64() * 1e6 / total_images,
        images_per_sec: total_images / elapsed.as_secs_f64(),
        allocs_per_merge: allocs as f64 / f64::from(reps),
        bytes_per_merge: bytes as f64 / f64::from(reps),
        sink,
    }
}

/// The reference baseline the kernels are judged against: decode every
/// image, fold with `wire_merge_from` — exactly what `merge_wire_images`
/// did before the multiway kernels existed.
fn pairwise_fold<W: WireMerge>(images: &[bytes::Bytes]) -> W {
    let mut iter = images.iter();
    let mut acc = W::from_wire_bytes(iter.next().expect("nonempty fan-in")).expect("decode");
    for image in iter {
        let part = W::from_wire_bytes(image).expect("decode");
        acc.wire_merge_from(&part).expect("merge");
    }
    acc
}

fn sweep_theta_images() -> Vec<bytes::Bytes> {
    (0..FANIN_WIDTHS[3] as u64)
        .map(|node| {
            let mut s = QuickSelectThetaSketch::new(THETA_LG_K, 2024).expect("theta sketch");
            for i in 0..SWEEP_PER_NODE {
                s.update(node * SWEEP_PER_NODE + i);
            }
            s.compact().to_wire_bytes()
        })
        .collect()
}

fn sweep_hll_images() -> Vec<bytes::Bytes> {
    (0..FANIN_WIDTHS[3] as u64)
        .map(|node| {
            let mut s = HllSketch::new(HLL_LG_M, 2024).expect("hll sketch");
            for i in 0..SWEEP_PER_NODE {
                s.update(node * SWEEP_PER_NODE + i);
            }
            s.to_wire_bytes()
        })
        .collect()
}

fn sweep_ladder_images() -> Vec<bytes::Bytes> {
    (0..FANIN_WIDTHS[3] as u64)
        .map(|node| {
            let mut s =
                QuantilesSketch::<u64>::with_seed(QUANTILES_K, 2024).expect("quantiles sketch");
            for i in 0..SWEEP_PER_NODE {
                s.update(node * SWEEP_PER_NODE + i);
            }
            s.ladder().to_wire_bytes()
        })
        .collect()
}

fn sweep_mg_images() -> Vec<bytes::Bytes> {
    (0..FANIN_WIDTHS[3] as u64)
        .map(|node| {
            let mut s = MisraGriesSketch::<u64>::new(MG_K).expect("mg sketch");
            for i in 0..SWEEP_PER_NODE {
                let item = if i % 4 == 0 {
                    0
                } else {
                    1 + (node * SWEEP_PER_NODE + i) % MG_MODULUS
                };
                s.update(item);
            }
            s.to_wire_bytes()
        })
        .collect()
}

/// One sweep row: `{family, fanin, reps, pairwise and multiway legs}`.
fn sweep_row(family: &str, fanin: usize, reps: u32, pw: &SweepTiming, mw: &SweepTiming) -> String {
    format!(
        "    {{\"family\": \"{family}\", \"fanin\": {fanin}, \"reps\": {reps}, \
         \"pairwise_us_per_image\": {:.2}, \"pairwise_allocs_per_merge\": {:.1}, \
         \"pairwise_bytes_per_merge\": {:.0}, \"multiway_us_per_image\": {:.2}, \
         \"multiway_images_per_sec\": {:.0}, \"multiway_allocs_per_merge\": {:.1}, \
         \"multiway_bytes_per_merge\": {:.0}, \"speedup\": {:.2}}}",
        pw.us_per_image,
        pw.allocs_per_merge,
        pw.bytes_per_merge,
        mw.us_per_image,
        mw.images_per_sec,
        mw.allocs_per_merge,
        mw.bytes_per_merge,
        pw.us_per_image / mw.us_per_image
    )
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let total = NODES * PER_NODE;
    let mut rows = String::new();
    let mut fanin_floor = f64::INFINITY;

    // Θ: exact oracle is the disjoint union cardinality.
    let images = theta_images();
    let (merged, us, ips) = time_fanin::<CompactThetaSketch>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let theta_rel_error = (merged.estimate() - total as f64).abs() / total as f64;
    let _ = writeln!(
        rows,
        "    {{\"family\": \"theta\", \"lg_k\": {THETA_LG_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"rel_error\": {theta_rel_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!("theta: {us:.1} us/image, {ips:.0} images/s, rel_error {theta_rel_error:.4}");

    // HLL: same oracle; the merge is an exact register-max join.
    let images = hll_images();
    let (merged, us, ips) = time_fanin::<HllSketch>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let hll_rel_error = (merged.estimate() - total as f64).abs() / total as f64;
    let _ = writeln!(
        rows,
        "    {{\"family\": \"hll\", \"lg_m\": {HLL_LG_M}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"rel_error\": {hll_rel_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!("hll: {us:.1} us/image, {ips:.0} images/s, rel_error {hll_rel_error:.4}");

    // Quantiles: the union stream is exactly 0..total, so the true rank
    // of a merged quantile value is value/total.
    let images = quantiles_images();
    let (merged, us, ips) = time_fanin::<QuantilesLadder<u64>>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let mut worst_rank_error = 0.0f64;
    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let v = merged.quantile(phi).expect("nonempty merged ladder");
        worst_rank_error = worst_rank_error.max((v as f64 / total as f64 - phi).abs());
    }
    let quantiles_rankerr_vs_eps = worst_rank_error / epsilon_for_k(QUANTILES_K);
    let _ = writeln!(
        rows,
        "    {{\"family\": \"quantiles\", \"k\": {QUANTILES_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"worst_rank_error\": {worst_rank_error:.4}}},",
        avg_bytes(&images)
    );
    eprintln!(
        "quantiles: {us:.1} us/image, {ips:.0} images/s, worst rank error \
         {worst_rank_error:.4} ({quantiles_rankerr_vs_eps:.2}x eps)"
    );

    // Misra–Gries: replayed truth gives exact per-item counts; the
    // merged summary must keep every truth inside its bounds and its
    // error within the mergeable-summaries bound.
    let (images, truth) = mg_images();
    let (merged, us, ips) = time_fanin::<MisraGriesSketch<u64>>(&images, MERGE_REPS);
    fanin_floor = fanin_floor.min(ips);
    let mg_error_vs_bound = merged.max_error() as f64 / (total as f64 / (MG_K as f64 + 1.0));
    let covered = truth
        .iter()
        .filter(|(item, &count)| {
            let est = merged.estimate(item);
            est.lower_bound <= count && count <= est.upper_bound
        })
        .count();
    let mg_coverage = covered as f64 / truth.len() as f64;
    let _ = write!(
        rows,
        "    {{\"family\": \"misra_gries\", \"k\": {MG_K}, \"nodes\": {NODES}, \
         \"per_node\": {PER_NODE}, \"image_bytes\": {}, \"merge_us_per_image\": {us:.2}, \
         \"fanin_images_per_sec\": {ips:.0}, \"error_vs_bound\": {mg_error_vs_bound:.4}, \
         \"truth_coverage\": {mg_coverage:.4}}}",
        avg_bytes(&images)
    );
    eprintln!(
        "misra-gries: {us:.1} us/image, {ips:.0} images/s, error/bound \
         {mg_error_vs_bound:.3}, coverage {mg_coverage:.3}"
    );

    // -----------------------------------------------------------------
    // Fan-in sweep: multiway kernels vs the pairwise decode-and-fold.
    // Images come from sequential sketches (the merge path cannot tell
    // who produced an image); every engine from the accuracy section is
    // already dropped, so the timed loops own the allocator counters.
    // -----------------------------------------------------------------
    let theta_sweep = sweep_theta_images();
    let hll_sweep = sweep_hll_images();
    let ladder_sweep = sweep_ladder_images();
    let mg_sweep = sweep_mg_images();

    let mut sweep_rows: Vec<String> = Vec::new();
    let mut theta_multiway_speedup_f32 = 0.0f64;
    let mut hll_multiway_speedup_f32 = 0.0f64;
    let mut warm_allocs_per_merge = 0.0f64;
    let mut sink = 0.0f64;
    let mut scratch = MergeScratch::new();

    for &fanin in &FANIN_WIDTHS {
        let reps = sweep_reps(fanin);
        let slice = &theta_sweep[..fanin];
        let pw = time_sweep(fanin, reps, || {
            pairwise_fold::<CompactThetaSketch>(slice).estimate()
        });
        let mw = time_sweep(fanin, reps, || {
            theta_multiway_union_into(&mut scratch, slice)
                .expect("theta multiway")
                .estimate()
        });
        if fanin == 32 {
            theta_multiway_speedup_f32 = pw.us_per_image / mw.us_per_image;
        }
        warm_allocs_per_merge = warm_allocs_per_merge.max(mw.allocs_per_merge);
        sink += pw.sink + mw.sink;
        eprintln!(
            "theta f={fanin}: pairwise {:.2} us/image, multiway {:.2} us/image \
             ({:.2}x, {:.1} allocs/merge warm)",
            pw.us_per_image,
            mw.us_per_image,
            pw.us_per_image / mw.us_per_image,
            mw.allocs_per_merge
        );
        sweep_rows.push(sweep_row("theta", fanin, reps, &pw, &mw));
    }

    for &fanin in &FANIN_WIDTHS {
        let reps = sweep_reps(fanin);
        let slice = &hll_sweep[..fanin];
        let pw = time_sweep(fanin, reps, || pairwise_fold::<HllSketch>(slice).estimate());
        let mw = time_sweep(fanin, reps, || {
            hll_multiway_merge_into(&mut scratch, slice)
                .expect("hll multiway")
                .estimate()
        });
        if fanin == 32 {
            hll_multiway_speedup_f32 = pw.us_per_image / mw.us_per_image;
        }
        warm_allocs_per_merge = warm_allocs_per_merge.max(mw.allocs_per_merge);
        sink += pw.sink + mw.sink;
        eprintln!(
            "hll f={fanin}: pairwise {:.2} us/image, multiway {:.2} us/image \
             ({:.2}x, {:.1} allocs/merge warm)",
            pw.us_per_image,
            mw.us_per_image,
            pw.us_per_image / mw.us_per_image,
            mw.allocs_per_merge
        );
        sweep_rows.push(sweep_row("hll", fanin, reps, &pw, &mw));
    }

    // Ladder and MG kernels materialise their (small) output, so they
    // are reported but not alloc-gated.
    for &fanin in &FANIN_WIDTHS {
        let reps = sweep_reps(fanin);
        let slice = &ladder_sweep[..fanin];
        let pw = time_sweep(fanin, reps, || {
            pairwise_fold::<QuantilesLadder<u64>>(slice).n() as f64
        });
        let mw = time_sweep(fanin, reps, || {
            let merged: QuantilesLadder<u64> =
                ladder_multiway_concat(slice).expect("ladder multiway");
            merged.n() as f64
        });
        sink += pw.sink + mw.sink;
        eprintln!(
            "quantiles f={fanin}: pairwise {:.2} us/image, multiway {:.2} us/image ({:.2}x)",
            pw.us_per_image,
            mw.us_per_image,
            pw.us_per_image / mw.us_per_image
        );
        sweep_rows.push(sweep_row("quantiles", fanin, reps, &pw, &mw));
    }

    for &fanin in &FANIN_WIDTHS {
        let reps = sweep_reps(fanin);
        let slice = &mg_sweep[..fanin];
        let pw = time_sweep(fanin, reps, || {
            pairwise_fold::<MisraGriesSketch<u64>>(slice).n() as f64
        });
        let mw = time_sweep(fanin, reps, || {
            let merged: MisraGriesSketch<u64> = mg_multiway_merge(slice).expect("mg multiway");
            merged.n() as f64
        });
        sink += pw.sink + mw.sink;
        eprintln!(
            "misra-gries f={fanin}: pairwise {:.2} us/image, multiway {:.2} us/image ({:.2}x)",
            pw.us_per_image,
            mw.us_per_image,
            pw.us_per_image / mw.us_per_image
        );
        sweep_rows.push(sweep_row("misra_gries", fanin, reps, &pw, &mw));
    }

    // Re-encode fast path: serialising a *decoded* Θ image encodes
    // straight off the borrowed hash slice (no sort, no gather).
    let decoded = CompactThetaSketch::from_wire_bytes(&theta_sweep[0]).expect("theta decode");
    let reencode_reps = 2048u32;
    let start = Instant::now();
    let mut reencoded_bytes = 0usize;
    for _ in 0..reencode_reps {
        reencoded_bytes += decoded.to_wire_bytes().len();
    }
    let theta_reencode_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reencode_reps);
    eprintln!(
        "theta re-encode: {theta_reencode_us:.2} us/image \
         ({} bytes; sweep sink {sink:.0}, {reencoded_bytes} bytes total)",
        decoded.to_wire_bytes().len()
    );

    let sweep = sweep_rows.join(",\n");
    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-merge-tree-v2\",\n  \"cores\": {cores},\n  \
         \"nodes\": {NODES},\n  \"per_node\": {PER_NODE},\n  \"merge_reps\": {MERGE_REPS},\n  \
         \"sweep_per_node\": {SWEEP_PER_NODE},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"fanin_sweep\": [\n{sweep}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"theta_rel_error\": {theta_rel_error:.4},\n    \
         \"hll_rel_error\": {hll_rel_error:.4},\n    \
         \"quantiles_rankerr_vs_eps\": {quantiles_rankerr_vs_eps:.3},\n    \
         \"mg_error_vs_bound\": {mg_error_vs_bound:.4},\n    \
         \"mg_truth_coverage\": {mg_coverage:.4},\n    \
         \"fanin_images_per_sec_floor\": {fanin_floor:.0},\n    \
         \"theta_multiway_speedup_f32\": {theta_multiway_speedup_f32:.2},\n    \
         \"hll_multiway_speedup_f32\": {hll_multiway_speedup_f32:.2},\n    \
         \"warm_allocs_per_merge\": {warm_allocs_per_merge:.1},\n    \
         \"theta_reencode_us_per_image\": {theta_reencode_us:.2}\n  }},\n  \
         \"thresholds\": {{\n    \
         \"theta_rel_error_max\": {MERGE_TREE_THETA_RELERR_MAX:.2},\n    \
         \"hll_rel_error_max\": {MERGE_TREE_HLL_RELERR_MAX:.2},\n    \
         \"quantiles_rankerr_vs_eps_max\": {MERGE_TREE_QUANTILES_RANKERR_VS_EPS_MAX:.1},\n    \
         \"mg_error_vs_bound_max\": {MERGE_TREE_MG_ERROR_VS_BOUND_MAX:.1},\n    \
         \"mg_truth_coverage_min\": {MERGE_TREE_MG_COVERAGE_MIN:.1},\n    \
         \"fanin_images_per_sec_floor_min\": {MERGE_TREE_FANIN_IPS_MIN:.0},\n    \
         \"theta_multiway_speedup_f32_min\": {MERGE_TREE_THETA_MULTIWAY_SPEEDUP_F32_MIN:.1},\n    \
         \"hll_multiway_speedup_f32_min\": {MERGE_TREE_HLL_MULTIWAY_SPEEDUP_F32_MIN:.1},\n    \
         \"warm_allocs_per_merge_max\": {MERGE_TREE_WARM_ALLOCS_PER_MERGE_MAX:.1}\n  }}\n}}\n"
    );

    let path = format!("{}/BENCH_merge_tree.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_merge_tree.json");
    print!("{json}");
    eprintln!("wrote {path}");
}

fn theta_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch = ConcurrentThetaSketch::builder()
                .lg_k(THETA_LG_K)
                .seed(2024)
                .writers(1)
                .max_concurrency_error(0.04)
                .build()
                .expect("theta engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush().unwrap();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn hll_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch = ConcurrentHllSketch::builder()
                .lg_m(HLL_LG_M)
                .seed(2024)
                .writers(1)
                .max_concurrency_error(0.04)
                .build()
                .expect("hll engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush().unwrap();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn quantiles_images() -> Vec<bytes::Bytes> {
    (0..NODES)
        .map(|node| {
            let sketch: ConcurrentQuantilesSketch<u64> =
                ConcurrentQuantilesSketch::<u64>::builder()
                    .k(QUANTILES_K)
                    .oracle_seed(2024)
                    .writers(1)
                    .max_concurrency_error(0.04)
                    .build()
                    .expect("quantiles engine");
            let mut w = sketch.writer();
            let items: Vec<u64> = (0..PER_NODE).map(|i| node * PER_NODE + i).collect();
            w.update_batch(&items);
            w.flush().unwrap();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect()
}

fn mg_images() -> (Vec<bytes::Bytes>, HashMap<u64, u64>) {
    let mut truth = HashMap::new();
    let images = (0..NODES)
        .map(|node| {
            let sketch: ConcurrentFrequencySketch<u64> =
                ConcurrentFrequencySketch::<u64>::builder()
                    .k(MG_K)
                    .writers(1)
                    .max_concurrency_error(0.04)
                    .build()
                    .expect("frequency engine");
            let mut w = sketch.writer();
            for i in 0..PER_NODE {
                // Skewed: item 0 is globally heavy, the tail cycles
                // through a modulus wider than k.
                let item = if i % 4 == 0 {
                    0
                } else {
                    1 + (node * PER_NODE + i) % MG_MODULUS
                };
                w.update(item);
                *truth.entry(item).or_insert(0u64) += 1;
            }
            w.flush().unwrap();
            sketch.quiesce();
            sketch.wire_image()
        })
        .collect();
    (images, truth)
}
