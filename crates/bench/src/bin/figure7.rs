//! Figure 7: mixed read/write workload (`k = 4096`, `e = 0.04`) — 1 or 2
//! writers with 10 background reader threads issuing a query every 1 ms.
//!
//! Expected shape (§7.2): background readers barely affect the concurrent
//! sketch (queries read an atomic snapshot) but cost the lock-based
//! baseline ~10% (readers compete for the lock).
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure7 [--full]`

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::report::{mops, HarnessArgs, Table};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::parse();
    let uniques: u64 = if args.full { 1 << 23 } else { 1 << 21 };
    let trials: u64 = if args.full { 9 } else { 5 };
    let readers = 10;
    let pause = Duration::from_millis(1);
    let lg_k = 12;

    println!(
        "Figure 7: mixed workload — writers + {readers} background readers (1 ms pauses), k = 4096, stream = {uniques}\n"
    );

    let configs: Vec<ThetaImpl> = vec![
        ThetaImpl::concurrent(1),
        ThetaImpl::concurrent(2),
        ThetaImpl::LockBased { threads: 1 },
        ThetaImpl::LockBased { threads: 2 },
    ];

    let mut table = Table::new(&[
        "implementation",
        "write-only (Mops/s)",
        "with readers (Mops/s)",
        "slowdown",
        "queries served",
    ]);
    // Median over trials: the write-only and mixed measurements alternate
    // so slow machine phases hit both alike.
    let median = |mut v: Vec<u128>| -> f64 {
        v.sort_unstable();
        v[v.len() / 2] as f64
    };
    for impl_ in configs {
        let mut wo_ns: Vec<u128> = Vec::new();
        let mut mix_ns: Vec<u128> = Vec::new();
        let mut total_q: u64 = 0;
        for n in 0..trials {
            wo_ns.push(drivers::time_write_only(impl_, lg_k, uniques, n).as_nanos());
            let r = drivers::time_mixed(impl_, lg_k, uniques, readers, pause, n);
            mix_ns.push(r.write_duration.as_nanos());
            total_q += r.queries;
        }
        let write_only = 1e3 / (median(wo_ns) / uniques as f64);
        let with_readers = 1e3 / (median(mix_ns) / uniques as f64);
        let queries = total_q / trials;
        table.row(&[
            impl_.label(),
            mops(write_only),
            mops(with_readers),
            format!("{:.1}%", (1.0 - with_readers / write_only) * 100.0),
            queries.to_string(),
        ]);
    }
    println!("{}", table.render());
    let path = format!("{}/figure7.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("\nexpected: near-zero slowdown for the concurrent sketch;");
    println!("~10% slowdown for lock-based (paper: 25 → 23 Mops/s single writer).");
}
