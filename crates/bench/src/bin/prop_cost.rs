//! Per-merge propagation-cost measurement emitting `BENCH_prop_cost.json`.
//!
//! The paper's scalability argument needs the propagation path to stay
//! O(b) per merge. This bench pins that down for the sharded Θ engine by
//! timing one propagation step — merge a pre-filtered local buffer of
//! `b` updates into a *full* global sketch, then publish — under the
//! publication strategies the engine can run:
//!
//! * `k = 1, image = none` — the single-shard path (seqlock triple only);
//! * `k = 4, image = delta` — chunked copy-on-write block images, the
//!   sharded path after this optimisation (`image_every` ∈ {1, 4});
//! * `k = 4, image = whole_copy` — the pre-block behaviour (re-collect
//!   all retained hashes per publication), kept reachable as the
//!   `publish_sharded`-without-`prepare_sharded` fallback.
//!
//! Publication cost is retained-independent when the delta rows stay
//! within a small factor of the no-image row while the whole-copy row
//! grows with `retained` — the two acceptance ratios are recorded in the
//! JSON (`delta_vs_no_image_ratio`, `whole_copy_vs_delta_ratio`),
//! together with the CI thresholds `bench_gate` enforces on them.
//!
//! Usage: `cargo run --release -p fcds-bench --bin prop_cost [--out=DIR]`
//! (writes `<out>/BENCH_prop_cost.json`, default the working directory,
//! like `bench_smoke`).

use fcds_bench::gate::{THETA_DELTA_VS_NO_IMAGE_MAX, THETA_WHOLE_COPY_VS_DELTA_MIN};
use fcds_bench::report::HarnessArgs;
use fcds_core::composable::{GlobalSketch, LocalSketch};
use fcds_core::theta::ThetaGlobal;
use fcds_sketches::theta::THETA_BLOCK_CAPACITY;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 0xB10C;
/// Updates per merge: the engine's default lazy buffer cap `b`.
const B: u64 = 16;
/// Merges per timing batch (the clock is read between batches only, so
/// `Instant::now` overhead never pollutes the cheap variants).
const BATCH: u64 = 64;
const MAX_MERGES: u64 = 16_384;
const BUDGET: Duration = Duration::from_millis(250);

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Image {
    /// `publish` only — the K = 1 path.
    None,
    /// Block images via the propagator's mirror, published every `m`-th
    /// merge.
    Delta { m: u64 },
    /// The pre-block fallback: `publish_sharded` without the mirror
    /// re-collects all retained hashes on every publication.
    WholeCopy,
}

/// A Θ global saturated with distinct uniform hashes (estimation mode,
/// retained fluctuating in `[k, ~1.9k)`).
fn filled_global(lg_k: u8) -> ThetaGlobal {
    let mut g = ThetaGlobal::new(lg_k, SEED).expect("valid lg_k");
    let mut rng = SplitMix(SEED);
    for _ in 0..(32u64 << lg_k) {
        g.update_direct(rng.next() | 1);
    }
    g
}

/// Times `merge(b pre-filtered updates) + publish` in steady state and
/// returns (ns per merge, merges measured, retained at the end).
fn measure(lg_k: u8, image: Image) -> (f64, u64, usize) {
    let mut g = filled_global(lg_k);
    if let Image::Delta { .. } = image {
        g.prepare_sharded();
    }
    let view = g.new_view();
    if image != Image::None {
        g.publish_sharded(&view);
    }
    let mut local = g.new_local();
    let mut rng = SplitMix(SEED ^ 0x5EED);
    let mut merge_idx = 0u64;
    let mut one_batch = |g: &mut ThetaGlobal, merge_idx: &mut u64| {
        for _ in 0..BATCH {
            // The writers' shouldAdd filter only ships hashes below the
            // hint, so feed uniform hashes below Θ — the stream the
            // propagator actually sees.
            let theta = g.calc_hint();
            for _ in 0..B {
                local.update(1 + rng.next() % (theta - 1));
            }
            g.merge(&mut local);
            *merge_idx += 1;
            match image {
                Image::None => g.publish(&view),
                Image::Delta { m } if !(*merge_idx).is_multiple_of(m) => g.publish(&view),
                Image::Delta { .. } | Image::WholeCopy => g.publish_sharded(&view),
            }
        }
    };
    // Warm-up: two batches reach steady state (mirror populated, first
    // post-publish copy-on-write behind us).
    one_batch(&mut g, &mut merge_idx);
    one_batch(&mut g, &mut merge_idx);

    let mut merges = 0u64;
    let start = Instant::now();
    while start.elapsed() < BUDGET && merges < MAX_MERGES {
        one_batch(&mut g, &mut merge_idx);
        merges += BATCH;
    }
    let per_merge_ns = start.elapsed().as_nanos() as f64 / merges as f64;
    g.publish(&view);
    let retained = ThetaGlobal::snapshot(&view).retained as usize;
    (per_merge_ns, merges, retained)
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let variants: [(usize, Image, &str, u64); 4] = [
        (1, Image::None, "none", 1),
        (4, Image::Delta { m: 1 }, "delta", 1),
        (4, Image::Delta { m: 4 }, "delta", 4),
        (4, Image::WholeCopy, "whole_copy", 1),
    ];

    let mut rows = String::new();
    let mut per_ns = std::collections::HashMap::new();
    for (i, lg_k) in [12u8, 16].into_iter().enumerate() {
        for (j, &(k, image, label, m)) in variants.iter().enumerate() {
            let (ns, merges, retained) = measure(lg_k, image);
            per_ns.insert((lg_k, label, m), ns);
            if i > 0 || j > 0 {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"lg_k\": {lg_k}, \"retained\": {retained}, \"shards\": {k}, \
                 \"image\": \"{label}\", \"image_every\": {m}, \
                 \"per_merge_ns\": {ns:.1}, \"merges\": {merges}}}"
            );
            eprintln!(
                "lg_k={lg_k} image={label} M={m}: {ns:.0} ns/merge ({merges} merges, retained {retained})"
            );
        }
    }

    let delta16 = per_ns[&(16u8, "delta", 1u64)];
    let delta_vs_none = delta16 / per_ns[&(16u8, "none", 1u64)];
    let whole_vs_delta = per_ns[&(16u8, "whole_copy", 1u64)] / delta16;

    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-prop-cost-v1\",\n  \"cores\": {cores},\n  \
         \"buffer_updates_per_merge\": {B},\n  \"block_capacity\": {THETA_BLOCK_CAPACITY},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"lg_k16_delta_vs_no_image_ratio\": {delta_vs_none:.2},\n    \
         \"lg_k16_whole_copy_vs_delta_ratio\": {whole_vs_delta:.1}\n  }},\n  \
         \"thresholds\": {{\n    \
         \"lg_k16_delta_vs_no_image_ratio_max\": {THETA_DELTA_VS_NO_IMAGE_MAX:.1},\n    \
         \"lg_k16_whole_copy_vs_delta_ratio_min\": {THETA_WHOLE_COPY_VS_DELTA_MIN:.1}\n  }}\n}}\n"
    );

    let path = format!("{}/BENCH_prop_cost.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_prop_cost.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
