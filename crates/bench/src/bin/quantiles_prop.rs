//! Per-merge Quantiles propagation-cost measurement emitting
//! `BENCH_quantiles_prop.json`.
//!
//! The paper's scalability argument needs the propagation path to stay
//! O(b) amortised per merge. PR 3 pinned that down for the sharded Θ
//! image (`prop_cost`); this bench does the same for the Quantiles
//! publication by timing one propagation step — merge a local buffer of
//! `b` updates into a warm global sketch, then publish a snapshot into
//! an epoch cell — under the two publication strategies:
//!
//! * `ladder` — the copy-on-write level ladder
//!   ([`QuantilesSketch::ladder`]): one `Arc` clone per level plus a
//!   sort of the ≤ 2k base buffer, independent of the retained count;
//! * `rebuild` — the pre-ladder behaviour ([`QuantilesSketch::reader`]):
//!   re-collect and re-sort the whole retained set on every publication,
//!   O(retained · log retained).
//!
//! ## Warm states
//!
//! Level occupancy is the binary representation of the compaction count
//! `n / 2k`, so a freshly streamed warm-up collapses to a single
//! occupied level right after any power-of-two boundary — both sizes
//! would sustain the *same* retained count during the measurement
//! window. Instead the sketch is warmed into a deep-ladder state with
//! levels `CHURN_LEVELS..CHURN_LEVELS + depth` pre-occupied
//! (`QuantilesSketch::with_prebuilt_levels`): the measurement's
//! ~1k compactions only churn the counter bits *below*
//! `CHURN_LEVELS`, so the two sizes genuinely sustain different retained
//! counts while seeing identical low-level churn. The acceptance ratios
//! and their CI thresholds (enforced by `bench_gate`) are recorded in
//! the JSON: ladder cost must stay roughly flat from the small to the
//! large size while beating the rebuild at the large size.
//!
//! Usage: `cargo run --release -p fcds-bench --bin quantiles_prop
//! [--out=DIR]` (writes `<out>/BENCH_quantiles_prop.json`, default the
//! working directory, like `prop_cost`).

use fcds_bench::gate::{QUANTILES_FLATNESS_MAX, QUANTILES_SPEEDUP_MIN};
use fcds_bench::report::HarnessArgs;
use fcds_core::sync::EpochCell;
use fcds_sketches::quantiles::QuantilesSketch;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0A17;
const K: usize = 128;
/// Updates per merge: the engine's default lazy buffer cap `b`.
const B: u64 = 16;
/// Merges per timing batch (the clock is read between batches only).
const BATCH: u64 = 64;
const MAX_MERGES: u64 = 16_384;
const BUDGET: Duration = Duration::from_millis(250);

/// Pre-occupied runs start at this level: the measurement performs at
/// most `(MAX_MERGES + warm-up)·B / 2k = 1032` compactions, which churn
/// counter bits 0..10 only, so every pre-occupied level stays frozen for
/// (almost) the whole window — one carry cascade may reach them at the
/// very end, which is the amortised cost a real stream pays too.
const CHURN_LEVELS: usize = 11;
/// Number of pre-occupied levels per warm size: retained starts at
/// `K · depth` and the sizes differ ~5× while the churn below is
/// identical.
const SMALL_DEPTH: usize = 4;
const LARGE_DEPTH: usize = 20;

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    /// Publish the persistent ladder snapshot (the post-PR path).
    Ladder,
    /// Publish a freshly rebuilt flat reader (the pre-PR path).
    Rebuild,
}

impl Strategy {
    fn label(self) -> &'static str {
        match self {
            Strategy::Ladder => "ladder",
            Strategy::Rebuild => "rebuild",
        }
    }
}

/// A sketch warmed to `depth` occupied levels above the churn band
/// (uniform sorted runs), equivalent to a stream of
/// `Σ K·2^(level+1)` items.
fn warm_sketch(depth: usize) -> QuantilesSketch<u64> {
    let mut rng = SplitMix(SEED);
    let prebuilt = (CHURN_LEVELS..CHURN_LEVELS + depth).map(|level| {
        let mut run: Vec<u64> = (0..K).map(|_| rng.next()).collect();
        run.sort_unstable();
        (level, run)
    });
    QuantilesSketch::with_prebuilt_levels(K, SEED, prebuilt).expect("valid k")
}

/// Times `merge(b updates) + publish` in steady state and returns
/// (ns per merge, merges measured, retained at the end of the run).
fn measure(depth: usize, strategy: Strategy) -> (f64, u64, usize) {
    let mut q = warm_sketch(depth);
    // Both strategies pay the same epoch-cell store; only the snapshot
    // construction differs.
    let ladder_cell = EpochCell::new(q.ladder());
    let rebuild_cell = EpochCell::new(q.reader());
    let mut rng = SplitMix(SEED ^ 0x5EED);
    let mut one_batch = |q: &mut QuantilesSketch<u64>| {
        for _ in 0..BATCH {
            for _ in 0..B {
                q.update(rng.next());
            }
            match strategy {
                Strategy::Ladder => ladder_cell.store(q.ladder()),
                Strategy::Rebuild => rebuild_cell.store(q.reader()),
            }
        }
    };
    // Warm-up: two batches reach steady state (first post-snapshot
    // copy-on-write of the base run behind us, allocator warm).
    one_batch(&mut q);
    one_batch(&mut q);

    let mut merges = 0u64;
    let start = Instant::now();
    while start.elapsed() < BUDGET && merges < MAX_MERGES {
        one_batch(&mut q);
        merges += BATCH;
    }
    let per_merge_ns = start.elapsed().as_nanos() as f64 / merges as f64;
    (per_merge_ns, merges, q.ladder().retained())
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let mut rows = String::new();
    let mut per_ns = std::collections::HashMap::new();
    for (i, depth) in [SMALL_DEPTH, LARGE_DEPTH].into_iter().enumerate() {
        for (j, strategy) in [Strategy::Ladder, Strategy::Rebuild]
            .into_iter()
            .enumerate()
        {
            let (ns, merges, retained_end) = measure(depth, strategy);
            let label = strategy.label();
            per_ns.insert((depth, label), ns);
            if i > 0 || j > 0 {
                rows.push_str(",\n");
            }
            let warm_n = warm_sketch(depth).n();
            let retained_warm = K * depth;
            let _ = write!(
                rows,
                "    {{\"k\": {K}, \"warm_levels\": {depth}, \"warm_n\": {warm_n}, \
                 \"retained_warm\": {retained_warm}, \"retained_end\": {retained_end}, \
                 \"strategy\": \"{label}\", \
                 \"per_merge_ns\": {ns:.1}, \"merges\": {merges}}}"
            );
            eprintln!(
                "depth={depth} strategy={label}: {ns:.0} ns/merge \
                 ({merges} merges, retained {retained_warm} warm → {retained_end} end)"
            );
        }
    }

    let ladder_small = per_ns[&(SMALL_DEPTH, "ladder")];
    let ladder_large = per_ns[&(LARGE_DEPTH, "ladder")];
    let rebuild_large = per_ns[&(LARGE_DEPTH, "rebuild")];
    // Retained-independence: ladder cost at the large size over the
    // small size (1.0 = perfectly flat).
    let flatness = ladder_large / ladder_small;
    // The headline win: rebuild over ladder at the large size.
    let speedup = rebuild_large / ladder_large;

    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-quantiles-prop-v1\",\n  \"cores\": {cores},\n  \
         \"k\": {K},\n  \"buffer_updates_per_merge\": {B},\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"ladder_vs_rebuild_speedup_large\": {speedup:.1},\n    \
         \"ladder_flatness_ratio\": {flatness:.2}\n  }},\n  \
         \"thresholds\": {{\n    \
         \"ladder_vs_rebuild_speedup_large_min\": {QUANTILES_SPEEDUP_MIN:.1},\n    \
         \"ladder_flatness_ratio_max\": {QUANTILES_FLATNESS_MAX:.1}\n  }}\n}}\n"
    );

    let path = format!("{}/BENCH_quantiles_prop.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_quantiles_prop.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
