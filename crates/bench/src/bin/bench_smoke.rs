//! CI perf smoke: a seconds-long measurement emitting machine-readable
//! `BENCH_smoke.json` so the throughput trajectory accumulates run over
//! run (absolute numbers are host-bound; the file records the host's
//! parallelism so trends are comparable like-for-like).
//!
//! Two numbers are tracked:
//! * `quickstart` — the README workload: multi-writer distinct counting
//!   through the default engine (K = 1, dedicated propagator);
//! * `shard_scaling` — update-only throughput for K ∈ {1, max} under both
//!   propagation backends.
//!
//! Usage: `cargo run --release -p fcds-bench --bin bench_smoke [--out=DIR]`
//! (writes `<out>/BENCH_smoke.json`, default `BENCH_smoke.json` in the
//! working directory).

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::report::HarnessArgs;
use fcds_core::PropagationBackendKind;
use std::fmt::Write as _;

fn throughput(impl_: ThetaImpl, uniques: u64, trials: u64) -> f64 {
    let total_nanos: u128 = (0..trials)
        .map(|n| drivers::time_write_only(impl_, 12, uniques, n).as_nanos())
        .sum();
    (trials * uniques) as f64 / (total_nanos as f64 / 1e9)
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let writers = cores.clamp(2, 8);
    let uniques: u64 = 1 << 20;
    let trials: u64 = 3;

    let quickstart = throughput(ThetaImpl::concurrent(writers), uniques, trials);

    let mut shard_rows = String::new();
    let shard_counts = if writers > 1 {
        vec![1, writers]
    } else {
        vec![1]
    };
    for (i, &k) in shard_counts.iter().enumerate() {
        for (j, (backend, name)) in [
            (PropagationBackendKind::DedicatedThread, "dedicated"),
            (PropagationBackendKind::WriterAssisted, "writer_assisted"),
        ]
        .into_iter()
        .enumerate()
        {
            let ups = throughput(ThetaImpl::sharded(writers, k, backend), uniques, trials);
            if i > 0 || j > 0 {
                shard_rows.push_str(",\n");
            }
            let _ = write!(
                shard_rows,
                "    {{\"shards\": {k}, \"backend\": \"{name}\", \"updates_per_sec\": {ups:.0}}}"
            );
        }
    }

    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-smoke-v1\",\n  \"cores\": {cores},\n  \
         \"writers\": {writers},\n  \"stream_uniques\": {uniques},\n  \
         \"trials\": {trials},\n  \"quickstart_updates_per_sec\": {quickstart:.0},\n  \
         \"shard_scaling\": [\n{shard_rows}\n  ]\n}}\n"
    );

    let path = format!("{}/BENCH_smoke.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_smoke.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
