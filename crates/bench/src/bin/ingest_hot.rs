//! Writer-side ingestion hot-path measurement emitting `BENCH_ingest.json`.
//!
//! Figure 1's scalability story rests on almost every update dying on the
//! writer thread once the Θ hint engages — which makes the *per-update
//! constant factor on the writer* the whole ballgame. This bench times
//! exactly that constant, single-writer so the numbers mean something on
//! the 1-CPU CI container:
//!
//! * `concurrent / scalar` — one [`ThetaWriter::update`] per item (phase
//!   latch + cached pre-filter switch, the PR's scalar micro-fix);
//! * `concurrent / batched` — [`ThetaWriter::update_batch`] in 256-item
//!   chunks: hashes unrolled 4-wide for ILP, survivors compacted
//!   branchlessly against one hoisted hint read per sub-chunk;
//! * both of the above with `disable_prefilter` (the ablation: every
//!   update rides the hand-off protocol), so the hint's contribution
//!   stays visible next to the batching win;
//! * `sequential / scalar` vs `sequential / batched` — the plain
//!   quick-select sketch via `update` and
//!   `hash_batch_with_seed` + `update_hashes`, the single-threaded
//!   baseline the ROADMAP records at ~69 M updates/s.
//!
//! The engine runs the writer-assisted backend so propagation work is
//! paid inside the measured writer loop for both paths instead of racing
//! a background thread for the single CPU. All concurrent rows are lazy
//! phase (`e = 1.0`), Θ saturated by a warm-up stream before timing.
//!
//! Acceptance (thresholds embedded in the JSON, enforced by
//! `bench_gate`): the scalar hint-on path ≥ 100 M updates/s (2.5× the
//! ~40 M/s recorded pre-PR baseline; ≈ 295 measured after this PR),
//! batched at parity or better with scalar on the hint-on rows, and
//! batched strictly ahead on the ship-everything ablation. The original
//! 1.25× batched-over-scalar target did not survive contact with
//! reality — the same PR removed the per-item overheads from the scalar
//! path too, parking *both* paths at the murmur3 multiply-throughput
//! wall (the OoO core already overlaps the independent per-item hash
//! chains) — so the gate pins the absolute scalar number instead and
//! keeps batched honest as a parity guard; see `fcds_bench::gate`.
//!
//! Usage: `cargo run --release -p fcds-bench --bin ingest_hot [--out=DIR]`
//! (writes `<out>/BENCH_ingest.json`, default the working directory).

use fcds_bench::gate::{
    INGEST_BATCHED_VS_SCALAR_MIN, INGEST_BATCHED_VS_SCALAR_SHIPALL_MIN, INGEST_SCALAR_HINT_MOPS_MIN,
};
use fcds_bench::report::HarnessArgs;
use fcds_core::theta::{ConcurrentThetaBuilder, ConcurrentThetaSketch, ThetaWriter};
use fcds_core::PropagationBackendKind;
use fcds_sketches::hash::hash_batch_with_seed;
use fcds_sketches::theta::{normalize_hash, QuickSelectThetaSketch};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 9001;
const LG_K: u8 = 12;
/// Items per timed pass (fresh distinct values every pass).
const PASS: usize = 1 << 18;
/// Items per `update_batch` call on the batched rows.
const CHUNK: usize = 256;
/// Distinct items fed before timing so Θ is saturated.
const WARMUP: u64 = 1 << 21;
const BUDGET: Duration = Duration::from_millis(250);

/// splitmix64 over a golden-gamma counter: a bijection on u64, so every
/// value it ever emits is distinct — exactly the §7.1 write-only stream.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill(&mut self, buf: &mut Vec<u64>, n: usize) {
        buf.clear();
        buf.extend(std::iter::repeat_with(|| self.next()).take(n));
    }
}

fn build(prefilter: bool) -> ConcurrentThetaSketch {
    ConcurrentThetaBuilder::new()
        .lg_k(LG_K)
        .seed(SEED)
        .writers(1)
        .max_concurrency_error(1.0) // lazy phase from the first update
        .backend(PropagationBackendKind::WriterAssisted)
        .disable_prefilter(!prefilter)
        .build()
        .expect("valid configuration")
}

/// Times alternating passes of the paired feeds over fresh distinct
/// items until the budget is spent (at least 9 passes each), reporting
/// each side's *median* pass throughput in M updates/s. The gate
/// divides these numbers, so the sides are interleaved pass-by-pass —
/// load drift on a shared container then hits both sides alike and
/// cancels in the ratio — and medians shrug off the outlier passes a
/// grand total would absorb.
fn measure_pair(
    rng: &mut SplitMix,
    mut feed_a: impl FnMut(&[u64]),
    mut feed_b: impl FnMut(&[u64]),
) -> (f64, f64, u64) {
    let mut items = Vec::with_capacity(PASS);
    // One untimed pass each absorbs cold caches and the first hand-offs.
    rng.fill(&mut items, PASS);
    feed_a(&items);
    rng.fill(&mut items, PASS);
    feed_b(&items);
    let mut secs_a: Vec<f64> = Vec::new();
    let mut secs_b: Vec<f64> = Vec::new();
    let mut total = 0u64;
    let mut spent = Duration::ZERO;
    while spent < BUDGET || secs_a.len() < 9 {
        rng.fill(&mut items, PASS);
        let start = Instant::now();
        feed_a(&items);
        let elapsed = start.elapsed();
        spent += elapsed;
        secs_a.push(elapsed.as_secs_f64());

        rng.fill(&mut items, PASS);
        let start = Instant::now();
        feed_b(&items);
        let elapsed = start.elapsed();
        spent += elapsed;
        secs_b.push(elapsed.as_secs_f64());
        total += 2 * PASS as u64;
    }
    let median = |secs: &mut Vec<f64>| {
        secs.sort_by(f64::total_cmp);
        PASS as f64 / secs[secs.len() / 2] / 1e6
    };
    (median(&mut secs_a), median(&mut secs_b), total)
}

fn warmed_writer(sketch: &ConcurrentThetaSketch, rng: &mut SplitMix) -> ThetaWriter {
    let mut w = sketch.writer();
    for _ in 0..WARMUP {
        w.update(rng.next());
    }
    w
}

fn main() {
    let args = HarnessArgs::parse_with_out_default(".");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut rng = SplitMix(SEED);
    let mut rows = String::new();
    let emit =
        |rows: &mut String, engine: &str, path: &str, prefilter: bool, mops: f64, items: u64| {
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"engine\": \"{engine}\", \"path\": \"{path}\", \
             \"prefilter\": {prefilter}, \"mops\": {mops:.1}, \"items\": {items}}}"
            );
            eprintln!("{engine:>10} / {path:<7} prefilter={prefilter}: {mops:.1} M updates/s");
        };

    // Concurrent single-writer rows: (scalar, batched) measured as an
    // interleaved pair, hint on and off.
    let mut results = std::collections::HashMap::new();
    for prefilter in [true, false] {
        let sketch_s = build(prefilter);
        let mut ws = warmed_writer(&sketch_s, &mut rng);
        let sketch_b = build(prefilter);
        let mut wb = warmed_writer(&sketch_b, &mut rng);
        let (scalar_mops, batched_mops, items) = measure_pair(
            &mut rng,
            |items| {
                for &v in items {
                    ws.update(v);
                }
            },
            |items| {
                for chunk in items.chunks(CHUNK) {
                    wb.update_batch(chunk);
                }
            },
        );
        results.insert(("scalar", prefilter), scalar_mops);
        results.insert(("batched", prefilter), batched_mops);
        emit(
            &mut rows,
            "concurrent",
            "scalar",
            prefilter,
            scalar_mops,
            items / 2,
        );
        emit(
            &mut rows,
            "concurrent",
            "batched",
            prefilter,
            batched_mops,
            items / 2,
        );
    }

    // Sequential baseline rows (no engine, no hand-off): the quick-select
    // sketch fed directly, scalar vs hash_batch + update_hashes.
    let mut seq_s = QuickSelectThetaSketch::new(LG_K, SEED).expect("valid lg_k");
    let mut seq_b = QuickSelectThetaSketch::new(LG_K, SEED).expect("valid lg_k");
    for _ in 0..WARMUP {
        let v = rng.next();
        seq_s.update(v);
        seq_b.update(v);
    }
    let (scalar_mops, batched_mops, items) = measure_pair(
        &mut rng,
        |items| {
            for &v in items {
                seq_s.update(v);
            }
        },
        |items| {
            let mut hashes = [0u64; CHUNK];
            for chunk in items.chunks(CHUNK) {
                hash_batch_with_seed(chunk, SEED, &mut hashes[..chunk.len()]);
                for h in &mut hashes[..chunk.len()] {
                    *h = normalize_hash(*h);
                }
                seq_b.update_hashes(&hashes[..chunk.len()]);
            }
        },
    );
    emit(
        &mut rows,
        "sequential",
        "scalar",
        true,
        scalar_mops,
        items / 2,
    );
    emit(
        &mut rows,
        "sequential",
        "batched",
        true,
        batched_mops,
        items / 2,
    );

    let scalar_hint = results[&("scalar", true)];
    let batched_hint = results[&("batched", true)];
    let speedup = batched_hint / scalar_hint;
    let shipall_speedup = results[&("batched", false)] / results[&("scalar", false)];

    let json = format!(
        "{{\n  \"schema\": \"fcds-bench-ingest-v1\",\n  \"cores\": {cores},\n  \
         \"writers\": 1,\n  \"lg_k\": {LG_K},\n  \"chunk\": {CHUNK},\n  \
         \"backend\": \"writer_assisted\",\n  \"rows\": [\n{rows}\n  ],\n  \
         \"acceptance\": {{\n    \
         \"batched_vs_scalar_hint_speedup\": {speedup:.2},\n    \
         \"batched_vs_scalar_shipall_speedup\": {shipall_speedup:.2},\n    \
         \"scalar_hint_mops\": {scalar_hint:.1}\n  }},\n  \
         \"thresholds\": {{\n    \
         \"batched_vs_scalar_hint_speedup_min\": {INGEST_BATCHED_VS_SCALAR_MIN:.2},\n    \
         \"batched_vs_scalar_shipall_speedup_min\": {INGEST_BATCHED_VS_SCALAR_SHIPALL_MIN:.2},\n    \
         \"scalar_hint_mops_min\": {INGEST_SCALAR_HINT_MOPS_MIN:.1}\n  }}\n}}\n"
    );

    let path = format!("{}/BENCH_ingest.json", args.out_dir);
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    std::fs::write(&path, &json).expect("write BENCH_ingest.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
