//! Figure 8: throughput speed-up of eager (`e = 0.04`) over no-eager
//! (`e = 1.0`) propagation on small streams, `k = 4096`, single writer.
//!
//! Expected shape (§7.3): a large speed-up for tiny streams (the paper
//! reports up to 84×: eager updates go straight to the global sketch
//! instead of round-tripping through the propagator per b-item buffer),
//! decreasing as the sketch grows, and dipping below 1 just past the
//! eager limit where the eager configuration's smaller lazy buffer
//! (b = 5-ish vs b = 16) costs throughput.
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure8 [--full]`

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::report::{HarnessArgs, Table};
use fcds_bench::workload;

fn main() {
    let args = HarnessArgs::parse();
    let lg_k = 12;
    let sizes = workload::size_ladder(4, if args.full { 18 } else { 15 }, true);
    let budget: u64 = if args.full { 1 << 22 } else { 1 << 19 };

    println!("Figure 8: eager (e=0.04) vs no-eager (e=1.0) speed-up, k = 4096, 1 writer\n");
    let mut table = Table::new(&["uniques", "eager (ns/u)", "no-eager (ns/u)", "speedup"]);
    for &n in &sizes {
        let trials = workload::trials_for_size(n, budget, 2048);
        let mean_ns = |impl_: ThetaImpl| -> f64 {
            let _ = drivers::time_write_only(impl_, lg_k, n, u64::MAX); // warm-up
            let total: u128 = (0..trials)
                .map(|t| drivers::time_write_only(impl_, lg_k, n, t).as_nanos())
                .sum();
            total as f64 / (trials * n) as f64
        };
        let eager = mean_ns(ThetaImpl::Concurrent {
            writers: 1,
            e: 0.04,
            max_b: None,
        });
        let no_eager = mean_ns(ThetaImpl::Concurrent {
            writers: 1,
            e: 1.0,
            max_b: None,
        });
        table.row(&[
            n.to_string(),
            format!("{eager:.1}"),
            format!("{no_eager:.1}"),
            format!("{:.2}x", no_eager / eager),
        ]);
    }
    println!("{}", table.render());
    let path = format!("{}/figure8.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("\nexpected: speed-up ≫ 1 for tiny streams, decaying toward (and possibly");
    println!("below) 1 once the stream exceeds the eager limit 2/e² = 1250 and 2k.");
}
