//! Table 1: error analysis of the relaxed Θ sketch — closed forms and
//! Monte-Carlo numerics for the sequential sketch, the strong adversary
//! `A_s`, and the weak adversary `A_w` (`r = 8`, `k = 2¹⁰`, `n = 2¹⁵`).
//!
//! Usage: `cargo run --release -p fcds-bench --bin table1 [--full]`

use fcds_bench::report::{pct, HarnessArgs, Table};
use fcds_relaxation::adversary::{simulate, AdversaryParams};
use fcds_relaxation::orderstats;

fn main() {
    let args = HarnessArgs::parse();
    let trials = if args.full { 100_000 } else { 20_000 };
    let params = AdversaryParams::table1();
    let (n, k, r) = (params.n, params.k as u64, params.r as u64);

    println!(
        "Table 1: Θ sketch error under relaxation (r = {r}, k = 2^10 = {k}, n = 2^15 = {n}); {trials} trials\n"
    );
    let res = simulate(params, trials, 0xFCD5);

    let mut t = Table::new(&["quantity", "sequential", "strong A_s", "weak A_w"]);
    t.row(&[
        "closed-form E".into(),
        format!("{n} (unbiased)"),
        "-".into(),
        format!(
            "{:.0}  (n(k-1)/(k+r-1))",
            orderstats::expected_estimate(n, k, r)
        ),
    ]);
    t.row(&[
        "measured E".into(),
        format!("{:.0}", res.sequential.mean),
        format!("{:.0}", res.strong.mean),
        format!("{:.0}", res.weak.mean),
    ]);
    t.row(&[
        "measured E / n".into(),
        format!("{:.4}", res.sequential.mean / n as f64),
        format!("{:.4}", res.strong.mean / n as f64),
        format!("{:.4}", res.weak.mean / n as f64),
    ]);
    t.row(&[
        "closed-form RSE bound".into(),
        pct(1.0 / ((k as f64) - 2.0).sqrt()),
        "-".into(),
        pct(orderstats::weak_adversary_rse_bound(k as usize, r as usize)),
    ]);
    t.row(&[
        "measured RSE".into(),
        pct(res.sequential.rse),
        pct(res.strong.rse),
        pct(res.weak.rse),
    ]);
    t.row(&[
        "exact RSE (order stats)".into(),
        pct(orderstats::rse_estimate(n, k, 0)),
        "-".into(),
        pct(orderstats::rse_estimate(n, k, r)),
    ]);
    println!("{}", t.render());
    let path = format!("{}/table1.csv", args.out_dir);
    t.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("\npaper's numerics: sequential RSE ≤ 3.1%, strong ≤ 3.8%,");
    println!("strong expectation ≈ 2^15 · 0.995; weak E = n(k−1)/(k+r−1), RSE ≤ 2/√(k−2) = 6.3%.");
}
