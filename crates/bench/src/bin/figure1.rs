//! Figure 1: scalability of the concurrent Θ sketch vs the lock-based
//! baseline on an update-only workload (`k = 4096`, `b = 1`).
//!
//! The paper (32-core Xeon): the lock-based sketch degrades with thread
//! count while the concurrent sketch scales almost perfectly. Expect the
//! same shape, scaled to this host's core count.
//!
//! Usage: `cargo run --release -p fcds-bench --bin figure1 [--full] [--out=DIR]`

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::report::{mops, HarnessArgs, Table};

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let uniques: u64 = if args.full { 1 << 23 } else { 1 << 21 };
    let trials: u64 = if args.full { 16 } else { 4 };
    let lg_k = 12;

    let mut threads: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24, 32];
    threads.retain(|&t| t <= cores);

    println!("Figure 1: update-only scalability, k = 4096, b = 1, stream = {uniques} uniques");
    println!("host parallelism: {cores} logical cores; trials per point: {trials}\n");

    let mut table = Table::new(&[
        "threads",
        "concurrent (Mops/s)",
        "lock-based (Mops/s)",
        "ratio",
    ]);
    for &t in &threads {
        let run = |impl_: ThetaImpl| -> f64 {
            let total_nanos: u128 = (0..trials)
                .map(|n| drivers::time_write_only(impl_, lg_k, uniques, n).as_nanos())
                .sum();
            let ns_per_update = total_nanos as f64 / (trials * uniques) as f64;
            1e3 / ns_per_update // million updates per second
        };
        let conc = run(ThetaImpl::concurrent_b1(t));
        let lock = run(ThetaImpl::LockBased { threads: t });
        table.row(&[
            t.to_string(),
            mops(conc),
            mops(lock),
            format!("{:.1}x", conc / lock),
        ]);
    }
    println!("{}", table.render());
    let path = format!("{}/figure1.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("expected shape: concurrent column grows ~linearly with threads;");
    println!("lock-based column flat or degrading (paper: 12x–45x gap at 12 threads).");
}
