//! Figure 5: accuracy "pitchforks" of the concurrent Θ sketch, without
//! eager propagation (5a, `e = 1.0`) and with it (5b, `e = 0.04`);
//! `k = 4096`, single writer, query taken right after the last update
//! without flushing.
//!
//! Expected shapes (§7.2): without eager propagation small streams are
//! grossly under-estimated (the paper reports mean error up to −94%,
//! capped at −10% in its plot) because everything sits in unpropagated
//! buffers; with eager propagation the error stays within ±e, and in both
//! cases the pitchfork converges to the sequential sketch's ±1/√k
//! envelope for large streams, distorted toward under-estimation.
//!
//! Usage:
//! `cargo run --release -p fcds-bench --bin figure5 [--full] [--eager=true|false|both]`

use fcds_bench::profiles::AccuracyProfile;
use fcds_bench::report::{pct, HarnessArgs, Table};

fn run_profile(args: &HarnessArgs, e: f64, label: &str) {
    let lg_k = 12;
    let profile = if args.full {
        AccuracyProfile::full(lg_k, e)
    } else {
        AccuracyProfile::quick(lg_k, e)
    };
    println!(
        "\nFigure 5{label}: accuracy pitchfork, k = 4096, e = {e}, {} trials/point",
        profile.trials
    );
    let points = profile.run();
    let mut table = Table::new(&["uniques", "mean", "q01", "q25", "median", "q75", "q99"]);
    for p in &points {
        table.row(&[
            p.uniques.to_string(),
            pct(p.mean),
            pct(p.quantile(0.01)),
            pct(p.quantile(0.25)),
            pct(p.quantile(0.5)),
            pct(p.quantile(0.75)),
            pct(p.quantile(0.99)),
        ]);
    }
    println!("{}", table.render());
    let suffix = if e >= 1.0 { "a_noeager" } else { "b_eager" };
    let path = format!("{}/figure5{}.csv", args.out_dir, suffix);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
}

fn main() {
    let args = HarnessArgs::parse();
    match args.get("eager").unwrap_or("both") {
        "false" => run_profile(&args, 1.0, "a (no eager)"),
        "true" => run_profile(&args, 0.04, "b (eager)"),
        _ => {
            run_profile(&args, 1.0, "a (no eager)");
            run_profile(&args, 0.04, "b (eager)");
        }
    }
    println!("\nexpected: 5a shows strong under-estimation (negative mean) for small streams;");
    println!(
        "5b keeps the error within ±4%; both converge to the ±1/√k pitchfork for large streams."
    );
}
