//! Shard scaling: update-only throughput of the sharded engine as the
//! shard count K grows, for both propagation backends, against the K = 1
//! single-propagator baseline the paper's §7 evaluates.
//!
//! §7 of Rinberg et al. shows propagation through one thread `t0`
//! eventually bottlenecks as writers multiply; sharding multiplies the
//! propagation lanes without changing the `r = 2Nb` relaxation. Expect
//! the dedicated-thread column to grow with K (until propagators run out
//! of cores) and the writer-assisted column to trade a little peak
//! throughput for zero background threads. On a 1-CPU host all shapes
//! flatten — re-measure on real hardware before drawing conclusions.
//!
//! Usage: `cargo run --release -p fcds-bench --bin shard_scaling [--full] [--out=DIR]`

use fcds_bench::drivers::{self, ThetaImpl};
use fcds_bench::report::{mops, HarnessArgs, Table};
use fcds_core::PropagationBackendKind;

fn main() {
    let args = HarnessArgs::parse();
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let writers = cores.max(2);
    let uniques: u64 = if args.full { 1 << 23 } else { 1 << 21 };
    let trials: u64 = if args.full { 16 } else { 4 };
    let lg_k = 12;

    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8, 16];
    shard_counts.retain(|&k| k <= writers);

    println!(
        "Shard scaling: k = 4096, {writers} writers, stream = {uniques} uniques, \
         {trials} trials per point"
    );
    println!("host parallelism: {cores} logical cores\n");

    let mut table = Table::new(&[
        "shards",
        "dedicated (Mops/s)",
        "writer-assisted (Mops/s)",
        "dedicated vs K=1",
    ]);
    let mut baseline = 0.0f64;
    for &k in &shard_counts {
        let run = |backend: PropagationBackendKind| -> f64 {
            let impl_ = ThetaImpl::sharded(writers, k, backend);
            let total_nanos: u128 = (0..trials)
                .map(|n| drivers::time_write_only(impl_, lg_k, uniques, n).as_nanos())
                .sum();
            let ns_per_update = total_nanos as f64 / (trials * uniques) as f64;
            1e3 / ns_per_update // million updates per second
        };
        let dedicated = run(PropagationBackendKind::DedicatedThread);
        let assisted = run(PropagationBackendKind::WriterAssisted);
        if k == 1 {
            baseline = dedicated;
        }
        table.row(&[
            k.to_string(),
            mops(dedicated),
            mops(assisted),
            format!("{:.2}x", dedicated / baseline),
        ]);
    }
    println!("{}", table.render());
    let path = format!("{}/shard_scaling.csv", args.out_dir);
    table.write_csv(&path).expect("write csv");
    println!("wrote {path}");
    println!("expected shape (multi-core): dedicated column grows with K while");
    println!("propagation is the bottleneck, then flattens; writer-assisted tracks");
    println!("it within a constant factor with zero background threads.");
}
