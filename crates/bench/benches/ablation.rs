//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **hint pre-filter** (`shouldAdd`, §5.1) — on vs off. The paper
//!   credits the filter for the near-perfect scalability of Figure 1;
//!   disabling it forces every update through the hand-off protocol.
//! * **double buffering** (`OptParSketch` vs `ParSketch`, §5.2) — the
//!   gray lines of Algorithm 2. Without it the update thread idles while
//!   the propagator merges.
//! * **eager phase** (§5.3) — covered by `eager_speedup.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcds_core::theta::ConcurrentThetaBuilder;
use std::time::{Duration, Instant};

const LG_K: u8 = 12;
const UNIQUES: u64 = 1 << 19;

fn run(writers: usize, prefilter: bool, double_buffering: bool, nonce: u64) -> Duration {
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(LG_K)
        .seed(9001)
        .writers(writers)
        .max_concurrency_error(1.0)
        .double_buffering(double_buffering)
        .disable_prefilter(!prefilter)
        .build()
        .unwrap();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..writers as u64 {
            let mut w = sketch.writer();
            let base = nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let per = UNIQUES / writers as u64;
            s.spawn(move || {
                for i in 0..per {
                    w.update(base.wrapping_add(t * per + i));
                }
            });
        }
    });
    start.elapsed()
}

fn bench_prefilter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prefilter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(UNIQUES));
    for writers in [1usize, 4] {
        for (label, prefilter) in [("with-shouldAdd", true), ("no-shouldAdd", false)] {
            group.bench_with_input(BenchmarkId::new(label, writers), &writers, |b, &writers| {
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    run(writers, prefilter, true, nonce)
                });
            });
        }
    }
    group.finish();
}

fn bench_double_buffering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_double_buffering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(UNIQUES));
    for writers in [1usize, 4] {
        for (label, db) in [("optparsketch", true), ("parsketch", false)] {
            group.bench_with_input(BenchmarkId::new(label, writers), &writers, |b, &writers| {
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    run(writers, true, db, nonce)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prefilter, bench_double_buffering);
criterion_main!(benches);
