//! Criterion bench: Figure 8 — eager (e = 0.04) vs no-eager (e = 1.0)
//! propagation on small streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcds_bench::drivers::{self, ThetaImpl};
use std::time::Duration;

const LG_K: u8 = 12;

fn bench_eager_vs_noeager(c: &mut Criterion) {
    let mut group = c.benchmark_group("eager_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &uniques in &[64u64, 512, 1024, 4096, 16_384] {
        group.throughput(Throughput::Elements(uniques));
        for (label, e) in [("eager", 0.04), ("no-eager", 1.0)] {
            group.bench_with_input(BenchmarkId::new(label, uniques), &uniques, |b, &uniques| {
                let impl_ = ThetaImpl::Concurrent {
                    writers: 1,
                    e,
                    max_b: None,
                };
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    drivers::time_write_only(impl_, LG_K, uniques, nonce)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_eager_vs_noeager);
criterion_main!(benches);
