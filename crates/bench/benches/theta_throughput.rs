//! Criterion bench: write-only Θ throughput (Figures 1 and 6 in micro
//! form) — concurrent sketch at several writer counts vs the lock-based
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcds_bench::drivers::{self, ThetaImpl};
use std::time::Duration;

const LG_K: u8 = 12;
const UNIQUES: u64 = 1 << 19;

fn bench_write_only(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let mut group = c.benchmark_group("write_only");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(UNIQUES));

    let mut configs: Vec<ThetaImpl> = vec![ThetaImpl::concurrent(1)];
    for w in [2usize, 4, 8] {
        if w <= cores {
            configs.push(ThetaImpl::concurrent(w));
        }
    }
    configs.push(ThetaImpl::LockBased { threads: 1 });
    if cores >= 4 {
        configs.push(ThetaImpl::LockBased { threads: 4 });
    }

    for impl_ in configs {
        group.bench_with_input(
            BenchmarkId::from_parameter(impl_.label()),
            &impl_,
            |b, &impl_| {
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    drivers::time_write_only(impl_, LG_K, UNIQUES, nonce)
                });
            },
        );
    }
    group.finish();
}

fn bench_scalability_b1(c: &mut Criterion) {
    // Figure 1's configuration: b = 1.
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    let mut group = c.benchmark_group("scalability_b1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(UNIQUES));
    for w in [1usize, 2, 4, 8] {
        if w > cores {
            break;
        }
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                drivers::time_write_only(ThetaImpl::concurrent_b1(w), LG_K, UNIQUES, nonce)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_write_only, bench_scalability_b1);
criterion_main!(benches);
