//! Criterion bench: raw update cost of the sequential substrate sketches
//! (the "extremely fast, tens of millions of updates per second" baseline
//! the paper's introduction describes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fcds_sketches::hash::murmur3_64;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::quantiles::QuantilesSketch;
use fcds_sketches::theta::{KmvThetaSketch, QuickSelectThetaSketch, ThetaRead};
use std::time::Duration;

const N: u64 = 1 << 18;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_update");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(N));

    group.bench_function("murmur3_64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc ^= murmur3_64(&i.to_le_bytes(), 9001);
            }
            acc
        })
    });

    group.bench_function("theta_quickselect", |b| {
        b.iter(|| {
            let mut s = QuickSelectThetaSketch::new(12, 9001).unwrap();
            for i in 0..N {
                s.update(i);
            }
            s.estimate()
        })
    });

    group.bench_function("theta_kmv", |b| {
        b.iter(|| {
            let mut s = KmvThetaSketch::new(4096, 9001).unwrap();
            for i in 0..N {
                s.update(i);
            }
            s.estimate()
        })
    });

    group.bench_function("hll", |b| {
        b.iter(|| {
            let mut s = HllSketch::new(12, 9001).unwrap();
            for i in 0..N {
                s.update(i);
            }
            s.estimate()
        })
    });

    group.bench_function("quantiles_k128", |b| {
        b.iter(|| {
            let mut s = QuantilesSketch::<u64>::with_seed(128, 1).unwrap();
            for i in 0..N {
                s.update(i);
            }
            s.quantile(0.5)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
