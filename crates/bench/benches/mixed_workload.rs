//! Criterion bench: the Figure 7 mixed read/write workload — writers with
//! 10 background readers pausing 1 ms between queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcds_bench::drivers::{self, ThetaImpl};
use std::time::Duration;

const LG_K: u8 = 12;
const UNIQUES: u64 = 1 << 19;
const READERS: usize = 10;

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_workload");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(UNIQUES));

    for impl_ in [
        ThetaImpl::concurrent(1),
        ThetaImpl::concurrent(2),
        ThetaImpl::LockBased { threads: 1 },
        ThetaImpl::LockBased { threads: 2 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(impl_.label()),
            &impl_,
            |b, &impl_| {
                let mut nonce = 0u64;
                b.iter(|| {
                    nonce += 1;
                    drivers::time_mixed(
                        impl_,
                        LG_K,
                        UNIQUES,
                        READERS,
                        Duration::from_millis(1),
                        nonce,
                    )
                    .write_duration
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
