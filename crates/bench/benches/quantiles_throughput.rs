//! Criterion bench: concurrent Quantiles sketch ingestion vs the
//! lock-based baseline (the paper analyses Quantiles error only; this
//! bench documents the throughput profile of our instantiation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcds_core::lock_based::LockBasedQuantiles;
use fcds_core::quantiles::ConcurrentQuantilesBuilder;
use fcds_sketches::oracle::DeterministicOracle;
use std::time::{Duration, Instant};

const K: usize = 128;
const ITEMS: u64 = 1 << 17;

fn feed_concurrent(writers: usize, nonce: u64) -> Duration {
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(K)
        .writers(writers)
        .oracle_seed(nonce)
        .build::<u64>()
        .unwrap();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..writers as u64 {
            let mut w = sketch.writer();
            let writers = writers as u64;
            s.spawn(move || {
                for i in 0..ITEMS / writers {
                    w.update(i * writers + t);
                }
            });
        }
    });
    start.elapsed()
}

fn feed_lock_based(threads: usize, nonce: u64) -> Duration {
    let sketch = LockBasedQuantiles::new(K, DeterministicOracle::new(nonce)).unwrap();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let sketch = &sketch;
            let threads = threads as u64;
            s.spawn(move || {
                for i in 0..ITEMS / threads {
                    sketch.update(i * threads + t);
                }
            });
        }
    });
    start.elapsed()
}

fn bench_quantiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantiles_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(ITEMS));

    for w in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("concurrent", w), &w, |b, &w| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                feed_concurrent(w, nonce)
            });
        });
        group.bench_with_input(BenchmarkId::new("lock-based", w), &w, |b, &w| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                feed_lock_based(w, nonce)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantiles);
criterion_main!(benches);
