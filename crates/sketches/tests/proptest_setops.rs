//! Property tests: the Θ set-operation algebra on arbitrary interval
//! streams (where ground truth is computable in closed form).

use fcds_sketches::theta::{
    jaccard, QuickSelectThetaSketch, ThetaANotB, ThetaIntersection, ThetaRead, ThetaUnion,
};
use proptest::prelude::*;

fn filled(lg_k: u8, seed: u64, lo: u64, len: u64) -> QuickSelectThetaSketch {
    let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
    for i in lo..lo + len {
        s.update(i);
    }
    s
}

fn overlap(a0: u64, a1: u64, b0: u64, b1: u64) -> u64 {
    a1.min(b1).saturating_sub(a0.max(b0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Union is commutative up to estimator noise, and its estimate
    /// tracks the true union cardinality.
    #[test]
    fn union_commutative_and_accurate(
        a0 in 0u64..30_000, alen in 1_000u64..60_000,
        b0 in 0u64..30_000, blen in 1_000u64..60_000,
    ) {
        let seed = 5;
        let a = filled(10, seed, a0, alen);
        let b = filled(10, seed, b0, blen);
        let run = |x: &QuickSelectThetaSketch, y: &QuickSelectThetaSketch| {
            let mut u = ThetaUnion::new(10, seed).unwrap();
            u.update(x).unwrap();
            u.update(y).unwrap();
            u.result().estimate()
        };
        let (e1, e2) = (run(&a, &b), run(&b, &a));
        let truth = (alen + blen - overlap(a0, a0 + alen, b0, b0 + blen)) as f64;
        prop_assert!((e1 - truth).abs() / truth < 0.2, "union {e1} vs {truth}");
        prop_assert!((e1 - e2).abs() / truth < 0.2, "not commutative: {e1} vs {e2}");
    }

    /// Intersection estimate tracks the true overlap (when the overlap is
    /// large enough to be sampled meaningfully).
    #[test]
    fn intersection_accurate_on_large_overlaps(
        a0 in 0u64..10_000, alen in 40_000u64..80_000,
        shift in 0u64..20_000,
    ) {
        let seed = 7;
        let b0 = a0 + shift;
        let blen = alen;
        let a = filled(11, seed, a0, alen);
        let b = filled(11, seed, b0, blen);
        let mut ix = ThetaIntersection::new(seed);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        let est = ix.result().unwrap().estimate();
        let truth = overlap(a0, a0 + alen, b0, b0 + blen) as f64;
        prop_assert!(truth > 0.0);
        prop_assert!((est - truth).abs() / truth < 0.25, "intersection {est} vs {truth}");
    }

    /// A = (A∩B) ⊎ (A\B): the estimates must add up.
    #[test]
    fn partition_identity(
        a0 in 0u64..10_000, alen in 20_000u64..60_000,
        b0 in 0u64..40_000, blen in 20_000u64..60_000,
    ) {
        let seed = 9;
        let a = filled(11, seed, a0, alen);
        let b = filled(11, seed, b0, blen);
        let mut ix = ThetaIntersection::new(seed);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        let inter = ix.result().unwrap().estimate();
        let diff = ThetaANotB::new().compute(&a, &b).unwrap().estimate();
        let total = inter + diff;
        let rel = (total - alen as f64).abs() / alen as f64;
        prop_assert!(rel < 0.25, "|A∩B| + |A\\B| = {total} vs |A| = {alen}");
    }

    /// Jaccard estimate tracks the interval ground truth.
    #[test]
    fn jaccard_tracks_truth(
        a0 in 0u64..10_000, alen in 30_000u64..60_000,
        shift in 0u64..60_000,
    ) {
        let seed = 11;
        let a = filled(11, seed, a0, alen);
        let b = filled(11, seed, a0 + shift, alen);
        let j = jaccard(&a, &b).unwrap();
        let inter = overlap(a0, a0 + alen, a0 + shift, a0 + shift + alen) as f64;
        let union = 2.0 * alen as f64 - inter;
        let truth = inter / union;
        prop_assert!((j.estimate - truth).abs() < 0.08,
            "jaccard {} vs truth {truth}", j.estimate);
        prop_assert!(j.lower_bound <= j.upper_bound);
    }

    /// Unions of many small sketches equal one big sketch, in estimate.
    #[test]
    fn union_is_associative_in_estimate(
        pieces in 2usize..8,
        per in 5_000u64..20_000,
    ) {
        let seed = 13;
        let mut u = ThetaUnion::new(10, seed).unwrap();
        for p in 0..pieces as u64 {
            let s = filled(10, seed, p * per, per);
            u.update(&s).unwrap();
        }
        let truth = (pieces as u64 * per) as f64;
        let est = u.result().estimate();
        prop_assert!((est - truth).abs() / truth < 0.2, "union {est} vs {truth}");
    }
}
