//! Property tests: every wire format round-trips arbitrary sketch states
//! bit-exactly, and rejects random corruption without panicking.

use fcds_sketches::hll::HllSketch;
use fcds_sketches::oracle::DeterministicOracle;
use fcds_sketches::quantiles::QuantilesSketch;
use fcds_sketches::theta::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compact_theta_round_trips(
        n in 0u64..50_000,
        lg_k in 4u8..10,
        seed in 0u64..1_000,
    ) {
        let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let c = s.compact();
        let back = CompactThetaSketch::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn hll_round_trips(
        n in 0u64..30_000,
        lg_m in 4u8..12,
        seed in 0u64..1_000,
    ) {
        let mut h = HllSketch::new(lg_m, seed).unwrap();
        for i in 0..n {
            h.update(i);
        }
        let back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn quantiles_round_trips(
        n in 0u64..20_000,
        k in 2usize..128,
        seed in 0u64..1_000,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(k, seed).unwrap();
        for i in 0..n {
            q.update(i.wrapping_mul(0x9E37_79B9) % 10_000);
        }
        let bytes = q.to_bytes();
        let back = QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0)).unwrap();
        prop_assert_eq!(back.n(), q.n());
        prop_assert!(back.check_weight_invariant());
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(back.quantile(phi), q.quantile(phi));
        }
    }

    /// Random single-byte corruption either fails decoding or decodes to
    /// a structurally valid sketch — never panics.
    #[test]
    fn corrupted_theta_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut s = QuickSelectThetaSketch::new(5, 1).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let mut bytes = s.compact().to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match CompactThetaSketch::from_bytes(&bytes) {
            Err(_) => {}
            Ok(c) => {
                // If it decodes, its invariants must hold.
                let hashes = c.sorted_hashes();
                prop_assert!(hashes.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(hashes.iter().all(|&h| h < c.theta()));
            }
        }
    }

    #[test]
    fn corrupted_quantiles_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
        for i in 0..n {
            q.update(i);
        }
        let mut bytes = q.to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0)) {
            Err(_) => {}
            Ok(back) => {
                prop_assert!(back.check_weight_invariant());
            }
        }
    }

    #[test]
    fn corrupted_hll_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut h = HllSketch::new(6, 1).unwrap();
        for i in 0..n {
            h.update(i);
        }
        let mut bytes = h.to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = HllSketch::from_bytes(&bytes); // must not panic
    }
}
