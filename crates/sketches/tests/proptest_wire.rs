//! Property tests: every wire format round-trips arbitrary sketch states
//! bit-exactly, and rejects random corruption without panicking.
//!
//! Beyond the randomised properties, this file carries the exhaustive
//! robustness suite for the unified envelope: truncation at *every* byte
//! boundary, single-byte mutation at *every* offset, and a hostile-header
//! matrix asserting each corruption class maps to its intended
//! [`WireError`] variant. No input may panic or trigger a large
//! allocation before validation.

use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::oracle::DeterministicOracle;
use fcds_sketches::quantiles::{QuantilesLadder, QuantilesSketch};
use fcds_sketches::theta::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
use fcds_sketches::wire::{peek, WireDecode, WireEncode, WireHeader, WIRE_HEADER_LEN};
use fcds_sketches::WireError;
use proptest::prelude::*;

/// One smallish valid image per family/form, reused by the exhaustive
/// suites below. Kept deliberately small so every-offset loops stay fast.
fn sample_images() -> Vec<(&'static str, Vec<u8>)> {
    let mut theta = QuickSelectThetaSketch::new(4, 1).unwrap();
    let mut hll = HllSketch::new(4, 1).unwrap();
    let mut quant = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
    let mut mg = MisraGriesSketch::<u64>::new(8).unwrap();
    for i in 0..500u64 {
        theta.update(i);
        hll.update(i);
        quant.update(i);
        mg.update(i % 20);
    }
    vec![
        ("theta", theta.compact().to_wire_bytes().to_vec()),
        ("hll", hll.to_wire_bytes().to_vec()),
        ("quantiles_ladder", quant.ladder().to_wire_bytes().to_vec()),
        ("quantiles_updatable", quant.to_bytes().to_vec()),
        ("mg", mg.to_wire_bytes().to_vec()),
    ]
}

/// Decode `bytes` through every public decoder. The point is that none
/// of them may panic; each either errors or yields a valid sketch.
fn decode_all(bytes: &[u8]) {
    let _ = CompactThetaSketch::from_wire_bytes(bytes);
    let _ = HllSketch::from_wire_bytes(bytes);
    let _ = QuantilesLadder::<u64>::from_wire_bytes(bytes);
    let _ = QuantilesSketch::<u64>::from_bytes(bytes, DeterministicOracle::new(0));
    let _ = MisraGriesSketch::<u64>::from_wire_bytes(bytes);
}

/// Truncation at every byte boundary must be rejected by every decoder:
/// the envelope's exact-length rule means no strict prefix is valid.
#[test]
fn truncation_at_every_byte_boundary_is_rejected() {
    for (name, bytes) in sample_images() {
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            decode_all(prefix); // must not panic
            assert!(
                WireHeader::parse(prefix).is_err(),
                "{name}: truncation to {cut}/{} bytes parsed as a full image",
                bytes.len()
            );
        }
    }
}

/// Trailing garbage must be rejected too — the exact-length rule cuts
/// both ways, so decoders can never silently ignore appended bytes.
#[test]
fn trailing_bytes_are_rejected() {
    for (name, bytes) in sample_images() {
        for extra in [1usize, 8, 1024] {
            let mut padded = bytes.clone();
            padded.extend(std::iter::repeat_n(0xAB, extra));
            let err = WireHeader::parse(&padded).expect_err(name);
            assert!(
                matches!(err, WireError::PayloadLength { .. }),
                "{name}: +{extra} trailing bytes gave {err:?}, expected PayloadLength"
            );
        }
    }
}

/// Single-byte mutation at every offset, with both a bit-dense (0xFF)
/// and bit-sparse (0x01) XOR mask: decoders must never panic, and a
/// mutation that still decodes must yield a structurally valid sketch.
#[test]
fn single_byte_mutation_at_every_offset_never_panics() {
    for (name, bytes) in sample_images() {
        for offset in 0..bytes.len() {
            for mask in [0xFFu8, 0x01] {
                let mut mutated = bytes.clone();
                mutated[offset] ^= mask;
                decode_all(&mutated);
                if let Ok(c) = CompactThetaSketch::from_wire_bytes(&mutated) {
                    let hashes = c.sorted_hashes();
                    assert!(
                        hashes.windows(2).all(|w| w[0] < w[1])
                            && hashes.iter().all(|&h| h < c.theta()),
                        "{name}: mutation at {offset}^{mask:#x} decoded to an invalid theta image"
                    );
                }
                if let Ok(q) =
                    QuantilesSketch::<u64>::from_bytes(&mutated, DeterministicOracle::new(0))
                {
                    assert!(
                        q.check_weight_invariant(),
                        "{name}: mutation at {offset}^{mask:#x} broke the weight invariant"
                    );
                }
            }
        }
    }
}

/// The hostile-header matrix: each corruption class must map to its
/// intended [`WireError`] variant, for every family. [`peek`] reads only
/// the 16-byte header, so it must reject the header-level classes with
/// the *same* variants — it never verifies the declared payload length
/// against the input, but it does enforce the caller-supplied cap so a
/// frame reader can refuse absurd lengths before buffering anything.
#[test]
fn corruption_classes_map_to_intended_error_variants() {
    for (name, bytes) in sample_images() {
        // Wrong magic (any of the four magic bytes flipped).
        for i in 0..4 {
            let mut b = bytes.clone();
            b[i] ^= 0x20;
            let err = WireHeader::parse(&b).expect_err(name);
            assert!(
                matches!(err, WireError::BadMagic { .. }),
                "{name}: magic byte {i} flip gave {err:?}"
            );
            let perr = peek(&b, u64::MAX).expect_err(name);
            assert_eq!(err, perr, "{name}: peek disagrees on magic byte {i} flip");
        }

        // Unsupported version.
        for version in [0u8, 2, 0xFF] {
            let mut b = bytes.clone();
            b[4] = version;
            let err = WireHeader::parse(&b).expect_err(name);
            assert_eq!(
                err,
                WireError::UnsupportedVersion { found: version },
                "{name}: version {version}"
            );
            assert_eq!(
                peek(&b, u64::MAX),
                Err(err),
                "{name}: peek disagrees on version"
            );
        }

        // Unknown family code.
        for family in [0u8, 5, 0x7F, 0xFF] {
            let mut b = bytes.clone();
            b[5] = family;
            let err = WireHeader::parse(&b).expect_err(name);
            assert_eq!(
                err,
                WireError::UnknownFamily { found: family },
                "{name}: family {family}"
            );
            assert_eq!(
                peek(&b, u64::MAX),
                Err(err),
                "{name}: peek disagrees on family"
            );
        }

        // Absurd declared payload length: must error on the length
        // field alone — long before any allocation could happen. With a
        // generous cap `peek` still reports the declared length without
        // vouching for the bytes; with a realistic cap it rejects the
        // header outright, carrying the cap in the error's `have` field.
        for declared in [u64::MAX, u64::MAX / 2, bytes.len() as u64 * 1_000_000] {
            let mut b = bytes.clone();
            b[8..16].copy_from_slice(&declared.to_le_bytes());
            let err = WireHeader::parse(&b).expect_err(name);
            assert!(
                matches!(err, WireError::PayloadLength { .. }),
                "{name}: declared len {declared} gave {err:?}"
            );
            let peeked = peek(&b, u64::MAX).expect(name);
            assert_eq!(
                peeked.payload_len, declared,
                "{name}: uncapped peek must report the declared length verbatim"
            );
            let cap = 1u64 << 20;
            assert_eq!(
                peek(&b, cap),
                Err(WireError::PayloadLength {
                    declared,
                    have: cap
                }),
                "{name}: capped peek must refuse declared len {declared}"
            );
        }

        // A declared length exactly at the cap passes the pre-screen:
        // the cap bounds what the reader will buffer, not what is valid.
        {
            let mut b = bytes.clone();
            let declared = 4096u64;
            b[8..16].copy_from_slice(&declared.to_le_bytes());
            let peeked = peek(&b, declared).expect(name);
            assert_eq!(
                peeked.payload_len, declared,
                "{name}: declared == cap must be accepted"
            );
            assert!(
                peek(&b, declared - 1).is_err(),
                "{name}: declared just above cap must be refused"
            );
        }

        // Header shorter than the envelope itself.
        for cut in 0..WIRE_HEADER_LEN {
            let err = WireHeader::parse(&bytes[..cut]).expect_err(name);
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "{name}: {cut}-byte input gave {err:?}"
            );
            let perr = peek(&bytes[..cut], u64::MAX).expect_err(name);
            assert!(
                matches!(perr, WireError::Truncated { .. }),
                "{name}: peek on {cut}-byte input gave {perr:?}"
            );
        }

        // A bare 16-byte header prefix: the full parser demands the
        // exact payload, but `peek` classifies it happily — that is its
        // whole purpose (routing from the first bytes off the socket).
        let (header, _) = WireHeader::parse(&bytes).expect(name);
        let peeked = peek(&bytes[..WIRE_HEADER_LEN], u64::MAX).expect(name);
        assert_eq!(peeked.family, header.family, "{name}: peek family");
        assert_eq!(peeked.flags, header.flags, "{name}: peek flags");
        assert_eq!(
            peeked.payload_len,
            (bytes.len() - WIRE_HEADER_LEN) as u64,
            "{name}: peek payload_len"
        );
        if bytes.len() > WIRE_HEADER_LEN {
            assert!(
                WireHeader::parse(&bytes[..WIRE_HEADER_LEN]).is_err(),
                "{name}: full parse must still reject the bare prefix"
            );
        }
    }
}

/// Family dispatch: feeding a valid image of one family to another
/// family's decoder must fail with `FamilyMismatch`, never mis-decode.
#[test]
fn cross_family_decode_yields_family_mismatch() {
    let images = sample_images();
    let by_name = |n: &str| images.iter().find(|(m, _)| *m == n).unwrap().1.clone();
    let theta = by_name("theta");
    let hll = by_name("hll");

    let err = CompactThetaSketch::from_wire_bytes(&hll).unwrap_err();
    assert!(matches!(err, WireError::FamilyMismatch { .. }), "{err:?}");
    let err = HllSketch::from_wire_bytes(&theta).unwrap_err();
    assert!(matches!(err, WireError::FamilyMismatch { .. }), "{err:?}");
    let err = QuantilesLadder::<u64>::from_wire_bytes(&theta).unwrap_err();
    assert!(matches!(err, WireError::FamilyMismatch { .. }), "{err:?}");
    let err = MisraGriesSketch::<u64>::from_wire_bytes(&hll).unwrap_err();
    assert!(matches!(err, WireError::FamilyMismatch { .. }), "{err:?}");
}

/// An image whose *internal* count field is forged upward cannot pass
/// the exact-length rule, so no decoder pre-allocates from it. This
/// pins the pre-allocation guard: a 16-byte input claiming a huge
/// payload, and a valid-length payload claiming a huge element count,
/// both fail fast.
#[test]
fn forged_count_fields_cannot_drive_allocation() {
    // A bare header declaring a multi-exabyte payload.
    let mut hostile = Vec::with_capacity(WIRE_HEADER_LEN);
    hostile.extend_from_slice(b"FCDS");
    hostile.push(1); // version
    hostile.push(1); // theta family
    hostile.push(0); // flags
    hostile.push(8); // item width
    hostile.extend_from_slice(&u64::MAX.to_le_bytes());
    let err = WireHeader::parse(&hostile).unwrap_err();
    assert!(matches!(err, WireError::PayloadLength { .. }), "{err:?}");

    // A well-formed theta envelope whose in-payload count field is
    // forged to billions while the payload stays small: the per-family
    // size equation must reject it as an invariant violation.
    let mut s = QuickSelectThetaSketch::new(4, 1).unwrap();
    for i in 0..100u64 {
        s.update(i);
    }
    let mut bytes = s.compact().to_wire_bytes().to_vec();
    let count_off = WIRE_HEADER_LEN + 16; // after seed + theta
    bytes[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = CompactThetaSketch::from_wire_bytes(&bytes).unwrap_err();
    assert!(matches!(err, WireError::Invariant { .. }), "{err:?}");

    // Misra–Gries `k` is a capacity parameter, not a length, so a huge
    // forged value passes the size equation — the decoder must complete
    // without a giant eager allocation (the capacity hint is capped).
    let mut mg = MisraGriesSketch::<u64>::new(8).unwrap();
    for i in 0..1_000u64 {
        mg.update(i % 20);
    }
    let mut bytes = mg.to_wire_bytes().to_vec();
    bytes[WIRE_HEADER_LEN..WIRE_HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let decoded = MisraGriesSketch::<u64>::from_wire_bytes(&bytes).unwrap();
    assert_eq!(decoded.n(), mg.n());

    // Same for the updatable Quantiles `k` (a u32): forging it to the
    // maximum must not pre-allocate a 2k-item base buffer.
    let q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
    let mut bytes = q.to_bytes().to_vec();
    bytes[WIRE_HEADER_LEN..WIRE_HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let _ = QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compact_theta_round_trips(
        n in 0u64..50_000,
        lg_k in 4u8..10,
        seed in 0u64..1_000,
    ) {
        let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let c = s.compact();
        let back = CompactThetaSketch::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn hll_round_trips(
        n in 0u64..30_000,
        lg_m in 4u8..12,
        seed in 0u64..1_000,
    ) {
        let mut h = HllSketch::new(lg_m, seed).unwrap();
        for i in 0..n {
            h.update(i);
        }
        let back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn quantiles_round_trips(
        n in 0u64..20_000,
        k in 2usize..128,
        seed in 0u64..1_000,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(k, seed).unwrap();
        for i in 0..n {
            q.update(i.wrapping_mul(0x9E37_79B9) % 10_000);
        }
        let bytes = q.to_bytes();
        let back = QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0)).unwrap();
        prop_assert_eq!(back.n(), q.n());
        prop_assert!(back.check_weight_invariant());
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(back.quantile(phi), q.quantile(phi));
        }
    }

    /// Random single-byte corruption either fails decoding or decodes to
    /// a structurally valid sketch — never panics.
    #[test]
    fn corrupted_theta_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut s = QuickSelectThetaSketch::new(5, 1).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let mut bytes = s.compact().to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match CompactThetaSketch::from_bytes(&bytes) {
            Err(_) => {}
            Ok(c) => {
                // If it decodes, its invariants must hold.
                let hashes = c.sorted_hashes();
                prop_assert!(hashes.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(hashes.iter().all(|&h| h < c.theta()));
            }
        }
    }

    #[test]
    fn corrupted_quantiles_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
        for i in 0..n {
            q.update(i);
        }
        let mut bytes = q.to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0)) {
            Err(_) => {}
            Ok(back) => {
                prop_assert!(back.check_weight_invariant());
            }
        }
    }

    #[test]
    fn corrupted_hll_never_panics(
        n in 100u64..5_000,
        flip_at in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let mut h = HllSketch::new(6, 1).unwrap();
        for i in 0..n {
            h.update(i);
        }
        let mut bytes = h.to_bytes().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = HllSketch::from_bytes(&bytes); // must not panic
    }

    /// The ladder image (merge-tier form) round-trips bit-exactly and
    /// preserves every rank query.
    #[test]
    fn quantiles_ladder_round_trips(
        n in 0u64..20_000,
        k in 2usize..128,
        seed in 0u64..1_000,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(k, seed).unwrap();
        for i in 0..n {
            q.update(i.wrapping_mul(0x9E37_79B9) % 10_000);
        }
        let ladder = q.ladder();
        let bytes = ladder.to_wire_bytes();
        let back = QuantilesLadder::<u64>::from_wire_bytes(&bytes).unwrap();
        prop_assert_eq!(back.n(), ladder.n());
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            prop_assert_eq!(back.quantile(phi), ladder.quantile(phi));
        }
        prop_assert_eq!(back.to_wire_bytes(), bytes);
    }

    /// Misra–Gries wire form round-trips bit-exactly and preserves
    /// every counter and the error bound.
    #[test]
    fn misra_gries_round_trips(
        n in 0u64..30_000,
        k in 1usize..128,
        modulus in 1u64..2_000,
    ) {
        let mut mg = MisraGriesSketch::<u64>::new(k).unwrap();
        for i in 0..n {
            mg.update(i % modulus);
        }
        let bytes = mg.to_wire_bytes();
        let back = MisraGriesSketch::<u64>::from_wire_bytes(&bytes).unwrap();
        prop_assert_eq!(back.n(), mg.n());
        prop_assert_eq!(back.max_error(), mg.max_error());
        for item in 0..modulus.min(64) {
            prop_assert_eq!(back.estimate(&item), mg.estimate(&item));
        }
        prop_assert_eq!(back.to_wire_bytes(), bytes);
    }

    /// Random corruption of the new wire forms never panics, and a
    /// mutated image that still decodes satisfies the family invariants.
    #[test]
    fn corrupted_ladder_and_mg_never_panic(
        n in 100u64..5_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let mut q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
        let mut mg = MisraGriesSketch::<u64>::new(8).unwrap();
        for i in 0..n {
            q.update(i);
            mg.update(i % 50);
        }
        let mut lb = q.ladder().to_wire_bytes().to_vec();
        let idx = flip_at % lb.len();
        lb[idx] ^= 1 << flip_bit;
        if let Ok(back) = QuantilesLadder::<u64>::from_wire_bytes(&lb) {
            // A surviving mutation must still be internally consistent:
            // re-encoding it round-trips through the decoder.
            let re = back.to_wire_bytes();
            prop_assert!(QuantilesLadder::<u64>::from_wire_bytes(&re).is_ok());
        }

        let mut mb = mg.to_wire_bytes().to_vec();
        let idx = flip_at % mb.len();
        mb[idx] ^= 1 << flip_bit;
        if let Ok(back) = MisraGriesSketch::<u64>::from_wire_bytes(&mb) {
            let re = back.to_wire_bytes();
            prop_assert!(MisraGriesSketch::<u64>::from_wire_bytes(&re).is_ok());
        }
    }
}
