//! Property tests: every multiway fan-in kernel is result-identical to
//! the reference pairwise decode-and-fold oracle.
//!
//! The oracle here is an *explicit* `from_wire_bytes` + `wire_merge_from`
//! fold — deliberately not `merge_wire_images`, which now routes through
//! the kernels under test. Coverage includes unsorted Θ images, item
//! duplicates across images (overlapping node ranges), empty and
//! singleton fan-ins, and mixed sorted/unsorted image lists. Misra–Gries
//! is byte-identical in exact mode (distinct items ≤ k); in overflow
//! mode both folds are valid summaries of the union stream, so the
//! kernel is held to the mergeable-summaries contract instead: same `n`,
//! error within `n/(k+1)`, and every replayed truth inside its bounds.

use bytes::Bytes;
use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::quantiles::{QuantilesLadder, QuantilesSketch};
use fcds_sketches::theta::{CompactThetaSketch, QuickSelectThetaSketch};
use fcds_sketches::wire::{
    encode_theta_unsorted, hll_multiway_merge, ladder_multiway_concat, mg_multiway_merge,
    theta_multiway_union, WireEncode, WireMerge,
};
use fcds_sketches::WireError;
use proptest::prelude::*;
use std::collections::HashMap;

/// The reference oracle: decode every image, fold pairwise — exactly
/// what `merge_wire_images` did before the multiway kernels existed.
fn pairwise_fold<W: WireMerge>(images: &[Bytes]) -> Result<W, WireError> {
    let (first, rest) = images
        .split_first()
        .ok_or_else(|| WireError::invariant("merge", "no images to merge"))?;
    let mut acc = W::from_wire_bytes(first)?;
    for image in rest {
        let part = W::from_wire_bytes(image)?;
        acc.wire_merge_from(&part)?;
    }
    Ok(acc)
}

/// Every kernel must reject an empty fan-in with the same invariant the
/// pairwise path reports.
#[test]
fn empty_fanin_is_rejected_by_every_kernel() {
    let none: Vec<Bytes> = Vec::new();
    let err = theta_multiway_union(&none).unwrap_err();
    assert!(err.to_string().contains("no images"), "{err}");
    let err = hll_multiway_merge(&none).unwrap_err();
    assert!(err.to_string().contains("no images"), "{err}");
    let err = ladder_multiway_concat::<u64, _>(&none).unwrap_err();
    assert!(err.to_string().contains("no images"), "{err}");
    let err = mg_multiway_merge::<u64, _>(&none).unwrap_err();
    assert!(err.to_string().contains("no images"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Θ: k-way loser-tree union over any mix of sorted and unsorted
    /// images — byte-identical to the pairwise untrimmed-union fold.
    /// Overlapping node ranges plant duplicate hashes across images;
    /// `n = 0` nodes plant empty sketches; a single node exercises the
    /// singleton fan-in.
    #[test]
    fn theta_multiway_matches_pairwise_oracle(
        nodes in prop::collection::vec(
            (0u64..2_000, 0u64..4_000, any::<bool>()),
            1..6,
        ),
        lg_k in 4u8..7,
        seed in 0u64..100,
    ) {
        let images: Vec<Bytes> = nodes
            .iter()
            .map(|&(start, n, unsorted)| {
                let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
                for i in 0..n {
                    s.update(start + i);
                }
                if unsorted {
                    encode_theta_unsorted(&s)
                } else {
                    s.compact().to_wire_bytes()
                }
            })
            .collect();
        let oracle: CompactThetaSketch = pairwise_fold(&images).unwrap();
        let kernel = theta_multiway_union(&images).unwrap();
        prop_assert_eq!(kernel.to_wire_bytes(), oracle.to_wire_bytes());
    }

    /// HLL: the payload-byte register-max fold equals the pairwise
    /// decode-and-join fold exactly (register-wise max is a lattice
    /// join; images share lg_m and seed).
    #[test]
    fn hll_multiway_matches_pairwise_oracle(
        nodes in prop::collection::vec((0u64..2_000, 0u64..3_000), 1..6),
        lg_m in 4u8..8,
        seed in 0u64..100,
    ) {
        let images: Vec<Bytes> = nodes
            .iter()
            .map(|&(start, n)| {
                let mut s = HllSketch::new(lg_m, seed).unwrap();
                for i in 0..n {
                    s.update(start + i);
                }
                s.to_wire_bytes()
            })
            .collect();
        let oracle: HllSketch = pairwise_fold(&images).unwrap();
        let kernel = hll_multiway_merge(&images).unwrap();
        prop_assert_eq!(kernel.to_wire_bytes(), oracle.to_wire_bytes());
    }

    /// Quantiles: splicing borrowed runs from the raw images yields a
    /// ladder byte-identical to the pairwise decode-and-concat fold
    /// (runs keep image order; min/max/n fold the same way).
    #[test]
    fn ladder_multiway_matches_pairwise_oracle(
        nodes in prop::collection::vec((0u64..2_000, 0u64..3_000), 1..6),
        k in 2usize..64,
        seed in 0u64..100,
    ) {
        let images: Vec<Bytes> = nodes
            .iter()
            .map(|&(start, n)| {
                let mut s = QuantilesSketch::<u64>::with_seed(k, seed).unwrap();
                for i in 0..n {
                    s.update(start + i);
                }
                s.ladder().to_wire_bytes()
            })
            .collect();
        let oracle: QuantilesLadder<u64> = pairwise_fold(&images).unwrap();
        let kernel: QuantilesLadder<u64> = ladder_multiway_concat(&images).unwrap();
        prop_assert_eq!(kernel.to_wire_bytes(), oracle.to_wire_bytes());
    }

    /// Misra–Gries, exact mode: with distinct items ≤ k no reduction
    /// ever fires, so accumulate-then-reduce and the pairwise fold
    /// retain identical counters — byte-identical images.
    #[test]
    fn mg_multiway_exact_mode_matches_pairwise_oracle(
        nodes in prop::collection::vec(0u64..3_000, 1..6),
        k in 8usize..64,
        domain_frac in 1usize..8,
    ) {
        let domain = (k / domain_frac).max(1) as u64;
        let images: Vec<Bytes> = nodes
            .iter()
            .map(|&n| {
                let mut s = MisraGriesSketch::<u64>::new(k).unwrap();
                for i in 0..n {
                    s.update(i % domain);
                }
                s.to_wire_bytes()
            })
            .collect();
        let oracle: MisraGriesSketch<u64> = pairwise_fold(&images).unwrap();
        let kernel: MisraGriesSketch<u64> = mg_multiway_merge(&images).unwrap();
        prop_assert_eq!(kernel.to_wire_bytes(), oracle.to_wire_bytes());
    }

    /// Misra–Gries, overflow mode: reductions fire, so retained counters
    /// may legitimately differ from the pairwise fold's — but the kernel
    /// must still be a valid summary of the union stream: same `n`,
    /// error within the mergeable-summaries bound `n/(k+1)`, and every
    /// replayed true count inside its `[lower, upper]` bracket.
    #[test]
    fn mg_multiway_overflow_mode_respects_bounds(
        nodes in prop::collection::vec((0u64..500, 100u64..2_000), 1..6),
        k in 4usize..16,
    ) {
        let domain = 4 * k as u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let images: Vec<Bytes> = nodes
            .iter()
            .map(|&(start, n)| {
                let mut s = MisraGriesSketch::<u64>::new(k).unwrap();
                for i in 0..n {
                    let item = (start + i) % domain;
                    s.update(item);
                    *truth.entry(item).or_insert(0) += 1;
                }
                s.to_wire_bytes()
            })
            .collect();
        let oracle: MisraGriesSketch<u64> = pairwise_fold(&images).unwrap();
        let kernel: MisraGriesSketch<u64> = mg_multiway_merge(&images).unwrap();
        prop_assert_eq!(kernel.n(), oracle.n());
        let bound = kernel.n() as f64 / (k as f64 + 1.0);
        prop_assert!(
            kernel.max_error() as f64 <= bound,
            "error {} above mergeable-summaries bound {bound}",
            kernel.max_error(),
        );
        for (item, &count) in &truth {
            let est = kernel.estimate(item);
            prop_assert!(
                est.lower_bound <= count && count <= est.upper_bound,
                "item {item}: truth {count} outside [{}, {}]",
                est.lower_bound,
                est.upper_bound,
            );
        }
    }
}
