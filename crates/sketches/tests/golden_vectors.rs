//! Golden test vectors: the committed byte-level contract of wire
//! format version 1.
//!
//! The corpus under `tests/vectors/` is generated once by the checked-in
//! tool below (`cargo test -p fcds-sketches --test golden_vectors
//! -- --ignored regenerate`) and committed. Two properties are enforced
//! on every run:
//!
//! 1. **Encoder stability** — re-generating each vector in memory
//!    produces exactly the committed bytes. An encoder change that
//!    alters any committed byte is a format break and must ship as wire
//!    version 2 with fresh vectors, never as a silent edit.
//! 2. **Decode/re-encode identity** — every committed vector decodes
//!    through the public decoders and re-encodes byte-identically,
//!    pinning the decoders to the canonical form.
//!
//! Vector files are hex text (a `#` comment line, then the image bytes
//! as 64-char hex lines) so diffs stay reviewable in git.

use bytes::Bytes;
use fcds_sketches::error::WireError;
use fcds_sketches::frequency::MisraGriesSketch;
use fcds_sketches::hll::HllSketch;
use fcds_sketches::oracle::DeterministicOracle;
use fcds_sketches::quantiles::{QuantilesLadder, QuantilesSketch};
use fcds_sketches::theta::QuickSelectThetaSketch;
use fcds_sketches::wire::{
    SketchFamily, WireDecode, WireEncode, WireHeader, FLAG_QUANTILES_UPDATABLE,
};
use std::path::{Path, PathBuf};

fn vectors_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("vectors")
}

/// The deterministic generation grid: (file stem, description, image).
/// Everything is seeded, so the corpus is reproducible bit-for-bit.
fn corpus() -> Vec<(String, String, Bytes)> {
    let mut out = Vec::new();

    for lg_k in [4u8, 8] {
        for n in [0u64, 100, 50_000] {
            let mut s = QuickSelectThetaSketch::new(lg_k, 9001).unwrap();
            for i in 0..n {
                s.update(i);
            }
            out.push((
                format!("theta_lgk{lg_k}_n{n}"),
                format!("theta: QuickSelect lg_k={lg_k} seed=9001 over 0..{n}"),
                s.compact().to_wire_bytes(),
            ));
        }
    }

    for lg_m in [4u8, 10] {
        for n in [0u64, 1_000, 100_000] {
            let mut h = HllSketch::new(lg_m, 42).unwrap();
            for i in 0..n {
                h.update(i);
            }
            out.push((
                format!("hll_lgm{lg_m}_n{n}"),
                format!("hll: lg_m={lg_m} seed=42 over 0..{n}"),
                h.to_wire_bytes(),
            ));
        }
    }

    for k in [16usize, 64] {
        for n in [0u64, 1_000, 100_000] {
            let mut q = QuantilesSketch::<u64>::with_seed(k, 7).unwrap();
            for i in 0..n {
                q.update(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            out.push((
                format!("quantiles_ladder_k{k}_n{n}"),
                format!("quantiles ladder: k={k} oracle_seed=7 over {n} spread items"),
                q.ladder().to_wire_bytes(),
            ));
        }
    }

    for n in [0u64, 10_000] {
        let mut q = QuantilesSketch::<u64>::with_seed(32, 7).unwrap();
        for i in 0..n {
            q.update(i);
        }
        out.push((
            format!("quantiles_updatable_k32_n{n}"),
            format!("quantiles updatable sketch: k=32 oracle_seed=7 over 0..{n}"),
            q.to_bytes(),
        ));
    }

    for k in [8usize, 64] {
        for n in [0u64, 30_000] {
            let mut mg = MisraGriesSketch::<u64>::new(k).unwrap();
            for i in 0..n {
                mg.update(if i % 3 == 0 { 7 } else { i % 500 });
            }
            out.push((
                format!("mg_k{k}_n{n}"),
                format!("misra-gries: k={k} over {n} items (heavy item 7, noise mod 500)"),
                mg.to_wire_bytes(),
            ));
        }
    }

    out
}

fn to_hex_file(description: &str, bytes: &[u8]) -> String {
    let mut s = format!("# {description}\n");
    for chunk in bytes.chunks(32) {
        for b in chunk {
            s.push_str(&format!("{b:02x}"));
        }
        s.push('\n');
    }
    s
}

fn from_hex_file(text: &str) -> Vec<u8> {
    let hex: String = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .collect::<Vec<_>>()
        .concat();
    assert!(hex.len().is_multiple_of(2), "odd hex digit count");
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("hex digit"))
        .collect()
}

fn committed_vectors() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(vectors_dir()).expect("tests/vectors directory is committed") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("hex") {
            let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
            let text = std::fs::read_to_string(&path).unwrap();
            out.push((stem, from_hex_file(&text)));
        }
    }
    out.sort();
    out
}

/// Regeneration tool (checked in, excluded from normal runs). Run with
/// `cargo test -p fcds-sketches --test golden_vectors -- --ignored` and
/// commit the result; review the diff as a format change.
#[test]
#[ignore = "regenerates the committed corpus; run explicitly"]
fn regenerate_golden_vectors() {
    let dir = vectors_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (stem, description, bytes) in corpus() {
        std::fs::write(
            dir.join(format!("{stem}.hex")),
            to_hex_file(&description, &bytes),
        )
        .unwrap();
    }
}

#[test]
fn golden_vectors_match_current_encoders() {
    let committed = committed_vectors();
    assert!(
        committed.len() >= 20,
        "corpus too small: {} vectors",
        committed.len()
    );
    let mut expected: Vec<(String, Vec<u8>)> = corpus()
        .into_iter()
        .map(|(stem, _, bytes)| (stem, bytes.to_vec()))
        .collect();
    expected.sort();
    let names = |v: &[(String, Vec<u8>)]| v.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>();
    assert_eq!(
        names(&committed),
        names(&expected),
        "corpus file set drifted from the generation grid"
    );
    for ((stem, committed_bytes), (_, expected_bytes)) in committed.iter().zip(&expected) {
        assert_eq!(
            committed_bytes, expected_bytes,
            "encoder output for `{stem}` no longer matches the committed \
             golden vector — this is a wire format break"
        );
    }
}

#[test]
fn every_golden_vector_round_trips_byte_identically() {
    let committed = committed_vectors();
    let mut families_seen = std::collections::BTreeSet::new();
    for (stem, bytes) in &committed {
        let (header, _) = WireHeader::parse(bytes)
            .unwrap_or_else(|e| panic!("vector `{stem}` has an unparseable header: {e}"));
        families_seen.insert(header.family.code());
        let reencoded: Vec<u8> = match header.family {
            SketchFamily::Theta => QuickSelectThetaSketchImage::reencode(bytes),
            SketchFamily::Hll => HllSketch::from_wire_bytes(bytes)
                .unwrap()
                .to_wire_bytes()
                .to_vec(),
            SketchFamily::Quantiles => {
                if header.flags & FLAG_QUANTILES_UPDATABLE != 0 {
                    QuantilesSketch::<u64>::from_bytes(bytes, DeterministicOracle::new(0))
                        .unwrap()
                        .to_bytes()
                        .to_vec()
                } else {
                    QuantilesLadder::<u64>::from_wire_bytes(bytes)
                        .unwrap()
                        .to_wire_bytes()
                        .to_vec()
                }
            }
            SketchFamily::Frequency => MisraGriesSketch::<u64>::from_wire_bytes(bytes)
                .unwrap()
                .to_wire_bytes()
                .to_vec(),
        };
        assert_eq!(
            &reencoded, bytes,
            "vector `{stem}` does not re-encode byte-identically"
        );
    }
    assert_eq!(
        families_seen.into_iter().collect::<Vec<_>>(),
        vec![1, 2, 3, 4],
        "corpus must cover all four sketch families"
    );
}

/// Helper namespace for the Θ re-encode arm (keeps the match readable).
struct QuickSelectThetaSketchImage;

impl QuickSelectThetaSketchImage {
    fn reencode(bytes: &[u8]) -> Vec<u8> {
        fcds_sketches::theta::CompactThetaSketch::from_wire_bytes(bytes)
            .unwrap()
            .to_wire_bytes()
            .to_vec()
    }
}

/// A vector with a forged family byte must fail decoding, not
/// mis-decode: the corpus also locks the dispatch path.
#[test]
fn golden_vectors_reject_family_forgery() {
    for (stem, bytes) in committed_vectors() {
        let mut forged = bytes.clone();
        forged[5] = match forged[5] {
            1 => 2,
            _ => 1,
        };
        let result: Result<HllSketch, WireError> = match forged[5] {
            2 => HllSketch::from_wire_bytes(&forged),
            _ => {
                // Forged into Θ: decode as Θ must fail structurally or
                // produce a valid sketch only by coincidence — assert it
                // at least never panics and HLL decode rejects it.
                assert!(HllSketch::from_wire_bytes(&forged).is_err());
                continue;
            }
        };
        assert!(
            result.is_err(),
            "vector `{stem}` with forged family byte decoded as HLL"
        );
    }
}
