//! MurmurHash3 `x64_128`, reimplemented from Austin Appleby's public-domain
//! reference. This is the hash function Apache DataSketches uses for all of
//! its sketches, so we use it for hash-compatibility of behaviour (uniform
//! 64-bit outputs, excellent avalanche) even though any good 64-bit hash
//! would satisfy the paper's analysis.

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[inline(always)]
fn mix_k1(mut k1: u64) -> u64 {
    k1 = k1.wrapping_mul(C1);
    k1 = k1.rotate_left(31);
    k1.wrapping_mul(C2)
}

#[inline(always)]
fn mix_k2(mut k2: u64) -> u64 {
    k2 = k2.wrapping_mul(C2);
    k2 = k2.rotate_left(33);
    k2.wrapping_mul(C1)
}

/// Computes the 128-bit MurmurHash3 (`x64_128` variant) of `data` with the
/// given `seed`, returning the two 64-bit halves `(h1, h2)`.
///
/// The implementation follows the reference `MurmurHash3_x64_128` exactly:
/// 16-byte blocks are consumed with the (C1, rot 31, C2) / (C2, rot 33, C1)
/// mixers, the tail is folded in little-endian order, and both halves go
/// through the 64-bit finaliser (`fmix64`).
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let mut h1 = seed;
    let mut h2 = seed;
    let n_blocks = data.len() / 16;

    // Body: 16-byte blocks.
    for i in 0..n_blocks {
        let b = &data[i * 16..i * 16 + 16];
        let k1 = u64::from_le_bytes(b[0..8].try_into().expect("8-byte slice"));
        let k2 = u64::from_le_bytes(b[8..16].try_into().expect("8-byte slice"));

        h1 ^= mix_k1(k1);
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        h2 ^= mix_k2(k2);
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: the remaining 0..=15 bytes.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    if tail.len() > 8 {
        for (i, &b) in tail[8..].iter().enumerate() {
            k2 ^= (b as u64) << (8 * i);
        }
        h2 ^= mix_k2(k2);
    }
    if !tail.is_empty() {
        for (i, &b) in tail.iter().take(8).enumerate() {
            k1 ^= (b as u64) << (8 * i);
        }
        h1 ^= mix_k1(k1);
    }

    // Finalisation.
    let len = data.len() as u64;
    h1 ^= len;
    h2 ^= len;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Convenience wrapper returning only the first 64-bit half, which is what
/// the sketches use as the item's position in the hash domain.
#[inline]
pub fn murmur3_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed).0
}

/// The fixed-width 8-byte fast lane: hashes `value`'s little-endian bytes,
/// byte-identically to `murmur3_64(&value.to_le_bytes(), seed)` but with
/// the generic block/tail machinery resolved away — an 8-byte input has no
/// 16-byte block and its tail *is* the value, so the whole hash collapses
/// to one `mix_k1` plus finalisation. This is the hash every integer-keyed
/// sketch update pays, so shaving the slice dispatch here shows up
/// directly in ingestion throughput (and the short dependency chain lets
/// batched callers overlap several hashes in flight — see
/// [`super::hash_batch_with_seed`]).
#[inline]
pub fn murmur3_64_u64(value: u64, seed: u64) -> u64 {
    // Reference path for len = 8: no blocks; tail of exactly 8 bytes folds
    // the value (LE) into k1; then h1 ^= len, h2 ^= len and finalisation.
    let mut h1 = seed ^ mix_k1(value);
    let mut h2 = seed;
    h1 ^= 8;
    h2 ^= 8;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    // The reference's final `h2 += h1` only matters for the second half,
    // which this 64-bit lane never returns.
    h1.wrapping_add(h2)
}

/// The fixed-width byte-array fast lane: byte-identical to
/// `murmur3_64(data, seed)` for any `N`, but for `N < 16` the block loop
/// vanishes and the tail folds are fully unrolled at compile time (the
/// `N`-dependent branches below are resolved during monomorphisation).
/// Inputs of 16 bytes or more fall back to the generic path — they have
/// real blocks and gain nothing from a const width.
#[inline]
pub fn murmur3_64_fixed<const N: usize>(data: &[u8; N], seed: u64) -> u64 {
    if N >= 16 {
        return murmur3_64(data, seed);
    }
    let mut h1 = seed;
    let mut h2 = seed;
    if N > 8 {
        let mut k2: u64 = 0;
        for (i, &b) in data[8..].iter().enumerate() {
            k2 ^= (b as u64) << (8 * i);
        }
        h2 ^= mix_k2(k2);
    }
    if N > 0 {
        let mut k1: u64 = 0;
        for (i, &b) in data.iter().take(8).enumerate() {
            k1 ^= (b as u64) << (8 * i);
        }
        h1 ^= mix_k1(k1);
    }
    h1 ^= N as u64;
    h2 ^= N as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1.wrapping_add(h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_seed_zero_is_zero() {
        // With no blocks, no tail and len = 0, both halves stay 0 through
        // finalisation: this is the reference implementation's behaviour.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn empty_input_nonzero_seed_is_not_zero() {
        let (h1, h2) = murmur3_x64_128(b"", 9001);
        assert_ne!((h1, h2), (0, 0));
    }

    #[test]
    fn deterministic() {
        let a = murmur3_x64_128(b"fast concurrent data sketches", 42);
        let b = murmur3_x64_128(b"fast concurrent data sketches", 42);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_output() {
        let a = murmur3_x64_128(b"payload", 1);
        let b = murmur3_x64_128(b"payload", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_tail_length_is_distinct() {
        // Exercise all tail lengths 0..=16 and make sure each extra byte
        // changes the hash (catches tail-handling bugs such as reading the
        // wrong lane or missing the len XOR).
        let data: Vec<u8> = (0u8..48).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            let h = murmur3_x64_128(&data[..len], 7);
            assert!(seen.insert(h), "collision at prefix length {len}");
        }
    }

    #[test]
    fn block_boundary_consistency() {
        // A 16-byte input must go through the block path, not the tail
        // path; verify it differs from its 15-byte prefix and 17-byte
        // extension in a non-trivial way.
        let data = [0xABu8; 17];
        let h15 = murmur3_x64_128(&data[..15], 0);
        let h16 = murmur3_x64_128(&data[..16], 0);
        let h17 = murmur3_x64_128(&data[..17], 0);
        assert_ne!(h15, h16);
        assert_ne!(h16, h17);
    }

    #[test]
    fn high_bits_are_uniform() {
        // The top bit of h1 should be set for ~50% of inputs. A grossly
        // biased implementation (e.g. forgetting fmix64) fails this.
        let n = 100_000u64;
        let ones: u64 = (0..n)
            .filter(|i| murmur3_64(&i.to_le_bytes(), 0) >> 63 == 1)
            .count() as u64;
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "top-bit frequency {frac}");
    }

    #[test]
    fn avalanche_of_single_bit_flips() {
        // Flipping any single input bit should flip roughly half of the 64
        // output bits on average.
        let base = b"avalanche-test-input".to_vec();
        let h0 = murmur3_64(&base, 0);
        let mut total_flipped = 0u32;
        let mut trials = 0u32;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                total_flipped += (murmur3_64(&m, 0) ^ h0).count_ones();
                trials += 1;
            }
        }
        let avg = total_flipped as f64 / trials as f64;
        assert!(
            (avg - 32.0).abs() < 3.0,
            "average flipped output bits {avg}, expected ~32"
        );
    }

    #[test]
    fn u64_fast_lane_matches_byte_slice_path() {
        // The fixed-width lane must be byte-identical to the generic path:
        // every sketch's hash domain position depends on it.
        let mut v: u64 = 0x243F_6A88_85A3_08D3;
        for seed in [0u64, 9001, u64::MAX] {
            for _ in 0..10_000 {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                assert_eq!(murmur3_64_u64(v, seed), murmur3_64(&v.to_le_bytes(), seed));
            }
            for v in [0u64, 1, u64::MAX] {
                assert_eq!(murmur3_64_u64(v, seed), murmur3_64(&v.to_le_bytes(), seed));
            }
        }
    }

    #[test]
    fn fixed_width_lane_matches_generic_for_every_width() {
        // All sub-block widths 0..16 take the unrolled path; 16 and 17
        // exercise the generic fallback.
        let data: [u8; 17] = [
            0x01, 0xFF, 0x2A, 0x80, 0x7E, 0x00, 0x13, 0x9C, 0x55, 0xAA, 0x0F, 0xF0, 0x3C, 0xC3,
            0x69, 0x96, 0x42,
        ];
        macro_rules! check {
            ($($n:literal),*) => {$(
                let fixed: [u8; $n] = data[..$n].try_into().unwrap();
                for seed in [0u64, 7, 9001] {
                    assert_eq!(
                        murmur3_64_fixed(&fixed, seed),
                        murmur3_64(&data[..$n], seed),
                        "width {} seed {}", $n, seed
                    );
                }
            )*};
        }
        check!(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17);
    }

    #[test]
    fn bucket_uniformity_chi_square() {
        // Hash 64k consecutive integers into 64 buckets and check the
        // chi-square statistic is within a loose bound (df = 63; the 99.9th
        // percentile is ~107, we allow 150 to keep the test robust).
        const BUCKETS: usize = 64;
        const N: u64 = 65_536;
        let mut counts = [0u64; BUCKETS];
        for i in 0..N {
            let h = murmur3_64(&i.to_le_bytes(), 123);
            counts[(h >> (64 - 6)) as usize] += 1;
        }
        let expected = N as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 150.0, "chi-square {chi2} too large");
    }
}
