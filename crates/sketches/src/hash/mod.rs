//! Hashing layer: MurmurHash3 plus the [`Hashable`] abstraction that maps
//! stream items into the 64-bit hash domain shared by all sketches.
//!
//! The paper models the hash function as "a random hash function h whose
//! outputs are uniformly distributed in the range [0, 1]" (§3). We work in
//! the integer domain instead: outputs are uniform in `0..=u64::MAX` and
//! `u64::MAX` plays the role of 1.0. The *seed* of the hash function is the
//! random choice the de-randomisation oracle of §4 fixes.

pub mod murmur3;

pub use murmur3::{murmur3_64, murmur3_64_fixed, murmur3_64_u64, murmur3_x64_128};

/// The default hash seed, matching Apache DataSketches' update seed
/// (9001) so that behaviour is recognisable to users of the Java library.
pub const DEFAULT_SEED: u64 = 9001;

/// Types that can be fed into a sketch.
///
/// An implementation must be a *pure function of the value*: two equal
/// items must produce identical hashes for every seed, and unequal items
/// should collide only with probability ~2⁻⁶⁴. All implementations below
/// delegate to MurmurHash3 of a canonical byte encoding.
///
/// # Examples
///
/// ```
/// use fcds_sketches::hash::{Hashable, DEFAULT_SEED};
///
/// let a = 17u64.hash_with_seed(DEFAULT_SEED);
/// let b = 17u64.hash_with_seed(DEFAULT_SEED);
/// assert_eq!(a, b);
/// ```
pub trait Hashable {
    /// Hashes `self` into the 64-bit hash domain under the given seed.
    fn hash_with_seed(&self, seed: u64) -> u64;
}

impl Hashable for u64 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        // Fixed-width lane: byte-identical to hashing the LE bytes, with
        // the generic block/tail dispatch resolved away.
        murmur3_64_u64(*self, seed)
    }
}

impl Hashable for i64 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64_u64(*self as u64, seed)
    }
}

impl Hashable for u32 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (*self as u64).hash_with_seed(seed)
    }
}

impl Hashable for i32 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (*self as i64).hash_with_seed(seed)
    }
}

impl Hashable for f64 {
    /// Hashes the canonical bit pattern; `-0.0` is canonicalised to `0.0`
    /// so that numerically equal keys hash equally.
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        let canonical = if *self == 0.0 { 0.0f64 } else { *self };
        murmur3_64_u64(canonical.to_bits(), seed)
    }
}

impl Hashable for str {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self.as_bytes(), seed)
    }
}

impl Hashable for String {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.as_str().hash_with_seed(seed)
    }
}

impl Hashable for [u8] {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }
}

/// Fixed-width byte keys (IP addresses, UUIDs, packed composites) hash
/// byte-identically to the equivalent `[u8]` slice, but sub-block widths
/// take the const-unrolled [`murmur3_64_fixed`] lane.
impl<const N: usize> Hashable for [u8; N] {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64_fixed(self, seed)
    }
}

impl Hashable for Vec<u8> {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }
}

impl<T: Hashable + ?Sized> Hashable for &T {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (**self).hash_with_seed(seed)
    }
}

/// Hashes a slice of items into `out[..items.len()]`, unrolled in chunks
/// of 4 so the four independent murmur3 dependency chains can overlap in
/// flight (each chain is ~a dozen serially dependent multiply/xor steps;
/// one-at-a-time hashing leaves the core's ports idle between them).
///
/// This is the batched-ingestion hash lane: the concurrent writers' batch
/// path hashes a whole chunk here before filtering, instead of paying the
/// per-item call in the update loop. For fixed-width items (`u64`, `i64`,
/// `f64`) each lane is the block-free fast path [`murmur3_64_u64`].
///
/// # Panics
///
/// Panics if `out` is shorter than `items`.
pub fn hash_batch_with_seed<T: Hashable>(items: &[T], seed: u64, out: &mut [u64]) {
    assert!(
        out.len() >= items.len(),
        "output buffer shorter than input: {} < {}",
        out.len(),
        items.len()
    );
    let mut i = 0;
    while i + 4 <= items.len() {
        // Four independent chains; the compiler is free to interleave
        // them since nothing below depends on an earlier lane.
        let h0 = items[i].hash_with_seed(seed);
        let h1 = items[i + 1].hash_with_seed(seed);
        let h2 = items[i + 2].hash_with_seed(seed);
        let h3 = items[i + 3].hash_with_seed(seed);
        out[i] = h0;
        out[i + 1] = h1;
        out[i + 2] = h2;
        out[i + 3] = h3;
        i += 4;
    }
    while i < items.len() {
        out[i] = items[i].hash_with_seed(seed);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_and_i64_with_same_bits_hash_equal() {
        // Both encode as the same 8 LE bytes.
        assert_eq!(
            5u64.hash_with_seed(DEFAULT_SEED),
            5i64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn u32_widens_to_u64() {
        assert_eq!(
            7u32.hash_with_seed(DEFAULT_SEED),
            7u64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn negative_zero_canonicalised() {
        assert_eq!(
            (-0.0f64).hash_with_seed(DEFAULT_SEED),
            0.0f64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn str_and_string_agree() {
        let s = String::from("hello sketch");
        assert_eq!(
            s.hash_with_seed(DEFAULT_SEED),
            "hello sketch".hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn reference_delegates() {
        let v = 99u64;
        assert_eq!(
            v.hash_with_seed(DEFAULT_SEED),
            v.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn bytes_and_str_with_same_content_agree() {
        let b: &[u8] = b"abc";
        assert_eq!(
            b.hash_with_seed(DEFAULT_SEED),
            "abc".hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn byte_arrays_agree_with_slices() {
        // The fixed-width array lane must be indistinguishable from
        // hashing the same bytes as a slice (sub-block and block widths).
        let ip4: [u8; 4] = [10, 0, 0, 7];
        let uuid: [u8; 16] = *b"0123456789abcdef";
        assert_eq!(
            ip4.hash_with_seed(DEFAULT_SEED),
            ip4[..].hash_with_seed(DEFAULT_SEED)
        );
        assert_eq!(
            uuid.hash_with_seed(DEFAULT_SEED),
            uuid[..].hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn hash_batch_matches_scalar_hashing() {
        // Every unroll shape: multiples of 4, the 1..3 remainders, empty.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 64, 65] {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let mut out = vec![0u64; n + 2];
            hash_batch_with_seed(&items, DEFAULT_SEED, &mut out);
            for (i, item) in items.iter().enumerate() {
                assert_eq!(out[i], item.hash_with_seed(DEFAULT_SEED), "lane {i} of {n}");
            }
        }
        // Works for non-fixed-width items too.
        let words = ["a", "bb", "ccc", "dddd", "eeeee"];
        let mut out = [0u64; 5];
        hash_batch_with_seed(&words, 7, &mut out);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(out[i], w.hash_with_seed(7));
        }
    }

    #[test]
    #[should_panic(expected = "output buffer shorter")]
    fn hash_batch_rejects_short_output() {
        let mut out = [0u64; 1];
        hash_batch_with_seed(&[1u64, 2], 0, &mut out);
    }

    #[test]
    fn distinct_items_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(i.hash_with_seed(DEFAULT_SEED));
        }
        assert_eq!(seen.len(), 100_000, "64-bit collision in 100k items");
    }
}
