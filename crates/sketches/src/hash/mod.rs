//! Hashing layer: MurmurHash3 plus the [`Hashable`] abstraction that maps
//! stream items into the 64-bit hash domain shared by all sketches.
//!
//! The paper models the hash function as "a random hash function h whose
//! outputs are uniformly distributed in the range [0, 1]" (§3). We work in
//! the integer domain instead: outputs are uniform in `0..=u64::MAX` and
//! `u64::MAX` plays the role of 1.0. The *seed* of the hash function is the
//! random choice the de-randomisation oracle of §4 fixes.

pub mod murmur3;

pub use murmur3::{murmur3_64, murmur3_x64_128};

/// The default hash seed, matching Apache DataSketches' update seed
/// (9001) so that behaviour is recognisable to users of the Java library.
pub const DEFAULT_SEED: u64 = 9001;

/// Types that can be fed into a sketch.
///
/// An implementation must be a *pure function of the value*: two equal
/// items must produce identical hashes for every seed, and unequal items
/// should collide only with probability ~2⁻⁶⁴. All implementations below
/// delegate to MurmurHash3 of a canonical byte encoding.
///
/// # Examples
///
/// ```
/// use fcds_sketches::hash::{Hashable, DEFAULT_SEED};
///
/// let a = 17u64.hash_with_seed(DEFAULT_SEED);
/// let b = 17u64.hash_with_seed(DEFAULT_SEED);
/// assert_eq!(a, b);
/// ```
pub trait Hashable {
    /// Hashes `self` into the 64-bit hash domain under the given seed.
    fn hash_with_seed(&self, seed: u64) -> u64;
}

impl Hashable for u64 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(&self.to_le_bytes(), seed)
    }
}

impl Hashable for i64 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(&self.to_le_bytes(), seed)
    }
}

impl Hashable for u32 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (*self as u64).hash_with_seed(seed)
    }
}

impl Hashable for i32 {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (*self as i64).hash_with_seed(seed)
    }
}

impl Hashable for f64 {
    /// Hashes the canonical bit pattern; `-0.0` is canonicalised to `0.0`
    /// so that numerically equal keys hash equally.
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        let canonical = if *self == 0.0 { 0.0f64 } else { *self };
        murmur3_64(&canonical.to_bits().to_le_bytes(), seed)
    }
}

impl Hashable for str {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self.as_bytes(), seed)
    }
}

impl Hashable for String {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.as_str().hash_with_seed(seed)
    }
}

impl Hashable for [u8] {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }
}

impl Hashable for Vec<u8> {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        murmur3_64(self, seed)
    }
}

impl<T: Hashable + ?Sized> Hashable for &T {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (**self).hash_with_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_and_i64_with_same_bits_hash_equal() {
        // Both encode as the same 8 LE bytes.
        assert_eq!(
            5u64.hash_with_seed(DEFAULT_SEED),
            5i64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn u32_widens_to_u64() {
        assert_eq!(
            7u32.hash_with_seed(DEFAULT_SEED),
            7u64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn negative_zero_canonicalised() {
        assert_eq!(
            (-0.0f64).hash_with_seed(DEFAULT_SEED),
            0.0f64.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn str_and_string_agree() {
        let s = String::from("hello sketch");
        assert_eq!(
            s.hash_with_seed(DEFAULT_SEED),
            "hello sketch".hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn reference_delegates() {
        let v = 99u64;
        assert_eq!(
            v.hash_with_seed(DEFAULT_SEED),
            v.hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn bytes_and_str_with_same_content_agree() {
        let b: &[u8] = b"abc";
        assert_eq!(
            b.hash_with_seed(DEFAULT_SEED),
            "abc".hash_with_seed(DEFAULT_SEED)
        );
    }

    #[test]
    fn distinct_items_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(i.hash_with_seed(DEFAULT_SEED));
        }
        assert_eq!(seen.len(), 100_000, "64-bit collision in 100k items");
    }
}
