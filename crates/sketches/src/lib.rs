//! # fcds-sketches — sequential data-sketch substrate
//!
//! This crate implements, from scratch, every *sequential* sketch the paper
//! [*Fast Concurrent Data Sketches*](https://arxiv.org/abs/1902.10995)
//! (PODC 2019) builds upon:
//!
//! * [`theta`] — Θ sketches for distinct counting: the KMV sketch of
//!   Algorithm 1 ([`theta::KmvThetaSketch`]), the quick-select family the
//!   paper evaluates ([`theta::QuickSelectThetaSketch`]), compact immutable
//!   sketches, and the set operations (union / intersection / A-not-B) that
//!   make Θ sketches *mergeable summaries*.
//! * [`quantiles`] — the mergeable Quantiles sketch of Agarwal et al.
//!   (PODS 2012), the paper's second instantiation (§6.2).
//! * [`hll`] — a HyperLogLog sketch (the artifact appendix exercises HLL;
//!   §8 names "other sketches" as future work for the framework).
//! * [`sampling`] — reservoir sampling, the paper's second pre-filtering
//!   example (§5.1).
//! * [`frequency`] — Misra–Gries heavy hitters, a fourth mergeable
//!   summary for exercising the concurrent framework's genericity.
//! * [`hash`] — MurmurHash3 (x64-128), the hash function used by Apache
//!   DataSketches, plus the [`hash::Hashable`] abstraction mapping stream
//!   items into the 64-bit hash domain.
//! * [`wire`] — the unified, versioned wire format: one self-describing
//!   envelope covering all four sketch families, with decoded images
//!   mergeable on nodes that never saw the streams ("sketch anywhere,
//!   merge anywhere").
//! * [`oracle`] — the de-randomisation oracle of §4: all coin flips and the
//!   hash-seed choice are drawn through an explicit oracle so that a sketch
//!   becomes a *deterministic* object with a sequential specification,
//!   which is what the r-relaxation of Definition 2 is defined against.
//!
//! Everything here is single-threaded; the concurrent machinery lives in
//! `fcds-core` and uses these types as building blocks via the composable
//! sketch interface.
//!
//! ## Hash domain conventions
//!
//! Like DataSketches, we work in the unsigned 64-bit hash domain: a stream
//! item is hashed to a `u64`, Θ is a `u64` threshold with `u64::MAX`
//! playing the role of 1.0, and a hash is *retained* iff `hash < theta`.
//! [`theta::theta_to_fraction`] converts to the `[0, 1]` real domain used
//! in the paper's analysis.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod error;
pub mod frequency;
pub mod hash;
pub mod hll;
pub mod oracle;
pub mod quantiles;
pub mod sampling;
pub mod theta;
pub mod wire;

pub use error::{Result, SketchError, WireError};
