//! The Misra–Gries frequent-items summary.

use crate::error::{Result, SketchError};
use std::collections::HashMap;
use std::hash::Hash;

/// A frequency estimate for one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequencyEstimate {
    /// Lower bound on the item's true count (the retained counter).
    pub lower_bound: u64,
    /// Upper bound: `lower_bound + max_error`.
    pub upper_bound: u64,
}

impl FrequencyEstimate {
    /// Whether the item is *guaranteed* to appear more than `threshold`
    /// times.
    pub fn surely_above(&self, threshold: u64) -> bool {
        self.lower_bound > threshold
    }

    /// Whether the item *may* appear more than `threshold` times.
    pub fn possibly_above(&self, threshold: u64) -> bool {
        self.upper_bound > threshold
    }
}

/// Misra–Gries heavy-hitters sketch with at most `k` counters.
///
/// Guarantees: for every item with true count `f`,
/// `estimate.lower_bound ≤ f ≤ estimate.lower_bound + max_error()`,
/// and `max_error() ≤ n/(k+1)`. Every item with `f > n/(k+1)` is
/// guaranteed to be present in the summary.
///
/// # Examples
///
/// ```
/// use fcds_sketches::frequency::MisraGriesSketch;
///
/// let mut mg = MisraGriesSketch::<&str>::new(8).unwrap();
/// for _ in 0..1_000 { mg.update("heavy"); }
/// for i in 0..500u64 {
///     let light = format!("light{i}");
///     mg.update_owned(Box::leak(light.into_boxed_str()) as &str);
/// }
/// let est = mg.estimate(&"heavy");
/// assert!(est.lower_bound >= 800);
/// assert!(est.upper_bound >= 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct MisraGriesSketch<T: Eq + Hash + Clone> {
    k: usize,
    n: u64,
    counters: HashMap<T, u64>,
    /// Total weight removed by decrements — the uniform over-/under-count
    /// slack of every absent or retained item.
    error: u64,
}

impl<T: Eq + Hash + Clone> MisraGriesSketch<T> {
    /// Creates a sketch holding at most `k` counters.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SketchError::invalid("k", "must be ≥ 1"));
        }
        Ok(MisraGriesSketch {
            k,
            n: 0,
            // Capacity is only a hint — cap it so a hostile `k` decoded
            // from the wire cannot drive a giant eager allocation. The
            // table still grows to the full k + 1 on demand.
            counters: HashMap::with_capacity(k.saturating_add(1).min(1 << 16)),
            error: 0,
        })
    }

    /// Reassembles a summary from its parts — the constructor behind the
    /// wire decoder and the concurrent engine's export hook. Duplicate
    /// items accumulate by addition; if more than `k` counters survive,
    /// Misra–Gries reductions run until `≤ k` remain (growing `error`
    /// accordingly), so a table merged from many shards collapses to a
    /// valid summary.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `k == 0`, a counter
    /// is `0`, or the counters plus `error` exceed `n` (every retained
    /// counter is a lower bound on a true count, so their total plus the
    /// reduction slack can never exceed the stream length).
    pub fn from_parts(
        k: usize,
        n: u64,
        error: u64,
        counters: impl IntoIterator<Item = (T, u64)>,
    ) -> Result<Self> {
        let mut sketch = Self::new(k)?;
        sketch.n = n;
        sketch.error = error;
        let mut total = error;
        for (item, count) in counters {
            if count == 0 {
                return Err(SketchError::invalid("counters", "zero counter retained"));
            }
            total = total
                .checked_add(count)
                .filter(|&t| t <= n)
                .ok_or_else(|| {
                    SketchError::invalid("counters", "counters + error exceed stream length n")
                })?;
            *sketch.counters.entry(item).or_insert(0) += count;
        }
        while sketch.counters.len() > sketch.k {
            sketch.reduce();
        }
        debug_assert!(sketch.counters.len() <= sketch.k);
        Ok(sketch)
    }

    /// Iterates the retained `(item, counter)` pairs in arbitrary
    /// (hash-map) order.
    pub fn counters(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counters.iter().map(|(item, &c)| (item, c))
    }

    /// Maximum number of counters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stream length processed so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The uniform error slack: any item's true count exceeds its
    /// retained counter by at most this much. Bounded by `n/(k+1)`.
    pub fn max_error(&self) -> u64 {
        self.error
    }

    /// Processes one stream item.
    pub fn update(&mut self, item: T) {
        self.update_weighted(item, 1);
    }

    /// Alias of [`Self::update`] for callers that hand over ownership
    /// explicitly (documentation nicety used in examples).
    pub fn update_owned(&mut self, item: T) {
        self.update(item);
    }

    /// Processes one stream item with a positive weight.
    pub fn update_weighted(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.n += weight;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += weight;
            return;
        }
        self.counters.insert(item, weight);
        if self.counters.len() > self.k {
            self.reduce();
        }
    }

    /// The Misra–Gries reduction: subtract the median-ish decrement (the
    /// minimum counter) from every counter and drop the zeros. One pass
    /// removes at least one counter; callers that accumulate more than
    /// `k + 1` counters (the multiway fan-in) loop until `≤ k` hold.
    fn reduce(&mut self) {
        let min = self
            .counters
            .values()
            .copied()
            .min()
            .expect("reduce on non-empty map");
        self.error += min;
        self.counters.retain(|_, c| {
            *c -= min;
            *c > 0
        });
    }

    /// Frequency estimate for an item.
    pub fn estimate(&self, item: &T) -> FrequencyEstimate {
        let lower = self.counters.get(item).copied().unwrap_or(0);
        FrequencyEstimate {
            lower_bound: lower,
            upper_bound: lower + self.error,
        }
    }

    /// All retained items whose *upper* bound exceeds `threshold`
    /// (no false negatives), sorted by decreasing lower bound.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(T, FrequencyEstimate)> {
        let mut out: Vec<(T, FrequencyEstimate)> = self
            .counters
            .iter()
            .map(|(item, &c)| {
                (
                    item.clone(),
                    FrequencyEstimate {
                        lower_bound: c,
                        upper_bound: c + self.error,
                    },
                )
            })
            .filter(|(_, e)| e.upper_bound > threshold)
            .collect();
        out.sort_by_key(|(_, e)| std::cmp::Reverse(e.lower_bound));
        out
    }

    /// Merges another summary into this one (counter addition followed by
    /// a reduction back to `k` counters — the mergeable-summaries
    /// construction).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] if the `k` parameters differ.
    pub fn merge(&mut self, other: &MisraGriesSketch<T>) -> Result<()> {
        if other.k != self.k {
            return Err(SketchError::incompatible(format!(
                "k mismatch: {} vs {}",
                self.k, other.k
            )));
        }
        self.n += other.n;
        self.error += other.error;
        for (item, &c) in &other.counters {
            *self.counters.entry(item.clone()).or_insert(0) += c;
        }
        while self.counters.len() > self.k {
            self.reduce();
        }
        Ok(())
    }

    /// Resets to the empty state.
    pub fn clear(&mut self) {
        self.n = 0;
        self.error = 0;
        self.counters.clear();
    }

    /// Number of retained counters.
    pub fn retained(&self) -> usize {
        self.counters.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_k() {
        assert!(MisraGriesSketch::<u64>::new(0).is_err());
    }

    #[test]
    fn exact_below_k_distinct() {
        let mut mg = MisraGriesSketch::new(16).unwrap();
        for i in 0..10u64 {
            for _ in 0..=i {
                mg.update(i);
            }
        }
        assert_eq!(mg.max_error(), 0);
        for i in 0..10u64 {
            assert_eq!(mg.estimate(&i).lower_bound, i + 1);
        }
        assert_eq!(mg.estimate(&99).lower_bound, 0);
    }

    #[test]
    fn error_bounded_by_n_over_k_plus_1() {
        let mut mg = MisraGriesSketch::new(9).unwrap();
        for i in 0..100_000u64 {
            mg.update(i % 1_000); // uniform: worst case for MG
        }
        assert!(mg.max_error() as f64 <= 100_000.0 / 10.0);
    }

    #[test]
    fn bounds_bracket_truth() {
        let mut mg = MisraGriesSketch::new(8).unwrap();
        // heavy: 10_000 occurrences, light items once each.
        for _ in 0..10_000 {
            mg.update(0u64);
        }
        for i in 1..5_000u64 {
            mg.update(i);
        }
        let est = mg.estimate(&0);
        assert!(est.lower_bound <= 10_000);
        assert!(est.upper_bound >= 10_000);
        assert!(est.surely_above(5_000));
    }

    #[test]
    fn heavy_hitters_no_false_negatives() {
        let mut mg = MisraGriesSketch::new(16).unwrap();
        let n = 50_000u64;
        // Three items above n/(k+1); the rest uniform noise.
        for _ in 0..10_000 {
            mg.update(1u64);
        }
        for _ in 0..8_000 {
            mg.update(2u64);
        }
        for _ in 0..5_000 {
            mg.update(3u64);
        }
        for i in 0..(n - 23_000) {
            mg.update(100 + i % 9_000);
        }
        let hh = mg.heavy_hitters(n / 17);
        let ids: Vec<u64> = hh.iter().map(|(i, _)| *i).collect();
        for heavy in [1u64, 2, 3] {
            assert!(ids.contains(&heavy), "missing heavy hitter {heavy}");
        }
        // Sorted by decreasing lower bound.
        assert!(hh
            .windows(2)
            .all(|w| w[0].1.lower_bound >= w[1].1.lower_bound));
    }

    #[test]
    fn weighted_updates() {
        let mut mg = MisraGriesSketch::new(4).unwrap();
        mg.update_weighted("a", 100);
        mg.update_weighted("b", 50);
        mg.update_weighted("c", 0); // no-op
        assert_eq!(mg.n(), 150);
        assert_eq!(mg.estimate(&"a").lower_bound, 100);
    }

    #[test]
    fn merge_equals_concatenation_bounds() {
        let mut a = MisraGriesSketch::new(8).unwrap();
        let mut b = MisraGriesSketch::new(8).unwrap();
        let mut whole = MisraGriesSketch::new(8).unwrap();
        for i in 0..30_000u64 {
            let item = if i % 3 == 0 { 7 } else { i % 500 };
            whole.update(item);
            if i % 2 == 0 {
                a.update(item);
            } else {
                b.update(item);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.n(), whole.n());
        // The merged bounds must still bracket the true count of the
        // heavy item (10k occurrences of 7).
        let est = a.estimate(&7);
        let truth = 30_000 / 3;
        assert!(est.lower_bound <= truth);
        assert!(est.upper_bound >= truth);
        // Error stays within the mergeable-summaries bound n/(k+1) plus
        // slack for the two-phase reduction.
        assert!(a.max_error() <= 2 * whole.n() / 9 + 1);
    }

    #[test]
    fn merge_k_mismatch_rejected() {
        let mut a = MisraGriesSketch::<u64>::new(4).unwrap();
        let b = MisraGriesSketch::<u64>::new(8).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut mg = MisraGriesSketch::new(4).unwrap();
        for i in 0..1_000u64 {
            mg.update(i);
        }
        mg.clear();
        assert!(mg.is_empty());
        assert_eq!(mg.max_error(), 0);
        assert_eq!(mg.estimate(&1).upper_bound, 0);
    }

    #[test]
    fn retained_never_exceeds_k() {
        let mut mg = MisraGriesSketch::new(5).unwrap();
        for i in 0..10_000u64 {
            mg.update(i);
            assert!(mg.retained() <= 5);
        }
    }
}
