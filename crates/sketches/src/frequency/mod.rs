//! Frequent-items (heavy hitters) sketch: Misra–Gries.
//!
//! A fourth sketch family for exercising the concurrent framework's
//! genericity (§8 of the paper names "other sketches" as future work).
//! Misra–Gries maintains at most `k` counters; an item's true count `f`
//! is bracketed by the reported estimate: `est ≤ f ≤ est + error_bound`
//! where the bound is at most `n/(k+1)` (n = stream length). Crucially
//! for us it is a *mergeable summary* (Agarwal et al., PODS 2012): two
//! summaries merge by adding counters and re-applying the k-counter
//! reduction, which is exactly what the propagator needs.

mod misra_gries;

pub use misra_gries::{FrequencyEstimate, MisraGriesSketch};
