//! Error type shared by all sketches in the workspace.

use std::fmt;

/// Errors returned by sketch constructors and operations.
///
/// Sketch *updates* and *queries* are infallible by design (they are the
/// hot path); errors can only arise from invalid configuration or from
/// operations that combine incompatible sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SketchError {
    /// A configuration parameter was out of its documented range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// Two sketches could not be combined (merge / set operation) because
    /// their configurations are incompatible.
    Incompatible {
        /// Description of the mismatch.
        reason: String,
    },
    /// A serialised sketch image could not be decoded.
    Corrupt {
        /// Description of the corruption.
        reason: String,
    },
}

impl SketchError {
    /// Convenience constructor for [`SketchError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SketchError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SketchError::Incompatible`].
    pub fn incompatible(reason: impl Into<String>) -> Self {
        SketchError::Incompatible {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SketchError::Corrupt`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        SketchError::Corrupt {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SketchError::Incompatible { reason } => {
                write!(f, "incompatible sketches: {reason}")
            }
            SketchError::Corrupt { reason } => {
                write!(f, "corrupt sketch image: {reason}")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SketchError>;

/// Decoding failures of the unified wire format (see the [`crate::wire`]
/// module).
///
/// Every way an untrusted byte string can fail to be a valid sketch image
/// maps to exactly one variant, so tests (and callers) can assert *which*
/// corruption class was detected. Decoders never panic and never allocate
/// proportionally to an unvalidated length field.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before a complete structure could be read.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic number is not `FCDS`.
    BadMagic {
        /// The 32-bit value found in the magic position.
        found: u32,
    },
    /// The header's format version is not one this build understands.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The header's sketch-family code is not assigned.
    UnknownFamily {
        /// The family byte found.
        found: u8,
    },
    /// The image is a valid family, but not the one the caller asked for.
    FamilyMismatch {
        /// Family the decoder expected.
        expected: &'static str,
        /// Family named by the header.
        found: &'static str,
    },
    /// The header's declared payload length disagrees with the bytes
    /// actually present after the header.
    PayloadLength {
        /// Length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        have: u64,
    },
    /// The header's item width disagrees with the item type being decoded.
    ItemWidth {
        /// Width the decoder's item type requires.
        expected: u8,
        /// Width named by the header.
        found: u8,
    },
    /// The payload parsed, but violates a structural invariant of its
    /// sketch family (unsorted hashes, weight mismatch, out-of-range
    /// register, …).
    Invariant {
        /// Which invariant check failed.
        context: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Two wire images could not be merged (seed / parameter mismatch).
    Incompatible {
        /// Description of the mismatch.
        detail: String,
    },
}

impl WireError {
    /// Convenience constructor for [`WireError::Invariant`].
    pub fn invariant(context: &'static str, detail: impl Into<String>) -> Self {
        WireError::Invariant {
            context,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`WireError::Incompatible`].
    pub fn incompatible(detail: impl Into<String>) -> Self {
        WireError::Incompatible {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                have,
            } => write!(f, "truncated {context}: need {needed} bytes, have {have}"),
            WireError::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found}")
            }
            WireError::UnknownFamily { found } => write!(f, "unknown sketch family {found:#04x}"),
            WireError::FamilyMismatch { expected, found } => {
                write!(f, "family mismatch: expected {expected}, found {found}")
            }
            WireError::PayloadLength { declared, have } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, {have} present"
            ),
            WireError::ItemWidth { expected, found } => {
                write!(f, "item width mismatch: expected {expected}, found {found}")
            }
            WireError::Invariant { context, detail } => {
                write!(f, "invariant violated ({context}): {detail}")
            }
            WireError::Incompatible { detail } => {
                write!(f, "incompatible wire images: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for SketchError {
    /// Wire failures fold into the coarse [`SketchError`] taxonomy:
    /// merge-compatibility failures stay [`SketchError::Incompatible`],
    /// everything else is a [`SketchError::Corrupt`] image.
    fn from(e: WireError) -> Self {
        match e {
            WireError::Incompatible { detail } => SketchError::Incompatible { reason: detail },
            other => SketchError::Corrupt {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = SketchError::invalid("k", "must be a power of two");
        assert_eq!(
            e.to_string(),
            "invalid parameter `k`: must be a power of two"
        );
    }

    #[test]
    fn display_incompatible() {
        let e = SketchError::incompatible("k mismatch: 128 vs 256");
        assert_eq!(
            e.to_string(),
            "incompatible sketches: k mismatch: 128 vs 256"
        );
    }

    #[test]
    fn display_corrupt() {
        let e = SketchError::corrupt("truncated preamble");
        assert_eq!(e.to_string(), "corrupt sketch image: truncated preamble");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SketchError::invalid("x", "y"));
    }
}
