//! Error type shared by all sketches in the workspace.

use std::fmt;

/// Errors returned by sketch constructors and operations.
///
/// Sketch *updates* and *queries* are infallible by design (they are the
/// hot path); errors can only arise from invalid configuration or from
/// operations that combine incompatible sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SketchError {
    /// A configuration parameter was out of its documented range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// Two sketches could not be combined (merge / set operation) because
    /// their configurations are incompatible.
    Incompatible {
        /// Description of the mismatch.
        reason: String,
    },
    /// A serialised sketch image could not be decoded.
    Corrupt {
        /// Description of the corruption.
        reason: String,
    },
}

impl SketchError {
    /// Convenience constructor for [`SketchError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SketchError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SketchError::Incompatible`].
    pub fn incompatible(reason: impl Into<String>) -> Self {
        SketchError::Incompatible {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SketchError::Corrupt`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        SketchError::Corrupt {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SketchError::Incompatible { reason } => {
                write!(f, "incompatible sketches: {reason}")
            }
            SketchError::Corrupt { reason } => {
                write!(f, "corrupt sketch image: {reason}")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SketchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = SketchError::invalid("k", "must be a power of two");
        assert_eq!(
            e.to_string(),
            "invalid parameter `k`: must be a power of two"
        );
    }

    #[test]
    fn display_incompatible() {
        let e = SketchError::incompatible("k mismatch: 128 vs 256");
        assert_eq!(
            e.to_string(),
            "incompatible sketches: k mismatch: 128 vs 256"
        );
    }

    #[test]
    fn display_corrupt() {
        let e = SketchError::corrupt("truncated preamble");
        assert_eq!(e.to_string(), "corrupt sketch image: truncated preamble");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SketchError::invalid("x", "y"));
    }
}
