//! Borrowed, zero-copy views over raw wire images.
//!
//! A view validates the 16-byte envelope (magic, version, family, item
//! width, exact-length rule) plus the family's *structural* frame once,
//! and then serves items straight out of the input `&[u8]` — no payload
//! materialisation, no allocation. Views are the parsing tier under the
//! multiway fan-in kernels in [`super::fanin`]; the owned decoders behind
//! [`super::WireDecode`] remain the right tool when the sketch itself is
//! needed.
//!
//! # Validation contract
//!
//! All four views reject exactly the inputs the owned decoders reject,
//! with the same [`WireError`] taxonomy — but *where* the item-level
//! checks run differs by family, so the hot path never walks the bytes
//! twice:
//!
//! * [`ThetaWireView`] and [`HllWireView`] validate the header and the
//!   fixed fields (seed/Θ/count consistency, `lg_m` range, register
//!   count) at parse time; per-item checks (hash ordering and range,
//!   register rank bounds) run *fused into consumption* — either inside
//!   the fan-in kernels, which validate every byte they stream, or via
//!   the explicit [`ThetaWireView::validate`] / [`HllWireView::validate`]
//!   helpers.
//! * [`LadderWireView`] and [`MgWireView`] validate everything at parse
//!   time (one streaming pass, still allocation-free): their consumers
//!   materialise owned runs/counters anyway, so there is no second pass
//!   to fuse into, and the infallible iterators keep the kernels simple.
//!
//! Like the decoders, views never panic on any input.

use super::{
    SketchFamily, WireHeader, WireItem, FLAG_QUANTILES_UPDATABLE, FLAG_THETA_UNSORTED,
    WIRE_HEADER_LEN,
};
use crate::error::WireError;
use crate::hll::{MAX_LG_M, MIN_LG_M};
use bytes::Buf;

/// Reads the little-endian `u64` at item index `i` of `items` (the caller
/// guarantees `8 * (i + 1) <= items.len()`).
#[inline]
fn u64_at(items: &[u8], i: usize) -> u64 {
    let off = 8 * i;
    // The slice bound is established at parse time; the conversion can
    // never fail for an 8-byte slice.
    u64::from_le_bytes(items[off..off + 8].try_into().unwrap_or([0; 8]))
}

fn family_check(header: &WireHeader, expected: SketchFamily) -> Result<(), WireError> {
    if header.family != expected {
        return Err(WireError::FamilyMismatch {
            expected: expected.name(),
            found: header.family.name(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Θ
// ---------------------------------------------------------------------------

/// Byte offset of the first hash inside a Θ wire image
/// (envelope + `seed | theta | count`).
pub(crate) const THETA_ITEMS_OFF: usize = WIRE_HEADER_LEN + 24;

/// A borrowed view over a Θ wire image: header and fixed fields parsed,
/// hashes served straight from the payload bytes.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{QuickSelectThetaSketch, ThetaRead};
/// use fcds_sketches::wire::{ThetaWireView, WireEncode};
///
/// let mut s = QuickSelectThetaSketch::new(6, 7).unwrap();
/// for i in 0..1000u64 { s.update(i); }
/// let image = s.compact().to_wire_bytes();
/// let view = ThetaWireView::parse(&image).unwrap();
/// assert_eq!(view.len(), s.compact().retained());
/// assert!(view.is_sorted());
/// assert!(view.hashes().all(|h| h < view.theta()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThetaWireView<'a> {
    seed: u64,
    theta: u64,
    sorted: bool,
    /// Exactly `count × 8` bytes of little-endian hashes.
    items: &'a [u8],
}

impl<'a> ThetaWireView<'a> {
    /// Parses the envelope and the fixed Θ fields of a raw image.
    ///
    /// Item-level invariants (hash ordering and range) are *not* checked
    /// here — see the module docs; use [`Self::validate`] for
    /// decoder-equivalent strictness without materialising.
    ///
    /// # Errors
    ///
    /// The same structural [`WireError`]s as
    /// [`CompactThetaSketch::from_wire_bytes`](super::WireDecode):
    /// header damage, family or item-width mismatch, truncated fixed
    /// fields, or a hash count inconsistent with the payload length.
    pub fn parse(data: &'a [u8]) -> Result<Self, WireError> {
        let (header, payload) = WireHeader::parse(data)?;
        family_check(&header, SketchFamily::Theta)?;
        if header.item_width != 8 {
            return Err(WireError::ItemWidth {
                expected: 8,
                found: header.item_width,
            });
        }
        if payload.len() < 24 {
            return Err(WireError::Truncated {
                context: "theta payload",
                needed: 24,
                have: payload.len(),
            });
        }
        let mut fixed = payload;
        let seed = fixed.get_u64_le();
        let theta = fixed.get_u64_le();
        let count = fixed.get_u64_le();
        let need = count
            .checked_mul(8)
            .and_then(|b| b.checked_add(24))
            .ok_or_else(|| WireError::invariant("hash count", "count overflows size"))?;
        if need != header.payload_len {
            return Err(WireError::invariant(
                "hash count",
                format!(
                    "count {count} needs {need} payload bytes, header carries {}",
                    header.payload_len
                ),
            ));
        }
        Ok(ThetaWireView {
            seed,
            theta,
            sorted: header.flags & FLAG_THETA_UNSORTED == 0,
            items: &payload[24..],
        })
    }

    /// The hash seed recorded in the image.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The Θ threshold recorded in the image.
    pub fn theta(&self) -> u64 {
        self.theta
    }

    /// Number of retained hashes.
    pub fn len(&self) -> usize {
        self.items.len() / 8
    }

    /// Whether the image retains no hashes.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the payload is canonical (strictly ascending hashes) as
    /// opposed to an insertion-order
    /// [`encode_theta_unsorted`](super::encode_theta_unsorted) image.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Iterates the hashes in payload order, straight from the bytes.
    pub fn hashes(&self) -> impl Iterator<Item = u64> + 'a {
        let items = self.items;
        (0..items.len() / 8).map(move |i| u64_at(items, i))
    }

    /// Runs the full item-level validation of the owned decoder — every
    /// hash nonzero and below Θ, strictly ascending when the image is
    /// canonical — without materialising anything.
    ///
    /// # Errors
    ///
    /// The same [`WireError::Invariant`]s as the decoder, in the same
    /// first-violation order.
    pub fn validate(&self) -> Result<(), WireError> {
        let mut prev = 0u64;
        for h in self.hashes() {
            if h == 0 {
                return Err(WireError::invariant("theta hashes", "hash 0 is reserved"));
            }
            if h >= self.theta {
                return Err(WireError::invariant(
                    "theta hashes",
                    format!("hash {h} not below theta {}", self.theta),
                ));
            }
            if self.sorted && h <= prev {
                return Err(WireError::invariant(
                    "theta hashes",
                    "hashes not strictly ascending",
                ));
            }
            prev = h;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// HLL
// ---------------------------------------------------------------------------

/// A borrowed view over an HLL wire image: the register array is served
/// as a direct sub-slice of the input.
///
/// # Examples
///
/// ```
/// use fcds_sketches::hll::HllSketch;
/// use fcds_sketches::wire::{HllWireView, WireEncode};
///
/// let mut h = HllSketch::new(8, 42).unwrap();
/// for i in 0..5000u64 { h.update(i); }
/// let image = h.to_wire_bytes();
/// let view = HllWireView::parse(&image).unwrap();
/// assert_eq!(view.registers(), h.registers());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HllWireView<'a> {
    lg_m: u8,
    seed: u64,
    /// Exactly `2^lg_m` raw register bytes.
    registers: &'a [u8],
}

impl<'a> HllWireView<'a> {
    /// Parses the envelope and the fixed HLL fields of a raw image.
    ///
    /// Register *values* are not range-checked here (see the module
    /// docs); [`Self::validate`] applies the decoder's per-register
    /// bound, and the fan-in kernel applies it to its accumulator, which
    /// a register-max fold can only have preserved or raised.
    ///
    /// # Errors
    ///
    /// The same structural [`WireError`]s as
    /// [`HllSketch::from_wire_bytes`](super::WireDecode): header damage,
    /// family or item-width mismatch, `lg_m` out of range, or a payload
    /// length that does not carry exactly `2^lg_m` registers.
    pub fn parse(data: &'a [u8]) -> Result<Self, WireError> {
        let (header, payload) = WireHeader::parse(data)?;
        family_check(&header, SketchFamily::Hll)?;
        if header.item_width != 1 {
            return Err(WireError::ItemWidth {
                expected: 1,
                found: header.item_width,
            });
        }
        if payload.len() < 16 {
            return Err(WireError::Truncated {
                context: "hll payload",
                needed: 16,
                have: payload.len(),
            });
        }
        let mut fixed = payload;
        let lg_m = fixed.get_u8();
        if !(MIN_LG_M..=MAX_LG_M).contains(&lg_m) {
            return Err(WireError::invariant(
                "hll lg_m",
                format!("lg_m {lg_m} out of range {MIN_LG_M}..={MAX_LG_M}"),
            ));
        }
        fixed.advance(7);
        let seed = fixed.get_u64_le();
        let m = 1u64 << lg_m;
        if header.payload_len != 16 + m {
            return Err(WireError::invariant(
                "hll registers",
                format!(
                    "2^lg_m = {m} registers need {} payload bytes, header carries {}",
                    16 + m,
                    header.payload_len
                ),
            ));
        }
        Ok(HllWireView {
            lg_m,
            seed,
            registers: &payload[16..],
        })
    }

    /// The configured `lg_m`.
    pub fn lg_m(&self) -> u8 {
        self.lg_m
    }

    /// The number of registers `m = 2^lg_m`.
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// The hash seed recorded in the image.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw register bytes, borrowed from the image.
    pub fn registers(&self) -> &'a [u8] {
        self.registers
    }

    /// Applies the decoder's per-register rank bound
    /// (`register ≤ 64 − lg_m + 1`).
    ///
    /// # Errors
    ///
    /// The same [`WireError::Invariant`] as the decoder.
    pub fn validate(&self) -> Result<(), WireError> {
        validate_registers(self.lg_m, self.registers)
    }
}

/// Checks every register against the maximum representable rank for
/// `lg_m` — shared by [`HllWireView::validate`] and the fan-in kernel's
/// fused accumulator check.
pub(crate) fn validate_registers(lg_m: u8, registers: &[u8]) -> Result<(), WireError> {
    let max_rho = 64 - lg_m + 1;
    for &r in registers {
        if r > max_rho {
            return Err(WireError::invariant(
                "hll registers",
                format!("register value {r} exceeds max rank {max_rho}"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Quantiles ladder
// ---------------------------------------------------------------------------

/// A borrowed view over a Quantiles *ladder* wire image: fully validated
/// at parse time, runs iterated straight out of the payload bytes.
///
/// # Examples
///
/// ```
/// use fcds_sketches::quantiles::QuantilesSketch;
/// use fcds_sketches::wire::{LadderWireView, WireEncode};
///
/// let mut q = QuantilesSketch::<u64>::with_seed(32, 5).unwrap();
/// for i in 0..10_000u64 { q.update(i); }
/// let image = q.ladder().to_wire_bytes();
/// let view = LadderWireView::<u64>::parse(&image).unwrap();
/// assert_eq!(view.n(), 10_000);
/// let total: u64 = view.runs().map(|r| r.len() as u64 * r.weight()).sum();
/// assert_eq!(total, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct LadderWireView<'a, T> {
    n: u64,
    run_count: u32,
    min_item: Option<T>,
    max_item: Option<T>,
    /// The validated run region: `run_count × (weight | len | items…)`.
    runs_bytes: &'a [u8],
}

impl<'a, T: Ord + Clone + WireItem> LadderWireView<'a, T> {
    /// Parses *and fully validates* a ladder image in one streaming,
    /// allocation-free pass: per-run sortedness, the `[min, max]` range
    /// envelope, and the weight accounting `Σ len·weight = n`.
    ///
    /// # Errors
    ///
    /// Exactly the [`WireError`]s of
    /// [`QuantilesLadder::from_wire_bytes`](super::WireDecode), in the
    /// same first-violation order.
    pub fn parse(data: &'a [u8]) -> Result<Self, WireError> {
        Self::parse_sink(data, &mut NoopLadderSink)
    }

    /// [`Self::parse`] with a streaming observer: `sink` sees every run
    /// header and every validated item *during* the validation pass, so
    /// a consumer that materialises the runs (the fan-in kernel) never
    /// decodes an item twice. On an error the sink may have observed a
    /// prefix of the image; callers discard it.
    pub(crate) fn parse_sink(
        data: &'a [u8],
        sink: &mut impl LadderRunSink<T>,
    ) -> Result<Self, WireError> {
        let (header, payload) = WireHeader::parse(data)?;
        family_check(&header, SketchFamily::Quantiles)?;
        if header.flags & FLAG_QUANTILES_UPDATABLE != 0 {
            return Err(WireError::invariant(
                "quantiles flags",
                "image is an updatable sketch, not a ladder \
                 (use QuantilesSketch::from_bytes)",
            ));
        }
        if header.item_width as usize != T::WIDTH {
            return Err(WireError::ItemWidth {
                expected: T::WIDTH as u8,
                found: header.item_width,
            });
        }
        if payload.len() < 16 {
            return Err(WireError::Truncated {
                context: "ladder payload",
                needed: 16,
                have: payload.len(),
            });
        }
        let mut rest = payload;
        let n = rest.get_u64_le();
        let run_count = rest.get_u32_le();
        let _pad = rest.get_u32_le();
        let (min_item, max_item) = if n > 0 {
            if rest.remaining() < 2 * T::WIDTH {
                return Err(WireError::Truncated {
                    context: "ladder min/max",
                    needed: 2 * T::WIDTH,
                    have: rest.remaining(),
                });
            }
            let min = T::read_from(&mut rest);
            let max = T::read_from(&mut rest);
            if min > max {
                return Err(WireError::invariant("ladder min/max", "min above max"));
            }
            (Some(min), Some(max))
        } else {
            (None, None)
        };
        let runs_bytes = rest;
        let mut weighted_total = 0u64;
        for _ in 0..run_count {
            if rest.remaining() < 16 {
                return Err(WireError::Truncated {
                    context: "ladder run header",
                    needed: 16,
                    have: rest.remaining(),
                });
            }
            let weight = rest.get_u64_le();
            let len = rest.get_u64_le();
            if weight == 0 || len == 0 {
                return Err(WireError::invariant(
                    "ladder run",
                    "runs must be non-empty with weight >= 1",
                ));
            }
            let bytes_needed = len
                .checked_mul(T::WIDTH as u64)
                .ok_or_else(|| WireError::invariant("ladder run", "run length overflows size"))?;
            if (rest.remaining() as u64) < bytes_needed {
                return Err(WireError::Truncated {
                    context: "ladder run items",
                    needed: bytes_needed as usize,
                    have: rest.remaining(),
                });
            }
            sink.run(weight, len as usize);
            // One streaming pass over the run: sortedness via the
            // previous item, range envelope via first/last.
            let mut prev: Option<T> = None;
            for i in 0..len {
                let item = T::read_from(&mut rest);
                if prev.as_ref().is_some_and(|p| *p > item) {
                    return Err(WireError::invariant("ladder run", "run not sorted"));
                }
                match (&min_item, &max_item) {
                    (Some(min), Some(max)) => {
                        if (i == 0 && item < *min) || (i == len - 1 && item > *max) {
                            return Err(WireError::invariant(
                                "ladder run",
                                "retained item outside [min, max]",
                            ));
                        }
                    }
                    _ => {
                        return Err(WireError::invariant(
                            "ladder run",
                            "non-empty run in an empty (n = 0) ladder",
                        ));
                    }
                }
                sink.item(&item);
                prev = Some(item);
            }
            weighted_total = weighted_total
                .checked_add(
                    len.checked_mul(weight)
                        .ok_or_else(|| WireError::invariant("ladder run", "weight overflow"))?,
                )
                .ok_or_else(|| WireError::invariant("ladder run", "weight overflow"))?;
        }
        if rest.has_remaining() {
            return Err(WireError::invariant(
                "ladder payload",
                format!("{} trailing bytes after last run", rest.remaining()),
            ));
        }
        if weighted_total != n {
            return Err(WireError::invariant(
                "ladder weight",
                format!("runs carry weight {weighted_total}, header says n = {n}"),
            ));
        }
        Ok(LadderWireView {
            n,
            run_count,
            min_item,
            max_item,
            runs_bytes,
        })
    }

    /// Total stream length the image summarises.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of sorted runs in the image.
    pub fn run_count(&self) -> usize {
        self.run_count as usize
    }

    /// The exact minimum item of the summarised stream, if any.
    pub fn min_item(&self) -> Option<&T> {
        self.min_item.as_ref()
    }

    /// The exact maximum item of the summarised stream, if any.
    pub fn max_item(&self) -> Option<&T> {
        self.max_item.as_ref()
    }

    /// Iterates the borrowed runs in stored order. Infallible: the
    /// region was validated by [`Self::parse`].
    pub fn runs(&self) -> LadderWireRuns<'a, T> {
        LadderWireRuns {
            rest: self.runs_bytes,
            remaining: self.run_count,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Streaming observer for [`LadderWireView::parse_sink`]: sees each run
/// header and each item as the validation pass decodes it.
pub(crate) trait LadderRunSink<T> {
    /// A new run begins; `len` items of weight `weight` follow. The
    /// length has already been bounds-checked against the payload, so
    /// sizing a buffer from it cannot over-allocate.
    fn run(&mut self, weight: u64, len: usize);
    /// The next validated item of the current run, in stored order.
    fn item(&mut self, item: &T);
}

/// The observer behind the plain [`LadderWireView::parse`]: does
/// nothing, and inlines away entirely.
pub(crate) struct NoopLadderSink;

impl<T> LadderRunSink<T> for NoopLadderSink {
    fn run(&mut self, _weight: u64, _len: usize) {}
    fn item(&mut self, _item: &T) {}
}

/// Iterator over the borrowed runs of a [`LadderWireView`].
#[derive(Debug, Clone)]
pub struct LadderWireRuns<'a, T> {
    rest: &'a [u8],
    remaining: u32,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: WireItem> Iterator for LadderWireRuns<'a, T> {
    type Item = LadderWireRun<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let weight = self.rest.get_u64_le();
        let len = self.rest.get_u64_le() as usize;
        let (items_bytes, rest) = self.rest.split_at(len * T::WIDTH);
        self.rest = rest;
        Some(LadderWireRun {
            weight,
            items_bytes,
            _marker: std::marker::PhantomData,
        })
    }
}

/// One borrowed sorted run of a ladder image: a weight and the raw item
/// bytes, decoded on the fly by [`Self::items`].
#[derive(Debug, Clone, Copy)]
pub struct LadderWireRun<'a, T> {
    weight: u64,
    items_bytes: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: WireItem> LadderWireRun<'a, T> {
    /// The run's per-item weight.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Number of items in the run.
    pub fn len(&self) -> usize {
        self.items_bytes.len() / T::WIDTH
    }

    /// Whether the run is empty (never true for a validated image).
    pub fn is_empty(&self) -> bool {
        self.items_bytes.is_empty()
    }

    /// Decodes the run's items in stored (sorted) order.
    pub fn items(&self) -> impl Iterator<Item = T> + 'a {
        let mut rest = self.items_bytes;
        std::iter::from_fn(move || {
            if rest.is_empty() {
                None
            } else {
                Some(T::read_from(&mut rest))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Misra–Gries
// ---------------------------------------------------------------------------

/// A borrowed view over a Misra–Gries wire image: fully validated at
/// parse time, `(item, counter)` entries decoded on the fly.
///
/// # Examples
///
/// ```
/// use fcds_sketches::frequency::MisraGriesSketch;
/// use fcds_sketches::wire::{MgWireView, WireEncode};
///
/// let mut mg = MisraGriesSketch::<u64>::new(8).unwrap();
/// for i in 0..100u64 { mg.update(i % 5); }
/// let image = mg.to_wire_bytes();
/// let view = MgWireView::<u64>::parse(&image).unwrap();
/// assert_eq!(view.n(), 100);
/// assert_eq!(view.entries().count(), 5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MgWireView<'a, T> {
    k: u64,
    n: u64,
    error: u64,
    count: u64,
    entries_bytes: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: Ord + Clone + WireItem> MgWireView<'a, T> {
    /// Parses *and fully validates* a Misra–Gries image in one
    /// streaming, allocation-free pass: strictly ascending items,
    /// nonzero counters, and `Σ counters + error ≤ n`.
    ///
    /// # Errors
    ///
    /// Exactly the [`WireError`]s of
    /// [`MisraGriesSketch::from_wire_bytes`](super::WireDecode), in the
    /// same first-violation order.
    pub fn parse(data: &'a [u8]) -> Result<Self, WireError> {
        let (header, payload) = WireHeader::parse(data)?;
        family_check(&header, SketchFamily::Frequency)?;
        if header.item_width as usize != T::WIDTH {
            return Err(WireError::ItemWidth {
                expected: T::WIDTH as u8,
                found: header.item_width,
            });
        }
        if payload.len() < 32 {
            return Err(WireError::Truncated {
                context: "misra-gries payload",
                needed: 32,
                have: payload.len(),
            });
        }
        let mut rest = payload;
        let k = rest.get_u64_le();
        let n = rest.get_u64_le();
        let error = rest.get_u64_le();
        let count = rest.get_u64_le();
        if k == 0 {
            return Err(WireError::invariant("misra-gries k", "k must be >= 1"));
        }
        if count > k {
            return Err(WireError::invariant(
                "misra-gries counters",
                format!("{count} counters exceed k = {k}"),
            ));
        }
        let entry_width = (T::WIDTH as u64) + 8;
        let need = count
            .checked_mul(entry_width)
            .and_then(|b| b.checked_add(32))
            .ok_or_else(|| WireError::invariant("misra-gries counters", "count overflows size"))?;
        if need != header.payload_len {
            return Err(WireError::invariant(
                "misra-gries counters",
                format!(
                    "count {count} needs {need} payload bytes, header carries {}",
                    header.payload_len
                ),
            ));
        }
        let entries_bytes = rest;
        let mut prev: Option<T> = None;
        let mut counter_sum = 0u64;
        for _ in 0..count {
            let item = T::read_from(&mut rest);
            let counter = rest.get_u64_le();
            if counter == 0 {
                return Err(WireError::invariant(
                    "misra-gries counters",
                    "zero counter retained",
                ));
            }
            if prev.as_ref().is_some_and(|p| item <= *p) {
                return Err(WireError::invariant(
                    "misra-gries counters",
                    "items not strictly ascending",
                ));
            }
            counter_sum = counter_sum.checked_add(counter).ok_or_else(|| {
                WireError::invariant("misra-gries counters", "counter sum overflow")
            })?;
            prev = Some(item);
        }
        if counter_sum.checked_add(error).is_none_or(|total| total > n) {
            return Err(WireError::invariant(
                "misra-gries weight",
                format!("counters ({counter_sum}) + error ({error}) exceed n = {n}"),
            ));
        }
        Ok(MgWireView {
            k,
            n,
            error,
            count,
            entries_bytes,
            _marker: std::marker::PhantomData,
        })
    }

    /// Maximum number of counters.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Stream length the image summarises.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The image's uniform error slack.
    pub fn error(&self) -> u64 {
        self.error
    }

    /// Number of retained counters.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Decodes the `(item, counter)` entries in stored (item-ascending)
    /// order. Infallible: the region was validated by [`Self::parse`].
    pub fn entries(&self) -> impl Iterator<Item = (T, u64)> + 'a {
        let mut rest = self.entries_bytes;
        let mut remaining = self.count;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            let item = T::read_from(&mut rest);
            let counter = rest.get_u64_le();
            Some((item, counter))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::MisraGriesSketch;
    use crate::hll::HllSketch;
    use crate::quantiles::{QuantilesLadder, QuantilesSketch};
    use crate::theta::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
    use crate::wire::{encode_theta_unsorted, WireDecode, WireEncode};

    fn theta_image(n: u64) -> bytes::Bytes {
        let mut s = QuickSelectThetaSketch::new(6, 7).unwrap();
        for i in 0..n {
            s.update(i);
        }
        s.compact().to_wire_bytes()
    }

    #[test]
    fn theta_view_matches_decoder() {
        let image = theta_image(20_000);
        let view = ThetaWireView::parse(&image).unwrap();
        let decoded = CompactThetaSketch::from_wire_bytes(&image).unwrap();
        assert_eq!(view.seed(), decoded.seed());
        assert_eq!(view.theta(), decoded.theta());
        assert_eq!(view.len(), decoded.retained());
        assert!(view.is_sorted());
        assert!(view.validate().is_ok());
        let from_view: Vec<u64> = view.hashes().collect();
        assert_eq!(from_view, decoded.sorted_hashes());
    }

    #[test]
    fn theta_view_unsorted_flag_and_validate() {
        let mut s = QuickSelectThetaSketch::new(6, 3).unwrap();
        for i in 0..5_000u64 {
            s.update(i);
        }
        let raw = encode_theta_unsorted(&s);
        let view = ThetaWireView::parse(&raw).unwrap();
        assert!(!view.is_sorted());
        assert!(view.validate().is_ok());
        assert_eq!(view.len(), s.retained());
    }

    #[test]
    fn theta_view_rejects_structural_damage() {
        let image = theta_image(100);
        assert!(matches!(
            ThetaWireView::parse(&image[..image.len() - 1]),
            Err(WireError::PayloadLength { .. })
        ));
        let mut bad = image.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ThetaWireView::parse(&bad),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = image.to_vec();
        bad[7] = 4; // forge item_width
        assert!(matches!(
            ThetaWireView::parse(&bad),
            Err(WireError::ItemWidth { .. })
        ));
    }

    #[test]
    fn theta_view_validate_catches_item_violations() {
        let image = theta_image(1_000);
        // Swap two hashes: structural parse still passes, validate fails.
        let mut bad = image.to_vec();
        let len = bad.len();
        for i in 0..8 {
            bad.swap(len - 16 + i, len - 8 + i);
        }
        let view = ThetaWireView::parse(&bad).unwrap();
        assert!(matches!(view.validate(), Err(WireError::Invariant { .. })));
        assert!(CompactThetaSketch::from_wire_bytes(&bad).is_err());
    }

    #[test]
    fn hll_view_matches_decoder() {
        let mut h = HllSketch::new(9, 11).unwrap();
        for i in 0..30_000u64 {
            h.update(i);
        }
        let image = h.to_wire_bytes();
        let view = HllWireView::parse(&image).unwrap();
        assert_eq!(view.lg_m(), 9);
        assert_eq!(view.m(), 512);
        assert_eq!(view.seed(), 11);
        assert_eq!(view.registers(), h.registers());
        assert!(view.validate().is_ok());
    }

    #[test]
    fn hll_view_validate_catches_bad_register() {
        let h = HllSketch::new(4, 0).unwrap();
        let mut bad = h.to_wire_bytes().to_vec();
        let len = bad.len();
        bad[len - 1] = 62; // max rank at lg_m = 4 is 61
        let view = HllWireView::parse(&bad).unwrap();
        assert!(view.validate().is_err());
        assert!(HllSketch::from_wire_bytes(&bad).is_err());
    }

    #[test]
    fn ladder_view_matches_decoder() {
        let mut q = QuantilesSketch::<u64>::with_seed(32, 5).unwrap();
        for i in 0..60_000u64 {
            q.update(i);
        }
        let image = q.ladder().to_wire_bytes();
        let view = LadderWireView::<u64>::parse(&image).unwrap();
        let decoded = QuantilesLadder::<u64>::from_wire_bytes(&image).unwrap();
        assert_eq!(view.n(), decoded.n());
        assert_eq!(view.run_count(), decoded.run_count());
        assert_eq!(view.min_item(), decoded.min_item());
        assert_eq!(view.max_item(), decoded.max_item());
        let view_runs: Vec<(Vec<u64>, u64)> = view
            .runs()
            .map(|r| (r.items().collect(), r.weight()))
            .collect();
        let decoded_runs: Vec<(Vec<u64>, u64)> = decoded
            .wire_runs()
            .map(|(items, w)| (items.to_vec(), w))
            .collect();
        assert_eq!(view_runs, decoded_runs);
    }

    #[test]
    fn ladder_view_rejects_what_the_decoder_rejects() {
        let mut q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
        for i in 0..5_000u64 {
            q.update(i);
        }
        let image = q.ladder().to_wire_bytes();
        // Corrupt n (offset 16): weight accounting must fail.
        let mut bad = image.to_vec();
        bad[16] ^= 0x01;
        assert!(LadderWireView::<u64>::parse(&bad).is_err());
        assert!(QuantilesLadder::<u64>::from_wire_bytes(&bad).is_err());
        // The updatable form is not a ladder.
        let updatable = q.to_bytes();
        assert!(matches!(
            LadderWireView::<u64>::parse(&updatable),
            Err(WireError::Invariant { .. })
        ));
    }

    #[test]
    fn empty_ladder_view() {
        let image = QuantilesLadder::<u64>::empty().to_wire_bytes();
        let view = LadderWireView::<u64>::parse(&image).unwrap();
        assert_eq!(view.n(), 0);
        assert_eq!(view.run_count(), 0);
        assert_eq!(view.min_item(), None);
        assert_eq!(view.runs().count(), 0);
    }

    #[test]
    fn mg_view_matches_decoder() {
        let mut mg = MisraGriesSketch::<u64>::new(16).unwrap();
        for i in 0..10_000u64 {
            mg.update(if i % 3 == 0 { 7 } else { i % 200 });
        }
        let image = mg.to_wire_bytes();
        let view = MgWireView::<u64>::parse(&image).unwrap();
        assert_eq!(view.n(), mg.n());
        assert_eq!(view.error(), mg.max_error());
        assert_eq!(view.k(), 16);
        let entries: Vec<(u64, u64)> = view.entries().collect();
        assert_eq!(entries.len(), mg.retained());
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        for (item, counter) in entries {
            assert_eq!(mg.estimate(&item).lower_bound, counter);
        }
    }

    #[test]
    fn mg_view_rejects_what_the_decoder_rejects() {
        let mut mg = MisraGriesSketch::<u64>::new(4).unwrap();
        mg.update(9);
        let image = mg.to_wire_bytes();
        // Forge count past k.
        let mut bad = image.to_vec();
        bad[40] = 200;
        assert!(MgWireView::<u64>::parse(&bad).is_err());
        assert!(MisraGriesSketch::<u64>::from_wire_bytes(&bad).is_err());
    }

    #[test]
    fn views_reject_cross_family_images() {
        let theta = theta_image(100);
        assert!(matches!(
            HllWireView::parse(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
        assert!(matches!(
            LadderWireView::<u64>::parse(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
        assert!(matches!(
            MgWireView::<u64>::parse(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
        let hll = HllSketch::new(4, 0).unwrap().to_wire_bytes();
        assert!(matches!(
            ThetaWireView::parse(&hll),
            Err(WireError::FamilyMismatch { .. })
        ));
    }
}
