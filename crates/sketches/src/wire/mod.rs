//! The unified, versioned wire format: serialise any sketch on one node,
//! merge it on another.
//!
//! The paper's serving story at scale is "sketch anywhere, merge
//! anywhere": every node runs the concurrent engine over its local
//! stream, periodically emits a compact image, and a central node fans
//! the images in — losslessly for Θ (untrimmed union), exactly for HLL
//! (register max) and Misra–Gries (counter addition), and within the
//! deterministic ε envelope for Quantiles (k-way run merge). This module
//! is that interchange layer: one self-describing binary envelope
//! covering all four sketch families, with a common header and per-family
//! payloads.
//!
//! # Envelope
//!
//! Every image starts with a fixed 16-byte little-endian header:
//!
//! | offset | size | field         | contents                               |
//! |--------|------|---------------|----------------------------------------|
//! | 0      | 4    | `magic`       | `"FCDS"` (`0x46 0x43 0x44 0x53`)       |
//! | 4      | 1    | `version`     | format version, currently `1`          |
//! | 5      | 1    | `family`      | [`SketchFamily`] code                  |
//! | 6      | 1    | `flags`       | family-specific bits                   |
//! | 7      | 1    | `item_width`  | item encoding width in bytes, 0 if N/A |
//! | 8      | 8    | `payload_len` | exact payload byte count               |
//!
//! The header is followed by exactly `payload_len` payload bytes; inputs
//! with missing *or trailing* bytes are rejected, so an image's length is
//! always `16 + payload_len`. Per-family payload layouts are documented
//! on the [`WireEncode`] impls below and tabulated in the repository
//! README.
//!
//! # Traits
//!
//! * [`WireEncode`] / [`WireDecode`] — the codec pair. Encoding is
//!   infallible and deterministic (canonical images re-encode
//!   byte-identically, which the committed golden-vector corpus
//!   enforces); decoding validates every structural invariant and
//!   returns a typed [`WireError`], never panicking on any input and
//!   never allocating proportionally to an unvalidated length field.
//! * [`WireMerge`] — the merge-anywhere tier: decoded images of the same
//!   family combine without access to the sketch that built them.
//!   [`merge_wire_images`] fans a whole list of raw images into one
//!   sketch.
//!
//! # Zero-copy views and multiway fan-in
//!
//! The [`view`] module parses images into borrowed views
//! ([`ThetaWireView`], [`HllWireView`], [`LadderWireView`],
//! [`MgWireView`]) that validate the envelope once and iterate items
//! straight out of `&[u8]`; the [`fanin`] module builds single-pass
//! multiway merge kernels on top ([`theta_multiway_union_into`],
//! [`hll_multiway_merge_into`], [`ladder_multiway_concat`],
//! [`mg_multiway_merge`]) threaded through a reusable [`MergeScratch`]
//! arena, so a warm coordinator loop merges with zero steady-state
//! allocations. [`merge_wire_images`] routes through these kernels via
//! [`WireMerge::wire_fan_in`]; [`peek`] classifies an image from its
//! first 16 bytes for server-side routing.
//!
//! # Θ set algebra on the wire
//!
//! Beyond union, Θ images support the full estimator algebra without
//! rebuilding updatable sketches: [`theta_union_on_wire`],
//! [`theta_intersection_on_wire`], [`theta_a_not_b_on_wire`] and
//! [`theta_jaccard_on_wire`] operate directly on serialised images.
//! [`encode_theta_unsorted`] additionally serialises any [`ThetaRead`]
//! view — e.g. the engine's copy-on-write block snapshots — without
//! sorting first (flag bit 0); the decoder canonicalises.
//!
//! # Versioning and compatibility policy
//!
//! The version byte is bumped only for layout changes that old decoders
//! would misread; decoders reject versions they do not know
//! ([`WireError::UnsupportedVersion`]) rather than guessing. New sketch
//! families extend the family byte without a version bump (old decoders
//! report [`WireError::UnknownFamily`]); new *flags* must keep the
//! flag-clear encoding meaning what it meant. The golden vectors under
//! `tests/vectors/` pin version 1: any edit that changes a committed
//! byte is a format break and must ship as version 2.

pub mod fanin;
pub mod view;

pub use fanin::{
    hll_multiway_merge, hll_multiway_merge_into, ladder_multiway_concat, mg_multiway_merge,
    theta_multiway_union, theta_multiway_union_into, HllFanin, MergeScratch, ThetaFanin,
};
pub use view::{
    HllWireView, LadderWireRun, LadderWireRuns, LadderWireView, MgWireView, ThetaWireView,
};

use crate::error::WireError;
use crate::frequency::MisraGriesSketch;
use crate::hll::{HllSketch, MAX_LG_M, MIN_LG_M};
use crate::quantiles::{QuantilesLadder, TotalF64};
use crate::theta::setops::{untrimmed_union, ThetaANotB, ThetaIntersection};
use crate::theta::{jaccard, CompactThetaSketch, JaccardEstimate, ThetaRead};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::hash::Hash;

/// The four magic bytes `"FCDS"`, read as a little-endian `u32`.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"FCDS");

/// Current (and only) wire-format version.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed envelope header in bytes.
pub const WIRE_HEADER_LEN: usize = 16;

/// Θ flag bit 0: the hash payload is in insertion order, not sorted.
pub const FLAG_THETA_UNSORTED: u8 = 1;

/// Quantiles flag bit 0: the payload is the updatable-sketch state
/// (level array keyed by `k`), not a ladder image.
pub const FLAG_QUANTILES_UPDATABLE: u8 = 1;

/// Quantiles flag bit 1: the summarised stream is non-empty (min/max
/// items present). Only used by the updatable form; the ladder form
/// derives presence from `n`.
pub const FLAG_QUANTILES_NONEMPTY: u8 = 2;

/// Sketch family codes carried in the header's `family` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SketchFamily {
    /// Θ distinct-counting sketches (compact images).
    Theta = 1,
    /// HyperLogLog.
    Hll = 2,
    /// Quantiles (ladder images and updatable sketches).
    Quantiles = 3,
    /// Misra–Gries frequent items.
    Frequency = 4,
}

impl SketchFamily {
    /// The header byte for this family.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a header byte; `None` if unassigned.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(SketchFamily::Theta),
            2 => Some(SketchFamily::Hll),
            3 => Some(SketchFamily::Quantiles),
            4 => Some(SketchFamily::Frequency),
            _ => None,
        }
    }

    /// Human-readable family name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            SketchFamily::Theta => "theta",
            SketchFamily::Hll => "hll",
            SketchFamily::Quantiles => "quantiles",
            SketchFamily::Frequency => "frequency",
        }
    }
}

/// The parsed fixed header of a wire image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Format version (see [`WIRE_VERSION`]).
    pub version: u8,
    /// Sketch family of the payload.
    pub family: SketchFamily,
    /// Family-specific flag bits.
    pub flags: u8,
    /// Item encoding width in bytes (0 where the family has none).
    pub item_width: u8,
    /// Exact payload length in bytes.
    pub payload_len: u64,
}

impl WireHeader {
    /// Parses and validates the header, returning it together with the
    /// payload slice. Requires the input length to be *exactly*
    /// `16 + payload_len` — trailing bytes are rejected, so the declared
    /// length can never drive an over-allocation.
    pub fn parse(data: &[u8]) -> Result<(WireHeader, &[u8]), WireError> {
        let header = Self::parse_prefix(data)?;
        let have = (data.len() - WIRE_HEADER_LEN) as u64;
        if header.payload_len != have {
            return Err(WireError::PayloadLength {
                declared: header.payload_len,
                have,
            });
        }
        Ok((header, &data[WIRE_HEADER_LEN..]))
    }

    /// Validates and decodes the 16 header bytes alone — no exact-length
    /// check, so `data` may be a bare prefix of an image.
    fn parse_prefix(data: &[u8]) -> Result<WireHeader, WireError> {
        if data.len() < WIRE_HEADER_LEN {
            return Err(WireError::Truncated {
                context: "header",
                needed: WIRE_HEADER_LEN,
                have: data.len(),
            });
        }
        let mut cursor = data;
        let magic = cursor.get_u32_le();
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = cursor.get_u8();
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let family_code = cursor.get_u8();
        let family = SketchFamily::from_code(family_code)
            .ok_or(WireError::UnknownFamily { found: family_code })?;
        let flags = cursor.get_u8();
        let item_width = cursor.get_u8();
        let payload_len = cursor.get_u64_le();
        Ok(WireHeader {
            version,
            family,
            flags,
            item_width,
            payload_len,
        })
    }

    /// Reads just enough of the header to learn which family an image
    /// belongs to — the dispatch primitive for heterogeneous image
    /// streams.
    pub fn peek_family(data: &[u8]) -> Result<SketchFamily, WireError> {
        Self::parse(data).map(|(h, _)| h.family)
    }

    fn write(&self, buf: &mut BytesMut) {
        buf.put_u32_le(WIRE_MAGIC);
        buf.put_u8(self.version);
        buf.put_u8(self.family.code());
        buf.put_u8(self.flags);
        buf.put_u8(self.item_width);
        buf.put_u64_le(self.payload_len);
    }
}

/// The routing-relevant header fields surfaced by [`peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeekedHeader {
    /// Sketch family of the payload.
    pub family: SketchFamily,
    /// Family-specific flag bits.
    pub flags: u8,
    /// Item encoding width in bytes (0 where the family has none).
    pub item_width: u8,
    /// Payload length the header *declares*. Unverified: `peek` never
    /// touches the payload, so the exact-length rule has not run yet.
    pub payload_len: u64,
}

/// Reads only the 16-byte header of a raw image — family, flags, item
/// width and declared payload length — without touching (or requiring)
/// the payload. This is the server-side routing primitive: a frame
/// dispatcher can classify an image from its first 16 bytes while the
/// rest is still in flight.
///
/// Contrast [`WireHeader::parse`]: `peek` accepts any input carrying at
/// least the header, so the declared `payload_len` is *reported, not
/// verified* against the bytes present — full validation still happens
/// at decode time. What `peek` *does* verify is the caller's trust
/// budget: a frame reader sizing a receive buffer from the declared
/// length must never let an attacker-controlled header drive the
/// allocation, so declared lengths above `max_payload_len` are rejected
/// before any payload byte is read. Callers with no framing concern can
/// pass [`u64::MAX`].
///
/// # Errors
///
/// [`WireError::Truncated`] below 16 bytes, and the header taxonomy
/// ([`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] /
/// [`WireError::UnknownFamily`]) for damaged headers — identical to the
/// full parser, byte for byte. [`WireError::PayloadLength`] when the
/// declared length exceeds `max_payload_len` (the error's `have` field
/// carries the cap: the most payload the caller was willing to accept).
///
/// # Examples
///
/// ```
/// use fcds_sketches::hll::HllSketch;
/// use fcds_sketches::wire::{peek, SketchFamily, WireEncode, WIRE_HEADER_LEN};
///
/// let image = HllSketch::new(10, 3).unwrap().to_wire_bytes();
/// // Only the first 16 bytes are needed.
/// let peeked = peek(&image[..WIRE_HEADER_LEN], 1 << 20).unwrap();
/// assert_eq!(peeked.family, SketchFamily::Hll);
/// assert_eq!(peeked.payload_len as usize, image.len() - WIRE_HEADER_LEN);
/// // A header declaring more than the cap is rejected outright.
/// let mut absurd = image[..WIRE_HEADER_LEN].to_vec();
/// absurd[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
/// assert!(peek(&absurd, 1 << 20).is_err());
/// ```
pub fn peek(data: &[u8], max_payload_len: u64) -> Result<PeekedHeader, WireError> {
    let header = WireHeader::parse_prefix(data)?;
    if header.payload_len > max_payload_len {
        return Err(WireError::PayloadLength {
            declared: header.payload_len,
            have: max_payload_len,
        });
    }
    Ok(PeekedHeader {
        family: header.family,
        flags: header.flags,
        item_width: header.item_width,
        payload_len: header.payload_len,
    })
}

/// Items serialisable into a fixed-width little-endian encoding, used by
/// the Quantiles and Misra–Gries payloads. The width is carried in the
/// header's `item_width` byte so decoders can reject a type confusion
/// before touching the payload.
pub trait WireItem: Sized {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the encoding of `self`.
    fn write_to(&self, buf: &mut BytesMut);
    /// Decodes one item (the caller guarantees `WIDTH` bytes remain).
    fn read_from(buf: &mut &[u8]) -> Self;
}

impl WireItem for u64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        buf.get_u64_le()
    }
}

impl WireItem for i64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        buf.get_i64_le()
    }
}

impl WireItem for TotalF64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.0.to_bits());
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        TotalF64(f64::from_bits(buf.get_u64_le()))
    }
}

/// Associates a type with its [`SketchFamily`] code.
pub trait WireSketch {
    /// The family this type serialises as.
    const FAMILY: SketchFamily;
}

/// Serialisation half of the unified codec.
///
/// Encoding is infallible (the in-memory invariants are the wire
/// invariants) and deterministic: a canonical image decoded by
/// [`WireDecode`] re-encodes byte-identically.
pub trait WireEncode: WireSketch {
    /// Family-specific flag bits for this value (default none).
    fn wire_flags(&self) -> u8 {
        0
    }

    /// Item width advertised in the header (0 where the family has no
    /// variable item type).
    fn wire_item_width(&self) -> u8 {
        0
    }

    /// Appends the family payload (everything after the 16-byte header).
    fn encode_payload(&self, buf: &mut BytesMut);

    /// Exact payload byte length, when cheaply computable. Every
    /// in-tree impl returns `Some`, letting [`Self::to_wire_bytes`]
    /// produce the image in a single right-sized allocation with no
    /// growth reallocations; `None` falls back to a small default
    /// capacity plus growth.
    fn payload_size_hint(&self) -> Option<usize> {
        None
    }

    /// Serialises into a complete wire image (header + payload).
    fn to_wire_bytes(&self) -> Bytes {
        let cap = WIRE_HEADER_LEN + self.payload_size_hint().unwrap_or(64);
        let mut buf = BytesMut::with_capacity(cap);
        WireHeader {
            version: WIRE_VERSION,
            family: Self::FAMILY,
            flags: self.wire_flags(),
            item_width: self.wire_item_width(),
            payload_len: 0,
        }
        .write(&mut buf);
        self.encode_payload(&mut buf);
        let payload_len = (buf.len() - WIRE_HEADER_LEN) as u64;
        buf[8..16].copy_from_slice(&payload_len.to_le_bytes());
        buf.freeze()
    }
}

/// Deserialisation half of the unified codec.
pub trait WireDecode: WireSketch + Sized {
    /// Decodes the family payload, validating every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] variant matching the first corruption
    /// class detected. Must not panic on any input.
    fn decode_payload(header: &WireHeader, payload: &[u8]) -> Result<Self, WireError>;

    /// Decodes a complete wire image (header + payload).
    ///
    /// # Errors
    ///
    /// [`WireError::FamilyMismatch`] if the image belongs to a different
    /// family; otherwise whatever [`Self::decode_payload`] reports.
    fn from_wire_bytes(data: &[u8]) -> Result<Self, WireError> {
        let (header, payload) = WireHeader::parse(data)?;
        if header.family != Self::FAMILY {
            return Err(WireError::FamilyMismatch {
                expected: Self::FAMILY.name(),
                found: header.family.name(),
            });
        }
        Self::decode_payload(&header, payload)
    }
}

/// The merge-anywhere tier: combine decoded images of one family without
/// access to the sketches that produced them.
pub trait WireMerge: WireEncode + WireDecode {
    /// Folds `other` into `self`.
    ///
    /// # Errors
    ///
    /// [`WireError::Incompatible`] on a seed / parameter mismatch.
    fn wire_merge_from(&mut self, other: &Self) -> Result<(), WireError>;

    /// Fans a whole list of raw images into one sketch.
    ///
    /// The default is the reference pairwise fold (decode each image,
    /// fold with [`Self::wire_merge_from`]); every in-tree family
    /// overrides it with its single-pass multiway kernel from
    /// [`fanin`], which reads items straight out of the raw bytes.
    ///
    /// # Errors
    ///
    /// Any decode failure, [`WireError::Incompatible`] on parameter
    /// mismatches, or [`WireError::Invariant`] for an empty list.
    fn wire_fan_in<B: AsRef<[u8]>>(images: &[B]) -> Result<Self, WireError> {
        let (first, rest) = images
            .split_first()
            .ok_or_else(|| WireError::invariant("merge", "no images to merge"))?;
        let mut acc = Self::from_wire_bytes(first.as_ref())?;
        for image in rest {
            let part = Self::from_wire_bytes(image.as_ref())?;
            acc.wire_merge_from(&part)?;
        }
        Ok(acc)
    }
}

/// Fans a list of raw images into one sketch (fan-in order-independent
/// for Θ/HLL; Misra–Gries bounds hold for any order).
///
/// Dispatches to the family's [`WireMerge::wire_fan_in`] — for the
/// in-tree families that is a single-pass multiway kernel over borrowed
/// views (see [`fanin`]), not a pairwise decode-then-fold. A coordinator
/// merging in a loop should call the `*_into` kernel entry points with
/// its own [`MergeScratch`] to also skip this function's image-list
/// collection and result materialisation.
///
/// # Errors
///
/// Any decode failure, [`WireError::Incompatible`] on parameter
/// mismatches, or [`WireError::Invariant`] if `images` is empty (the
/// family's identity element is not always representable — an
/// intersection-style caller must supply at least one image).
pub fn merge_wire_images<W, I, B>(images: I) -> Result<W, WireError>
where
    W: WireMerge,
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    let images: Vec<B> = images.into_iter().collect();
    W::wire_fan_in(&images)
}

fn setop_err(e: crate::error::SketchError) -> WireError {
    match e {
        crate::error::SketchError::Incompatible { reason } => {
            WireError::Incompatible { detail: reason }
        }
        other => WireError::invariant("set operation", other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Θ family
// ---------------------------------------------------------------------------

const THETA_FIXED: u64 = 24;

impl WireSketch for CompactThetaSketch {
    const FAMILY: SketchFamily = SketchFamily::Theta;
}

/// Θ payload: `seed(u64) | theta(u64) | count(u64) | count × hash(u64)`.
///
/// Canonical images carry strictly ascending hashes (flags clear);
/// [`encode_theta_unsorted`] emits the same payload in source order with
/// [`FLAG_THETA_UNSORTED`] set.
/// Hashes bulk-encoded per chunk of this many (a 512-byte stack staging
/// buffer — the largest chunk that stays comfortably in L1 while making
/// the per-`put_slice` overhead negligible).
const THETA_ENC_CHUNK: usize = 64;

impl WireEncode for CompactThetaSketch {
    fn wire_item_width(&self) -> u8 {
        8
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seed());
        buf.put_u64_le(self.theta());
        let hashes = self.sorted_hashes();
        buf.put_u64_le(hashes.len() as u64);
        // Encode straight off the borrowed slice in bulk chunks: one
        // length-checked append per 64 hashes instead of one per hash.
        // With the exact size hint below, re-encoding a decoded image is
        // a single allocation plus chunked copies.
        let mut chunk = [0u8; 8 * THETA_ENC_CHUNK];
        for run in hashes.chunks(THETA_ENC_CHUNK) {
            for (slot, &h) in chunk.chunks_exact_mut(8).zip(run) {
                slot.copy_from_slice(&h.to_le_bytes());
            }
            buf.put_slice(&chunk[..8 * run.len()]);
        }
    }

    fn payload_size_hint(&self) -> Option<usize> {
        Some(THETA_FIXED as usize + 8 * self.sorted_hashes().len())
    }
}

impl WireDecode for CompactThetaSketch {
    fn decode_payload(header: &WireHeader, mut payload: &[u8]) -> Result<Self, WireError> {
        if header.item_width != 8 {
            return Err(WireError::ItemWidth {
                expected: 8,
                found: header.item_width,
            });
        }
        if (payload.len() as u64) < THETA_FIXED {
            return Err(WireError::Truncated {
                context: "theta payload",
                needed: THETA_FIXED as usize,
                have: payload.len(),
            });
        }
        let seed = payload.get_u64_le();
        let theta = payload.get_u64_le();
        let count = payload.get_u64_le();
        // The header's exact-length rule already bounds `count`: the
        // hashes must account for every remaining payload byte, so the
        // allocation below is capped by bytes actually present.
        let need = count
            .checked_mul(8)
            .and_then(|b| b.checked_add(THETA_FIXED))
            .ok_or_else(|| WireError::invariant("hash count", "count overflows size"))?;
        if need != header.payload_len {
            return Err(WireError::invariant(
                "hash count",
                format!(
                    "count {count} needs {need} payload bytes, header carries {}",
                    header.payload_len
                ),
            ));
        }
        let sorted = header.flags & FLAG_THETA_UNSORTED == 0;
        let mut hashes = Vec::with_capacity(count as usize);
        let mut prev = 0u64;
        for _ in 0..count {
            let h = payload.get_u64_le();
            if h == 0 {
                return Err(WireError::invariant("theta hashes", "hash 0 is reserved"));
            }
            if h >= theta {
                return Err(WireError::invariant(
                    "theta hashes",
                    format!("hash {h} not below theta {theta}"),
                ));
            }
            if sorted && h <= prev {
                return Err(WireError::invariant(
                    "theta hashes",
                    "hashes not strictly ascending",
                ));
            }
            prev = h;
            hashes.push(h);
        }
        CompactThetaSketch::from_parts(theta, seed, hashes)
            .map_err(|e| WireError::invariant("theta parts", e.to_string()))
    }
}

impl WireMerge for CompactThetaSketch {
    /// Untrimmed union: joint Θ = min of the parts, every hash below it
    /// kept — lossless and associative, so fan-in order is irrelevant.
    fn wire_merge_from(&mut self, other: &Self) -> Result<(), WireError> {
        *self = untrimmed_union([&*self, other]).map_err(setop_err)?;
        Ok(())
    }

    /// K-way loser-tree union over borrowed views
    /// ([`fanin::theta_multiway_union`]) — result-identical to the
    /// pairwise fold, single pass, no per-image decoding.
    fn wire_fan_in<B: AsRef<[u8]>>(images: &[B]) -> Result<Self, WireError> {
        fanin::theta_multiway_union(images)
    }
}

/// Serialises any readable Θ view *without sorting*: hashes stream out in
/// iteration order under [`FLAG_THETA_UNSORTED`]. This is the zero-sort
/// export path for the engine's copy-on-write block snapshots; the
/// decoder sorts, deduplicates and validates, returning a canonical
/// [`CompactThetaSketch`].
pub fn encode_theta_unsorted<S: ThetaRead + ?Sized>(src: &S) -> Bytes {
    let mut buf = BytesMut::with_capacity(WIRE_HEADER_LEN + 24 + 8 * src.retained());
    WireHeader {
        version: WIRE_VERSION,
        family: SketchFamily::Theta,
        flags: FLAG_THETA_UNSORTED,
        item_width: 8,
        payload_len: 0,
    }
    .write(&mut buf);
    buf.put_u64_le(src.seed());
    buf.put_u64_le(src.theta());
    let count_at = buf.len();
    buf.put_u64_le(0);
    let mut count = 0u64;
    for h in src.hashes() {
        buf.put_u64_le(h);
        count += 1;
    }
    buf[count_at..count_at + 8].copy_from_slice(&count.to_le_bytes());
    let payload_len = (buf.len() - WIRE_HEADER_LEN) as u64;
    buf[8..16].copy_from_slice(&payload_len.to_le_bytes());
    buf.freeze()
}

/// Unions Θ wire images without trimming, returning the merged image.
///
/// # Errors
///
/// Decode failures, seed mismatches ([`WireError::Incompatible`]), or an
/// empty image list.
pub fn theta_union_on_wire<I, B>(images: I) -> Result<Bytes, WireError>
where
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    let merged: CompactThetaSketch = merge_wire_images(images)?;
    Ok(merged.to_wire_bytes())
}

/// Intersects two Θ wire images, returning the result image.
///
/// # Errors
///
/// Decode failures or a seed mismatch.
pub fn theta_intersection_on_wire(a: &[u8], b: &[u8]) -> Result<Bytes, WireError> {
    let a = CompactThetaSketch::from_wire_bytes(a)?;
    let b = CompactThetaSketch::from_wire_bytes(b)?;
    let mut gadget = ThetaIntersection::new(a.seed());
    gadget.update(&a).map_err(setop_err)?;
    gadget.update(&b).map_err(setop_err)?;
    let out = gadget.result().map_err(setop_err)?;
    Ok(out.to_wire_bytes())
}

/// Computes A-not-B over two Θ wire images, returning the result image.
///
/// # Errors
///
/// Decode failures or a seed mismatch.
pub fn theta_a_not_b_on_wire(a: &[u8], b: &[u8]) -> Result<Bytes, WireError> {
    let a = CompactThetaSketch::from_wire_bytes(a)?;
    let b = CompactThetaSketch::from_wire_bytes(b)?;
    let out = ThetaANotB::new().compute(&a, &b).map_err(setop_err)?;
    Ok(out.to_wire_bytes())
}

/// Estimates the Jaccard similarity of two Θ wire images.
///
/// # Errors
///
/// Decode failures or a seed mismatch.
pub fn theta_jaccard_on_wire(a: &[u8], b: &[u8]) -> Result<JaccardEstimate, WireError> {
    let a = CompactThetaSketch::from_wire_bytes(a)?;
    let b = CompactThetaSketch::from_wire_bytes(b)?;
    jaccard(&a, &b).map_err(setop_err)
}

// ---------------------------------------------------------------------------
// HLL family
// ---------------------------------------------------------------------------

const HLL_FIXED: u64 = 16;

impl WireSketch for HllSketch {
    const FAMILY: SketchFamily = SketchFamily::Hll;
}

/// HLL payload: `lg_m(u8) | pad(7×u8) | seed(u64) | 2^lg_m × register(u8)`.
impl WireEncode for HllSketch {
    fn wire_item_width(&self) -> u8 {
        1
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        buf.put_u8(self.lg_m());
        buf.put_slice(&[0u8; 7]);
        buf.put_u64_le(self.seed());
        buf.put_slice(self.registers());
    }

    fn payload_size_hint(&self) -> Option<usize> {
        Some(HLL_FIXED as usize + self.m())
    }
}

impl WireDecode for HllSketch {
    fn decode_payload(header: &WireHeader, mut payload: &[u8]) -> Result<Self, WireError> {
        if header.item_width != 1 {
            return Err(WireError::ItemWidth {
                expected: 1,
                found: header.item_width,
            });
        }
        if (payload.len() as u64) < HLL_FIXED {
            return Err(WireError::Truncated {
                context: "hll payload",
                needed: HLL_FIXED as usize,
                have: payload.len(),
            });
        }
        let lg_m = payload.get_u8();
        if !(MIN_LG_M..=MAX_LG_M).contains(&lg_m) {
            return Err(WireError::invariant(
                "hll lg_m",
                format!("lg_m {lg_m} out of range {MIN_LG_M}..={MAX_LG_M}"),
            ));
        }
        payload.advance(7);
        let seed = payload.get_u64_le();
        let m = 1u64 << lg_m;
        if header.payload_len != HLL_FIXED + m {
            return Err(WireError::invariant(
                "hll registers",
                format!(
                    "2^lg_m = {m} registers need {} payload bytes, header carries {}",
                    HLL_FIXED + m,
                    header.payload_len
                ),
            ));
        }
        let max_rho = 64 - lg_m + 1;
        let mut sketch = HllSketch::new(lg_m, seed)
            .map_err(|e| WireError::invariant("hll params", e.to_string()))?;
        for slot in sketch.registers_mut().iter_mut() {
            let r = payload.get_u8();
            if r > max_rho {
                return Err(WireError::invariant(
                    "hll registers",
                    format!("register value {r} exceeds max rank {max_rho}"),
                ));
            }
            *slot = r;
        }
        Ok(sketch)
    }
}

impl WireMerge for HllSketch {
    /// Register-wise max — a lattice join, so merged-on-wire equals the
    /// sequential sketch of the concatenated streams *exactly*.
    fn wire_merge_from(&mut self, other: &Self) -> Result<(), WireError> {
        self.merge(other).map_err(setop_err)
    }

    /// Register max folded straight from payload bytes
    /// ([`fanin::hll_multiway_merge`]) — one accumulator, one pass.
    fn wire_fan_in<B: AsRef<[u8]>>(images: &[B]) -> Result<Self, WireError> {
        fanin::hll_multiway_merge(images)
    }
}

// ---------------------------------------------------------------------------
// Quantiles family (ladder images)
// ---------------------------------------------------------------------------

const LADDER_FIXED: u64 = 16;
const LADDER_RUN_FIXED: u64 = 16;

impl<T: Ord + Clone + WireItem> WireSketch for QuantilesLadder<T> {
    const FAMILY: SketchFamily = SketchFamily::Quantiles;
}

/// Quantiles ladder payload (flags clear — contrast the updatable form
/// behind [`crate::quantiles::QuantilesSketch::to_bytes`]):
/// `n(u64) | run_count(u32) | pad(u32) | min | max | run_count × run`,
/// each run `weight(u64) | len(u64) | len × item`, items sorted
/// ascending. `min`/`max` are present iff `n > 0`. The per-run weights
/// must account for `n` exactly: `Σ len·weight = n`.
///
/// This serialises the engine's copy-on-write ladder snapshot *without
/// flattening*: each `Arc`'d sorted run streams out as-is, preserving
/// the O(levels) snapshot cost on the export path.
impl<T: Ord + Clone + WireItem> WireEncode for QuantilesLadder<T> {
    fn wire_item_width(&self) -> u8 {
        T::WIDTH as u8
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.n());
        buf.put_u32_le(self.run_count() as u32);
        buf.put_u32_le(0);
        if let (Some(min), Some(max)) = (self.min_item(), self.max_item()) {
            min.write_to(buf);
            max.write_to(buf);
        }
        for (items, weight) in self.wire_runs() {
            buf.put_u64_le(weight);
            buf.put_u64_le(items.len() as u64);
            for item in items {
                item.write_to(buf);
            }
        }
    }

    fn payload_size_hint(&self) -> Option<usize> {
        let min_max = if self.n() > 0 { 2 * T::WIDTH } else { 0 };
        Some(
            LADDER_FIXED as usize
                + min_max
                + self.run_count() * LADDER_RUN_FIXED as usize
                + self.retained() * T::WIDTH,
        )
    }
}

impl<T: Ord + Clone + WireItem> WireDecode for QuantilesLadder<T> {
    fn decode_payload(header: &WireHeader, mut payload: &[u8]) -> Result<Self, WireError> {
        if header.flags & FLAG_QUANTILES_UPDATABLE != 0 {
            return Err(WireError::invariant(
                "quantiles flags",
                "image is an updatable sketch, not a ladder \
                 (use QuantilesSketch::from_bytes)",
            ));
        }
        if header.item_width as usize != T::WIDTH {
            return Err(WireError::ItemWidth {
                expected: T::WIDTH as u8,
                found: header.item_width,
            });
        }
        if (payload.len() as u64) < LADDER_FIXED {
            return Err(WireError::Truncated {
                context: "ladder payload",
                needed: LADDER_FIXED as usize,
                have: payload.len(),
            });
        }
        let n = payload.get_u64_le();
        let run_count = payload.get_u32_le();
        let _pad = payload.get_u32_le();
        let (min_item, max_item) = if n > 0 {
            if payload.remaining() < 2 * T::WIDTH {
                return Err(WireError::Truncated {
                    context: "ladder min/max",
                    needed: 2 * T::WIDTH,
                    have: payload.remaining(),
                });
            }
            let min = T::read_from(&mut payload);
            let max = T::read_from(&mut payload);
            if min > max {
                return Err(WireError::invariant("ladder min/max", "min above max"));
            }
            (Some(min), Some(max))
        } else {
            (None, None)
        };
        let mut runs: Vec<(Vec<T>, u64)> = Vec::with_capacity(run_count.min(64) as usize);
        let mut weighted_total = 0u64;
        for _ in 0..run_count {
            if payload.remaining() < LADDER_RUN_FIXED as usize {
                return Err(WireError::Truncated {
                    context: "ladder run header",
                    needed: LADDER_RUN_FIXED as usize,
                    have: payload.remaining(),
                });
            }
            let weight = payload.get_u64_le();
            let len = payload.get_u64_le();
            if weight == 0 || len == 0 {
                return Err(WireError::invariant(
                    "ladder run",
                    "runs must be non-empty with weight >= 1",
                ));
            }
            let bytes_needed = len
                .checked_mul(T::WIDTH as u64)
                .ok_or_else(|| WireError::invariant("ladder run", "run length overflows size"))?;
            if (payload.remaining() as u64) < bytes_needed {
                return Err(WireError::Truncated {
                    context: "ladder run items",
                    needed: bytes_needed as usize,
                    have: payload.remaining(),
                });
            }
            // Remaining payload bounds `len`, so this allocation is
            // capped by bytes actually present.
            let mut items = Vec::with_capacity(len as usize);
            for _ in 0..len {
                items.push(T::read_from(&mut payload));
            }
            if items.windows(2).any(|w| w[0] > w[1]) {
                return Err(WireError::invariant("ladder run", "run not sorted"));
            }
            match (&min_item, &max_item) {
                (Some(min), Some(max)) => {
                    // first()/last() exist: len >= 1 was enforced above.
                    if items.first().is_some_and(|lo| lo < min)
                        || items.last().is_some_and(|hi| hi > max)
                    {
                        return Err(WireError::invariant(
                            "ladder run",
                            "retained item outside [min, max]",
                        ));
                    }
                }
                _ => {
                    return Err(WireError::invariant(
                        "ladder run",
                        "non-empty run in an empty (n = 0) ladder",
                    ));
                }
            }
            weighted_total = weighted_total
                .checked_add(
                    (items.len() as u64)
                        .checked_mul(weight)
                        .ok_or_else(|| WireError::invariant("ladder run", "weight overflow"))?,
                )
                .ok_or_else(|| WireError::invariant("ladder run", "weight overflow"))?;
            runs.push((items, weight));
        }
        if payload.has_remaining() {
            return Err(WireError::invariant(
                "ladder payload",
                format!("{} trailing bytes after last run", payload.remaining()),
            ));
        }
        if weighted_total != n {
            return Err(WireError::invariant(
                "ladder weight",
                format!("runs carry weight {weighted_total}, header says n = {n}"),
            ));
        }
        Ok(QuantilesLadder::from_wire_runs(runs, n, min_item, max_item))
    }
}

impl<T: Ord + Clone + WireItem> WireMerge for QuantilesLadder<T> {
    /// Run-list concatenation — the k-way merge is deferred to query
    /// time, so merging images is O(runs), not O(retained).
    fn wire_merge_from(&mut self, other: &Self) -> Result<(), WireError> {
        if self.n().checked_add(other.n()).is_none() {
            return Err(WireError::invariant(
                "ladder merge",
                "combined n overflows u64",
            ));
        }
        self.concat(other);
        Ok(())
    }

    /// One O(total runs) concatenation of borrowed runs
    /// ([`fanin::ladder_multiway_concat`]) — byte-identical to the
    /// pairwise fold, no intermediate ladders.
    fn wire_fan_in<B: AsRef<[u8]>>(images: &[B]) -> Result<Self, WireError> {
        fanin::ladder_multiway_concat(images)
    }
}

// ---------------------------------------------------------------------------
// Misra–Gries family
// ---------------------------------------------------------------------------

const MG_FIXED: u64 = 32;

impl<T: Eq + Hash + Ord + Clone + WireItem> WireSketch for MisraGriesSketch<T> {
    const FAMILY: SketchFamily = SketchFamily::Frequency;
}

/// Misra–Gries payload:
/// `k(u64) | n(u64) | error(u64) | count(u64) | count × (item | counter(u64))`,
/// entries sorted by strictly ascending item (the canonical order — the
/// in-memory hash map has none). Invariants: `count ≤ k`, every counter
/// `≥ 1`, and `Σ counters + error ≤ n`.
impl<T: Eq + Hash + Ord + Clone + WireItem> WireEncode for MisraGriesSketch<T> {
    fn wire_item_width(&self) -> u8 {
        T::WIDTH as u8
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.k() as u64);
        buf.put_u64_le(self.n());
        buf.put_u64_le(self.max_error());
        let mut entries: Vec<(&T, u64)> = self.counters().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        buf.put_u64_le(entries.len() as u64);
        for (item, counter) in entries {
            item.write_to(buf);
            buf.put_u64_le(counter);
        }
    }

    fn payload_size_hint(&self) -> Option<usize> {
        Some(MG_FIXED as usize + self.retained() * (T::WIDTH + 8))
    }
}

impl<T: Eq + Hash + Ord + Clone + WireItem> WireDecode for MisraGriesSketch<T> {
    fn decode_payload(header: &WireHeader, mut payload: &[u8]) -> Result<Self, WireError> {
        if header.item_width as usize != T::WIDTH {
            return Err(WireError::ItemWidth {
                expected: T::WIDTH as u8,
                found: header.item_width,
            });
        }
        if (payload.len() as u64) < MG_FIXED {
            return Err(WireError::Truncated {
                context: "misra-gries payload",
                needed: MG_FIXED as usize,
                have: payload.len(),
            });
        }
        let k = payload.get_u64_le();
        let n = payload.get_u64_le();
        let error = payload.get_u64_le();
        let count = payload.get_u64_le();
        if k == 0 {
            return Err(WireError::invariant("misra-gries k", "k must be >= 1"));
        }
        if count > k {
            return Err(WireError::invariant(
                "misra-gries counters",
                format!("{count} counters exceed k = {k}"),
            ));
        }
        let entry_width = (T::WIDTH as u64) + 8;
        let need = count
            .checked_mul(entry_width)
            .and_then(|b| b.checked_add(MG_FIXED))
            .ok_or_else(|| WireError::invariant("misra-gries counters", "count overflows size"))?;
        if need != header.payload_len {
            return Err(WireError::invariant(
                "misra-gries counters",
                format!(
                    "count {count} needs {need} payload bytes, header carries {}",
                    header.payload_len
                ),
            ));
        }
        let mut entries: Vec<(T, u64)> = Vec::with_capacity(count as usize);
        let mut counter_sum = 0u64;
        for _ in 0..count {
            let item = T::read_from(&mut payload);
            let counter = payload.get_u64_le();
            if counter == 0 {
                return Err(WireError::invariant(
                    "misra-gries counters",
                    "zero counter retained",
                ));
            }
            if let Some((prev, _)) = entries.last() {
                if item <= *prev {
                    return Err(WireError::invariant(
                        "misra-gries counters",
                        "items not strictly ascending",
                    ));
                }
            }
            counter_sum = counter_sum.checked_add(counter).ok_or_else(|| {
                WireError::invariant("misra-gries counters", "counter sum overflow")
            })?;
            entries.push((item, counter));
        }
        if counter_sum.checked_add(error).is_none_or(|total| total > n) {
            return Err(WireError::invariant(
                "misra-gries weight",
                format!("counters ({counter_sum}) + error ({error}) exceed n = {n}"),
            ));
        }
        MisraGriesSketch::from_parts(k as usize, n, error, entries)
            .map_err(|e| WireError::invariant("misra-gries parts", e.to_string()))
    }
}

impl<T: Eq + Hash + Ord + Clone + WireItem> WireMerge for MisraGriesSketch<T> {
    /// Counter addition followed by reduction back to `k` counters (the
    /// mergeable-summaries construction); the `n/(k+1)` error bound is
    /// preserved under any fan-in order.
    fn wire_merge_from(&mut self, other: &Self) -> Result<(), WireError> {
        if self.n().checked_add(other.n()).is_none() {
            return Err(WireError::invariant(
                "misra-gries merge",
                "combined n overflows u64",
            ));
        }
        self.merge(other).map_err(setop_err)
    }

    /// Counter accumulation into one map with a single final reduction
    /// ([`fanin::mg_multiway_merge`]) — the same mergeable-summaries
    /// bound; in exact mode (distinct items ≤ k) identical to the
    /// pairwise fold.
    fn wire_fan_in<B: AsRef<[u8]>>(images: &[B]) -> Result<Self, WireError> {
        fanin::mg_multiway_merge(images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DeterministicOracle;
    use crate::quantiles::QuantilesSketch;
    use crate::theta::QuickSelectThetaSketch;

    fn theta_image(n: u64, lg_k: u8, seed: u64) -> (CompactThetaSketch, Bytes) {
        let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let c = s.compact();
        let bytes = c.to_wire_bytes();
        (c, bytes)
    }

    #[test]
    fn header_round_trips() {
        let (_, bytes) = theta_image(1000, 6, 7);
        let (h, payload) = WireHeader::parse(&bytes).unwrap();
        assert_eq!(h.version, WIRE_VERSION);
        assert_eq!(h.family, SketchFamily::Theta);
        assert_eq!(h.item_width, 8);
        assert_eq!(h.payload_len as usize, payload.len());
        assert_eq!(
            WireHeader::peek_family(&bytes).unwrap(),
            SketchFamily::Theta
        );
    }

    #[test]
    fn theta_round_trips_byte_identically() {
        let (c, bytes) = theta_image(25_000, 6, 9001);
        let back = CompactThetaSketch::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_wire_bytes(), bytes);
    }

    #[test]
    fn unsorted_theta_decodes_to_canonical() {
        let mut s = QuickSelectThetaSketch::new(6, 3).unwrap();
        for i in 0..20_000u64 {
            s.update(i);
        }
        let raw = encode_theta_unsorted(&s);
        let (h, _) = WireHeader::parse(&raw).unwrap();
        assert_eq!(h.flags & FLAG_THETA_UNSORTED, FLAG_THETA_UNSORTED);
        let decoded = CompactThetaSketch::from_wire_bytes(&raw).unwrap();
        assert_eq!(decoded, s.compact());
        // Canonical re-encode differs from the unsorted image only by
        // flags + hash order; both decode to the same sketch.
        assert_eq!(
            CompactThetaSketch::from_wire_bytes(&decoded.to_wire_bytes()).unwrap(),
            decoded
        );
    }

    #[test]
    fn hll_round_trips_byte_identically() {
        let mut h = HllSketch::new(8, 42).unwrap();
        for i in 0..40_000u64 {
            h.update(i);
        }
        let bytes = h.to_wire_bytes();
        let back = HllSketch::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_wire_bytes(), bytes);
    }

    #[test]
    fn ladder_round_trips_byte_identically() {
        for n in [0u64, 1, 100, 256, 60_000] {
            let mut q = QuantilesSketch::<u64>::with_seed(32, 5).unwrap();
            for i in 0..n {
                q.update(i);
            }
            let ladder = q.ladder();
            let bytes = ladder.to_wire_bytes();
            let back = QuantilesLadder::<u64>::from_wire_bytes(&bytes).unwrap();
            assert_eq!(back.n(), ladder.n());
            assert_eq!(back.to_wire_bytes(), bytes);
            for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert_eq!(back.quantile(phi), ladder.quantile(phi), "n={n} phi={phi}");
            }
        }
    }

    #[test]
    fn misra_gries_round_trips_byte_identically() {
        let mut mg = MisraGriesSketch::<u64>::new(16).unwrap();
        for i in 0..30_000u64 {
            mg.update(if i % 3 == 0 { 7 } else { i % 500 });
        }
        let bytes = mg.to_wire_bytes();
        let back = MisraGriesSketch::<u64>::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.n(), mg.n());
        assert_eq!(back.max_error(), mg.max_error());
        assert_eq!(back.estimate(&7), mg.estimate(&7));
        assert_eq!(back.to_wire_bytes(), bytes);
    }

    #[test]
    fn family_dispatch_rejects_cross_decoding() {
        let (_, theta) = theta_image(100, 5, 1);
        assert!(matches!(
            HllSketch::from_wire_bytes(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
        assert!(matches!(
            QuantilesLadder::<u64>::from_wire_bytes(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
        assert!(matches!(
            MisraGriesSketch::<u64>::from_wire_bytes(&theta),
            Err(WireError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn merge_wire_images_unions_theta() {
        let images: Vec<Bytes> = (0..4u64)
            .map(|node| {
                let mut s = QuickSelectThetaSketch::new(10, 77).unwrap();
                for i in (node..40_000).step_by(4) {
                    s.update(i);
                }
                s.compact().to_wire_bytes()
            })
            .collect();
        let merged: CompactThetaSketch = merge_wire_images(&images).unwrap();
        let est = merged.estimate();
        assert!((est - 40_000.0).abs() / 40_000.0 < 0.1, "estimate {est}");
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let (_, a) = theta_image(100, 5, 1);
        let (_, b) = theta_image(100, 5, 2);
        assert!(matches!(
            merge_wire_images::<CompactThetaSketch, _, _>([&a, &b]),
            Err(WireError::Incompatible { .. })
        ));
    }

    #[test]
    fn merge_rejects_empty_list() {
        let images: [&[u8]; 0] = [];
        assert!(matches!(
            merge_wire_images::<HllSketch, _, _>(images),
            Err(WireError::Invariant { .. })
        ));
    }

    #[test]
    fn theta_set_algebra_on_wire() {
        let sketch = |lo: u64, hi: u64| {
            let mut s = QuickSelectThetaSketch::new(10, 5).unwrap();
            for i in lo..hi {
                s.update(i);
            }
            s.compact().to_wire_bytes()
        };
        // A = [0, 60k), B = [40k, 100k): |A∩B| = 20k, |A∪B| = 100k.
        let a = sketch(0, 60_000);
        let b = sketch(40_000, 100_000);
        let union = CompactThetaSketch::from_wire_bytes(&theta_union_on_wire([&a, &b]).unwrap())
            .unwrap()
            .estimate();
        assert!((union - 100_000.0).abs() / 100_000.0 < 0.1, "union {union}");
        let inter =
            CompactThetaSketch::from_wire_bytes(&theta_intersection_on_wire(&a, &b).unwrap())
                .unwrap()
                .estimate();
        assert!((inter - 20_000.0).abs() / 20_000.0 < 0.25, "inter {inter}");
        let diff = CompactThetaSketch::from_wire_bytes(&theta_a_not_b_on_wire(&a, &b).unwrap())
            .unwrap()
            .estimate();
        assert!((diff - 40_000.0).abs() / 40_000.0 < 0.25, "a\\b {diff}");
        let j = theta_jaccard_on_wire(&a, &b).unwrap();
        assert!((j.estimate - 0.2).abs() < 0.1, "jaccard {}", j.estimate);
    }

    #[test]
    fn hll_wire_merge_equals_sequential() {
        let mut oracle = HllSketch::new(9, 11).unwrap();
        let mut images = Vec::new();
        for node in 0..5u64 {
            let mut h = HllSketch::new(9, 11).unwrap();
            for i in (node..50_000).step_by(5) {
                h.update(i);
                oracle.update(i);
            }
            images.push(h.to_wire_bytes());
        }
        let merged: HllSketch = merge_wire_images(&images).unwrap();
        assert_eq!(merged, oracle);
    }

    #[test]
    fn ladder_wire_merge_sums_runs() {
        let mut images = Vec::new();
        for node in 0..3u64 {
            let mut q = QuantilesSketch::<u64>::with_seed(64, node).unwrap();
            for i in (node..90_000).step_by(3) {
                q.update(i);
            }
            images.push(q.ladder().to_wire_bytes());
        }
        let merged: QuantilesLadder<u64> = merge_wire_images(&images).unwrap();
        assert_eq!(merged.n(), 90_000);
        assert_eq!(merged.quantile(0.0), Some(0));
        assert_eq!(merged.quantile(1.0), Some(89_999));
        let med = merged.quantile(0.5).unwrap() as f64;
        assert!((med - 45_000.0).abs() < 5_000.0, "median {med}");
    }

    #[test]
    fn updatable_quantiles_image_is_not_a_ladder() {
        let mut q = QuantilesSketch::<u64>::with_seed(16, 1).unwrap();
        for i in 0..1_000u64 {
            q.update(i);
        }
        let bytes = q.to_bytes();
        assert_eq!(
            WireHeader::peek_family(&bytes).unwrap(),
            SketchFamily::Quantiles
        );
        assert!(matches!(
            QuantilesLadder::<u64>::from_wire_bytes(&bytes),
            Err(WireError::Invariant { .. })
        ));
        // And the updatable decoder round-trips it.
        let back = QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(0)).unwrap();
        assert_eq!(back.n(), 1_000);
    }

    #[test]
    fn item_width_mismatch_rejected() {
        let mut mg = MisraGriesSketch::<u64>::new(4).unwrap();
        mg.update(9);
        let mut bytes = mg.to_wire_bytes().to_vec();
        bytes[7] = 4; // forge item_width
        assert!(matches!(
            MisraGriesSketch::<u64>::from_wire_bytes(&bytes),
            Err(WireError::ItemWidth {
                expected: 8,
                found: 4
            })
        ));
    }
}
