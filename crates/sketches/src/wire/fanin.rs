//! Multiway fan-in merge kernels over borrowed wire views.
//!
//! [`merge_wire_images`](super::merge_wire_images) historically decoded
//! every raw image into an owned sketch and folded the list **pairwise**
//! — `2f` allocations and O(n·f) copy/compare work for a coordinator
//! fanning in `f` Θ images of `n` retained hashes. The kernels in this
//! module fan the whole list in with **one pass** per family, reading
//! items straight out of the raw bytes through the views in
//! [`super::view`]:
//!
//! * **Θ** — a k-way union over sorted views driven by a loser tree,
//!   with a streaming Θ-threshold cut: as soon as a cursor reaches the
//!   joint Θ (the minimum across images) it leaves the tournament.
//!   Unsorted shard images are canonicalised (filter < joint Θ, sort,
//!   dedup) into a reusable scratch segment first, then race like any
//!   other cursor.
//! * **HLL** — register-wise max folded directly from the payload bytes
//!   of every image into one accumulator; the rank bound is validated
//!   once on the accumulator (a max fold can only preserve or raise a
//!   violation, so the kernel rejects exactly what per-image decoding
//!   rejected).
//! * **Quantiles ladder** — one O(total runs) concatenation of borrowed
//!   runs into the result ladder; no intermediate ladder is built.
//! * **Misra–Gries** — counter accumulation from every view into a
//!   single map with one final reduction back to `k` counters (the
//!   mergeable-summaries construction; same `n/(k+1)` bound as the
//!   pairwise fold).
//!
//! The Θ and HLL kernels write *only* into a caller-owned
//! [`MergeScratch`] arena and return borrowed results
//! ([`ThetaFanin`] / [`HllFanin`]), so a warm coordinator loop performs
//! **zero steady-state allocations** — the claim `merge_tree` measures
//! with a counting allocator. Ladder and Misra–Gries results are owned
//! sketches (their state is inherently heap-backed), still built in one
//! pass.
//!
//! Failure taxonomy is unchanged: typed [`WireError`], never a panic,
//! and the kernels reject exactly the inputs the decode-then-fold path
//! rejected. The one caveat is *which* of several defects in a
//! multi-image batch is reported: the kernels validate all headers
//! before any items, so e.g. a seed mismatch on image 2 can surface
//! before a corrupt hash on image 1 that the pairwise fold would have
//! hit first.

use super::view::{
    validate_registers, HllWireView, LadderRunSink, LadderWireView, MgWireView, ThetaWireView,
    THETA_ITEMS_OFF,
};
use super::WireItem;
use crate::error::WireError;
use crate::frequency::MisraGriesSketch;
use crate::hll::{estimate_from_registers, HllSketch};
use crate::quantiles::QuantilesLadder;
use crate::theta::{CompactThetaSketch, ThetaRead};
use std::hash::Hash;

/// Tree slot / cursor-source marker for "nothing here".
const SENTINEL: u32 = u32::MAX;

/// Cursor source marker: the cursor streams from the canonicalised
/// scratch segment, not from a raw image.
const CANON_SRC: u32 = u32::MAX;

/// Cursor head marker for an exhausted cursor. Safe as a sentinel: every
/// live head is a hash strictly below its image's Θ ≤ `u64::MAX`.
const EXHAUSTED: u64 = u64::MAX;

/// One streaming position inside a Θ image (or a canonicalised scratch
/// segment). Plain `Copy` data — no borrowed slice — so cursors can live
/// in the reusable [`MergeScratch`] across calls; byte access resolves
/// through the image list at advance time.
#[derive(Debug, Clone, Copy, Default)]
struct ThetaCursor {
    /// Image index, or [`CANON_SRC`] for a scratch segment.
    src: u32,
    /// Next item index (into the image's hash region, or into `canon`).
    pos: u64,
    /// One-past-last item index.
    end: u64,
    /// The source image's own Θ (item validation bound).
    theta: u64,
    /// Last hash read (strict-ascending validation state).
    last: u64,
    /// Current front item, or [`EXHAUSTED`].
    head: u64,
}

/// Reusable arena for the fan-in kernels.
///
/// All kernel working state — canonicalisation buffers, the loser tree,
/// the output hash run, the HLL register accumulator — lives here, so a
/// coordinator that keeps one `MergeScratch` across query ticks merges
/// with zero steady-state allocations once the buffers have grown to the
/// working-set high-water mark.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{QuickSelectThetaSketch, ThetaRead};
/// use fcds_sketches::wire::{theta_multiway_union_into, MergeScratch, WireEncode};
///
/// let images: Vec<_> = (0..4u64)
///     .map(|node| {
///         let mut s = QuickSelectThetaSketch::new(6, 7).unwrap();
///         for i in (node..8_000).step_by(4) {
///             s.update(i);
///         }
///         s.compact().to_wire_bytes()
///     })
///     .collect();
/// let mut scratch = MergeScratch::new();
/// // Warm loop: after the first call, no further allocations.
/// for _ in 0..3 {
///     let union = theta_multiway_union_into(&mut scratch, &images).unwrap();
///     let est = union.estimate();
///     assert!((est - 8_000.0).abs() / 8_000.0 < 0.1, "estimate {est}");
/// }
/// ```
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// Canonicalised hashes of unsorted Θ images, one segment per image.
    canon: Vec<u64>,
    /// The merged, deduplicated output hash run.
    out: Vec<u64>,
    /// One cursor per input image.
    cursors: Vec<ThetaCursor>,
    /// Loser-tree slots (`2 × next_power_of_two(f)` of them).
    tree: Vec<u32>,
    /// HLL register accumulator.
    regs: Vec<u8>,
}

impl MergeScratch {
    /// Creates an empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The borrowed result of a Θ multiway union: joint Θ, seed, and the
/// merged hash run living inside the caller's [`MergeScratch`].
///
/// Implements [`ThetaRead`], so estimation and set operations work
/// directly on the borrowed state; [`Self::to_compact`] materialises an
/// owned [`CompactThetaSketch`] when one is needed.
#[derive(Debug, Clone, Copy)]
pub struct ThetaFanin<'s> {
    theta: u64,
    seed: u64,
    hashes: &'s [u64],
}

impl<'s> ThetaFanin<'s> {
    /// The merged hashes: strictly ascending, all below the joint Θ.
    pub fn sorted_hashes(&self) -> &'s [u64] {
        self.hashes
    }

    /// Materialises an owned compact sketch from the borrowed state.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the kernel emits a valid hash run); any
    /// constructor rejection is reported as the decoder's
    /// `"theta parts"` invariant.
    pub fn to_compact(&self) -> Result<CompactThetaSketch, WireError> {
        CompactThetaSketch::from_parts(self.theta, self.seed, self.hashes.to_vec())
            .map_err(|e| WireError::invariant("theta parts", e.to_string()))
    }
}

impl ThetaRead for ThetaFanin<'_> {
    fn theta(&self) -> u64 {
        self.theta
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn retained(&self) -> usize {
        self.hashes.len()
    }

    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        Box::new(self.hashes.iter().copied())
    }
}

/// The borrowed result of an HLL multiway merge: the folded register
/// array living inside the caller's [`MergeScratch`].
#[derive(Debug, Clone, Copy)]
pub struct HllFanin<'s> {
    lg_m: u8,
    seed: u64,
    registers: &'s [u8],
}

impl<'s> HllFanin<'s> {
    /// The configured `lg_m`.
    pub fn lg_m(&self) -> u8 {
        self.lg_m
    }

    /// The hash seed shared by all merged images.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The folded (register-wise max) register array.
    pub fn registers(&self) -> &'s [u8] {
        self.registers
    }

    /// Distinct-count estimate straight off the borrowed registers.
    pub fn estimate(&self) -> f64 {
        estimate_from_registers(self.registers)
    }

    /// Materialises an owned [`HllSketch`] from the borrowed state.
    ///
    /// # Errors
    ///
    /// Never fails in practice (`lg_m` was validated at parse); any
    /// constructor rejection is reported as the decoder's
    /// `"hll params"` invariant.
    pub fn to_sketch(&self) -> Result<HllSketch, WireError> {
        let mut sketch = HllSketch::new(self.lg_m, self.seed)
            .map_err(|e| WireError::invariant("hll params", e.to_string()))?;
        sketch.registers_mut().copy_from_slice(self.registers);
        Ok(sketch)
    }
}

#[inline]
fn read_hash(image: &[u8], pos: u64) -> u64 {
    let off = THETA_ITEMS_OFF + 8 * pos as usize;
    // The cursor's `end` bound was established from the validated
    // count, so the slice is always in range.
    u64::from_le_bytes(image[off..off + 8].try_into().unwrap_or([0; 8]))
}

/// Advances `cur` to its next emittable hash, running the decoder's
/// item validation as it streams. On reaching the joint Θ cut, the
/// unread tail is validated too (the decode-then-fold path validated
/// every byte, so the kernel must reject the same inputs) and the
/// cursor exhausts.
fn theta_cursor_advance<B: AsRef<[u8]>>(
    cur: &mut ThetaCursor,
    images: &[B],
    canon: &[u64],
    joint: u64,
) -> Result<(), WireError> {
    if cur.pos == cur.end {
        cur.head = EXHAUSTED;
        return Ok(());
    }
    if cur.src == CANON_SRC {
        // Canonicalised segment: already validated, deduplicated and
        // filtered below the joint Θ.
        cur.head = canon[cur.pos as usize];
        cur.pos += 1;
        return Ok(());
    }
    let bytes = images[cur.src as usize].as_ref();
    let h = read_hash(bytes, cur.pos);
    if h == 0 {
        return Err(WireError::invariant("theta hashes", "hash 0 is reserved"));
    }
    if h >= cur.theta {
        return Err(WireError::invariant(
            "theta hashes",
            format!("hash {h} not below theta {}", cur.theta),
        ));
    }
    if h <= cur.last {
        return Err(WireError::invariant(
            "theta hashes",
            "hashes not strictly ascending",
        ));
    }
    if h >= joint {
        // Θ cut: nothing at or above the joint threshold can be
        // emitted, but the tail must still validate.
        let mut prev = h;
        for pos in cur.pos + 1..cur.end {
            let t = read_hash(bytes, pos);
            if t == 0 {
                return Err(WireError::invariant("theta hashes", "hash 0 is reserved"));
            }
            if t >= cur.theta {
                return Err(WireError::invariant(
                    "theta hashes",
                    format!("hash {t} not below theta {}", cur.theta),
                ));
            }
            if t <= prev {
                return Err(WireError::invariant(
                    "theta hashes",
                    "hashes not strictly ascending",
                ));
            }
            prev = t;
        }
        cur.pos = cur.end;
        cur.head = EXHAUSTED;
        return Ok(());
    }
    cur.last = h;
    cur.head = h;
    cur.pos += 1;
    Ok(())
}

#[inline]
fn slot_key(slot: u32, cursors: &[ThetaCursor]) -> u64 {
    if slot == SENTINEL {
        u64::MAX
    } else {
        cursors[slot as usize].head
    }
}

/// K-way untrimmed Θ union over raw wire images, into the caller's
/// scratch arena. Result-identical to folding the images pairwise with
/// [`super::merge_wire_images`]: joint Θ = min over images, every
/// distinct hash below it kept, first image's seed wins.
///
/// # Errors
///
/// The decode-then-fold path's errors: any structural or item-level
/// decode failure, [`WireError::Incompatible`] on a seed mismatch, or
/// [`WireError::Invariant`] for an empty image list.
pub fn theta_multiway_union_into<'s, B: AsRef<[u8]>>(
    scratch: &'s mut MergeScratch,
    images: &[B],
) -> Result<ThetaFanin<'s>, WireError> {
    if images.is_empty() {
        return Err(WireError::invariant("merge", "no images to merge"));
    }
    let MergeScratch {
        canon,
        out,
        cursors,
        tree,
        ..
    } = scratch;
    canon.clear();
    out.clear();
    cursors.clear();

    // Header pass: joint seed (first wins, as in the pairwise fold) and
    // joint Θ (minimum across images).
    let mut seed = 0u64;
    let mut joint = u64::MAX;
    for (i, image) in images.iter().enumerate() {
        let view = ThetaWireView::parse(image.as_ref())?;
        if i == 0 {
            seed = view.seed();
        } else if view.seed() != seed {
            return Err(WireError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                view.seed(),
                seed
            )));
        }
        joint = joint.min(view.theta());
    }

    // Cursor pass: sorted images stream in place; unsorted shard images
    // are canonicalised into a scratch segment first.
    for (i, image) in images.iter().enumerate() {
        let view = ThetaWireView::parse(image.as_ref())?;
        if view.is_sorted() {
            cursors.push(ThetaCursor {
                src: i as u32,
                pos: 0,
                end: view.len() as u64,
                theta: view.theta(),
                last: 0,
                head: 0,
            });
        } else {
            let seg = canon.len();
            for h in view.hashes() {
                if h == 0 {
                    return Err(WireError::invariant("theta hashes", "hash 0 is reserved"));
                }
                if h >= view.theta() {
                    return Err(WireError::invariant(
                        "theta hashes",
                        format!("hash {h} not below theta {}", view.theta()),
                    ));
                }
                if h < joint {
                    canon.push(h);
                }
            }
            canon[seg..].sort_unstable();
            // In-place dedup of the new segment.
            let mut w = seg;
            let mut r = seg;
            while r < canon.len() {
                let v = canon[r];
                if w == seg || canon[w - 1] != v {
                    canon[w] = v;
                    w += 1;
                }
                r += 1;
            }
            canon.truncate(w);
            cursors.push(ThetaCursor {
                src: CANON_SRC,
                pos: seg as u64,
                end: w as u64,
                theta: view.theta(),
                last: 0,
                head: 0,
            });
        }
    }
    for cur in cursors.iter_mut() {
        theta_cursor_advance(cur, images, canon, joint)?;
    }

    // Loser tree over the cursor heads: leaves at `nk + i`, padded with
    // sentinels up to the next power of two. Build the winner bracket
    // bottom-up, then convert internal nodes to hold the *loser* of
    // their match (top-down, so children still hold winners when read).
    let f = cursors.len();
    let nk = f.next_power_of_two();
    tree.clear();
    tree.resize(2 * nk, SENTINEL);
    for (i, slot) in tree[nk..nk + f].iter_mut().enumerate() {
        *slot = i as u32;
    }
    for node in (1..nk).rev() {
        let (a, b) = (tree[2 * node], tree[2 * node + 1]);
        tree[node] = if slot_key(a, cursors) <= slot_key(b, cursors) {
            a
        } else {
            b
        };
    }
    let mut winner = tree[1];
    for node in 1..nk {
        let (a, b) = (tree[2 * node], tree[2 * node + 1]);
        tree[node] = if tree[node] == a { b } else { a };
    }

    // Tournament: emit the minimum head, advance its cursor, replay the
    // leaf-to-root path. Duplicates across images collapse on emit
    // (heads are ≥ 1, so 0 is a safe "nothing emitted yet" marker).
    let mut last_emitted = 0u64;
    loop {
        if slot_key(winner, cursors) == u64::MAX {
            break; // the minimum is exhausted ⇒ every cursor is
        }
        let j = winner as usize;
        let h = cursors[j].head;
        if h != last_emitted {
            out.push(h);
            last_emitted = h;
        }
        theta_cursor_advance(&mut cursors[j], images, canon, joint)?;
        let mut node = (nk + j) >> 1;
        let mut cand = winner;
        while node > 0 {
            let loser = tree[node];
            if slot_key(loser, cursors) < slot_key(cand, cursors) {
                tree[node] = cand;
                cand = loser;
            }
            node >>= 1;
        }
        winner = cand;
    }

    Ok(ThetaFanin {
        theta: joint,
        seed,
        hashes: out,
    })
}

/// Owned-result convenience over [`theta_multiway_union_into`] (one
/// fresh scratch arena per call — keep your own arena in a loop).
///
/// # Errors
///
/// See [`theta_multiway_union_into`].
pub fn theta_multiway_union<B: AsRef<[u8]>>(images: &[B]) -> Result<CompactThetaSketch, WireError> {
    let mut scratch = MergeScratch::new();
    theta_multiway_union_into(&mut scratch, images)?.to_compact()
}

/// Register-max HLL merge over raw wire images, folded directly from
/// payload bytes into the caller's scratch accumulator.
///
/// The rank bound is validated once on the folded accumulator: a max
/// fold preserves or raises any out-of-range register, so the kernel
/// rejects exactly the images per-image decoding rejected (the reported
/// register *value* may be the folded maximum rather than one image's).
///
/// # Errors
///
/// The decode-then-fold path's errors: structural decode failures,
/// [`WireError::Incompatible`] on an `lg_m` or seed mismatch, or
/// [`WireError::Invariant`] for an empty image list or an out-of-range
/// register.
pub fn hll_multiway_merge_into<'s, B: AsRef<[u8]>>(
    scratch: &'s mut MergeScratch,
    images: &[B],
) -> Result<HllFanin<'s>, WireError> {
    let (first, rest) = images
        .split_first()
        .ok_or_else(|| WireError::invariant("merge", "no images to merge"))?;
    let regs = &mut scratch.regs;
    let v0 = HllWireView::parse(first.as_ref())?;
    let (lg_m, seed) = (v0.lg_m(), v0.seed());
    regs.clear();
    regs.extend_from_slice(v0.registers());
    for image in rest {
        let view = HllWireView::parse(image.as_ref())?;
        if view.lg_m() != lg_m {
            return Err(WireError::incompatible(format!(
                "lg_m mismatch: {lg_m} vs {}",
                view.lg_m()
            )));
        }
        if view.seed() != seed {
            return Err(WireError::incompatible(format!(
                "hash seed mismatch: {seed} vs {}",
                view.seed()
            )));
        }
        for (a, &b) in regs.iter_mut().zip(view.registers()) {
            if b > *a {
                *a = b;
            }
        }
    }
    validate_registers(lg_m, regs)?;
    Ok(HllFanin {
        lg_m,
        seed,
        registers: regs,
    })
}

/// Owned-result convenience over [`hll_multiway_merge_into`] (one fresh
/// scratch arena per call — keep your own arena in a loop).
///
/// # Errors
///
/// See [`hll_multiway_merge_into`].
pub fn hll_multiway_merge<B: AsRef<[u8]>>(images: &[B]) -> Result<HllSketch, WireError> {
    let mut scratch = MergeScratch::new();
    hll_multiway_merge_into(&mut scratch, images)?.to_sketch()
}

/// Materialises runs during the ladder validation pass: each run gets
/// one exactly-sized `Vec`, each item is decoded exactly once.
struct CollectRuns<T> {
    runs: Vec<(Vec<T>, u64)>,
}

impl<T: Clone> LadderRunSink<T> for CollectRuns<T> {
    fn run(&mut self, weight: u64, len: usize) {
        self.runs.push((Vec::with_capacity(len), weight));
    }

    fn item(&mut self, item: &T) {
        self.runs
            .last_mut()
            .expect("parse announces a run before its items")
            .0
            .push(item.clone());
    }
}

/// Quantiles ladder fan-in: one streaming pass per image splices every
/// run straight into the result ladder — each item is decoded exactly
/// once (validation and materialisation fused), and no intermediate
/// per-image ladder exists. Byte-identical to the pairwise concat fold.
///
/// # Errors
///
/// The decode-then-fold path's errors: any ladder decode failure, the
/// combined-`n` overflow invariant, or an empty image list.
pub fn ladder_multiway_concat<T, B>(images: &[B]) -> Result<QuantilesLadder<T>, WireError>
where
    T: Ord + Clone + WireItem,
    B: AsRef<[u8]>,
{
    if images.is_empty() {
        return Err(WireError::invariant("merge", "no images to merge"));
    }
    let mut sink = CollectRuns { runs: Vec::new() };
    let mut n = 0u64;
    let mut min_item: Option<T> = None;
    let mut max_item: Option<T> = None;
    for image in images {
        let view = LadderWireView::<T>::parse_sink(image.as_ref(), &mut sink)?;
        n = n
            .checked_add(view.n())
            .ok_or_else(|| WireError::invariant("ladder merge", "combined n overflows u64"))?;
        if let Some(m) = view.min_item() {
            if min_item.as_ref().is_none_or(|cur| m < cur) {
                min_item = Some(m.clone());
            }
        }
        if let Some(m) = view.max_item() {
            if max_item.as_ref().is_none_or(|cur| m > cur) {
                max_item = Some(m.clone());
            }
        }
    }
    Ok(QuantilesLadder::from_wire_runs(
        sink.runs, n, min_item, max_item,
    ))
}

/// Misra–Gries fan-in: counters from every image accumulate into a
/// single map, followed by one final reduction back to `k` counters —
/// the mergeable-summaries construction, preserving the `n/(k+1)` error
/// bound for any fan-in. (When reductions fire, retained counter values
/// may differ from the pairwise fold's — both are valid summaries of the
/// union stream; in exact mode, distinct items ≤ k, the results are
/// identical.)
///
/// # Errors
///
/// Any Misra–Gries decode failure, [`WireError::Incompatible`] on a `k`
/// mismatch, the combined-`n` overflow invariant, or an empty image
/// list.
pub fn mg_multiway_merge<T, B>(images: &[B]) -> Result<MisraGriesSketch<T>, WireError>
where
    T: Eq + Hash + Ord + Clone + WireItem,
    B: AsRef<[u8]>,
{
    if images.is_empty() {
        return Err(WireError::invariant("merge", "no images to merge"));
    }
    let mut views = Vec::with_capacity(images.len());
    for image in images {
        views.push(MgWireView::<T>::parse(image.as_ref())?);
    }
    let k = views[0].k();
    let mut n = 0u64;
    let mut error = 0u64;
    for view in &views {
        if view.k() != k {
            return Err(WireError::incompatible(format!(
                "k mismatch: {k} vs {}",
                view.k()
            )));
        }
        n = n
            .checked_add(view.n())
            .ok_or_else(|| WireError::invariant("misra-gries merge", "combined n overflows u64"))?;
        // Per-image `Σ counters + error ≤ n` makes the error sum
        // unconditionally representable once Σn is.
        error += view.error();
    }
    MisraGriesSketch::from_parts(
        k as usize,
        n,
        error,
        views.iter().flat_map(|view| view.entries()),
    )
    .map_err(|e| WireError::invariant("misra-gries parts", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::QuickSelectThetaSketch;
    use crate::wire::{encode_theta_unsorted, merge_wire_images, WireDecode, WireEncode};
    use bytes::Bytes;

    fn theta_images(nodes: u64, per_node: u64, lg_k: u8, seed: u64) -> Vec<Bytes> {
        (0..nodes)
            .map(|node| {
                let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
                for i in 0..per_node {
                    s.update(node * per_node + i);
                }
                s.compact().to_wire_bytes()
            })
            .collect()
    }

    #[test]
    fn theta_multiway_equals_pairwise() {
        let images = theta_images(8, 5_000, 6, 7);
        let mut pairwise: CompactThetaSketch =
            CompactThetaSketch::from_wire_bytes(&images[0]).unwrap();
        for image in &images[1..] {
            let part = CompactThetaSketch::from_wire_bytes(image).unwrap();
            crate::wire::WireMerge::wire_merge_from(&mut pairwise, &part).unwrap();
        }
        let mut scratch = MergeScratch::new();
        let multiway = theta_multiway_union_into(&mut scratch, &images).unwrap();
        assert_eq!(multiway.theta(), pairwise.theta());
        assert_eq!(multiway.seed(), pairwise.seed());
        assert_eq!(multiway.sorted_hashes(), pairwise.sorted_hashes());
        assert_eq!(multiway.to_compact().unwrap(), pairwise);
    }

    #[test]
    fn theta_multiway_handles_mixed_sorted_unsorted() {
        let mut images = theta_images(3, 4_000, 6, 7);
        let mut s = QuickSelectThetaSketch::new(6, 7).unwrap();
        for i in 10_000..14_000u64 {
            s.update(i);
        }
        images.push(encode_theta_unsorted(&s));
        let pairwise: CompactThetaSketch = merge_wire_images(&images).unwrap();
        let multiway = theta_multiway_union(&images).unwrap();
        assert_eq!(multiway, pairwise);
    }

    #[test]
    fn theta_multiway_singleton_and_empty() {
        let images = theta_images(1, 2_000, 6, 7);
        let direct = CompactThetaSketch::from_wire_bytes(&images[0]).unwrap();
        assert_eq!(theta_multiway_union(&images).unwrap(), direct);
        let none: [Bytes; 0] = [];
        assert!(matches!(
            theta_multiway_union(&none),
            Err(WireError::Invariant { .. })
        ));
        let empty = CompactThetaSketch::empty(7).to_wire_bytes();
        let merged = theta_multiway_union(&[empty]).unwrap();
        assert_eq!(merged.retained(), 0);
    }

    #[test]
    fn theta_multiway_rejects_seed_mismatch() {
        let a = theta_images(1, 100, 5, 1).remove(0);
        let b = theta_images(1, 100, 5, 2).remove(0);
        assert!(matches!(
            theta_multiway_union(&[a, b]),
            Err(WireError::Incompatible { .. })
        ));
    }

    #[test]
    fn theta_multiway_rejects_corrupt_tail_past_cut() {
        // Image B has a smaller Θ than image A; corrupt a hash in A's
        // tail *above* the joint Θ. The streaming cut must still reject
        // it, exactly as decode-then-fold did.
        let a = {
            let mut s = QuickSelectThetaSketch::new(10, 7).unwrap();
            for i in 0..2_000u64 {
                s.update(i);
            }
            s.compact().to_wire_bytes()
        };
        let b = {
            let mut s = QuickSelectThetaSketch::new(4, 7).unwrap();
            for i in 0..100_000u64 {
                s.update(i);
            }
            s.compact().to_wire_bytes()
        };
        let joint = ThetaWireView::parse(&b).unwrap().theta();
        let va = ThetaWireView::parse(&a).unwrap();
        assert!(va.theta() > joint);
        // Find a hash of A above the joint Θ and zero it out.
        let idx = va
            .hashes()
            .position(|h| h >= joint)
            .expect("A must retain hashes above the joint theta");
        let mut corrupt = a.to_vec();
        let off = THETA_ITEMS_OFF + 8 * idx;
        corrupt[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(CompactThetaSketch::from_wire_bytes(&corrupt).is_err());
        let images = [Bytes::from(corrupt), b];
        assert!(matches!(
            theta_multiway_union(&images),
            Err(WireError::Invariant { .. })
        ));
    }

    #[test]
    fn hll_multiway_equals_pairwise() {
        let images: Vec<Bytes> = (0..6u64)
            .map(|node| {
                let mut h = HllSketch::new(8, 42).unwrap();
                for i in (node..60_000).step_by(6) {
                    h.update(i);
                }
                h.to_wire_bytes()
            })
            .collect();
        let pairwise: HllSketch = merge_wire_images(&images).unwrap();
        let mut scratch = MergeScratch::new();
        let multiway = hll_multiway_merge_into(&mut scratch, &images).unwrap();
        assert_eq!(multiway.registers(), pairwise.registers());
        assert_eq!(multiway.estimate(), pairwise.estimate());
        assert_eq!(multiway.to_sketch().unwrap(), pairwise);
    }

    #[test]
    fn hll_multiway_rejects_mismatches() {
        let a = HllSketch::new(8, 1).unwrap().to_wire_bytes();
        let b = HllSketch::new(9, 1).unwrap().to_wire_bytes();
        let c = HllSketch::new(8, 2).unwrap().to_wire_bytes();
        assert!(matches!(
            hll_multiway_merge(&[a.clone(), b]),
            Err(WireError::Incompatible { .. })
        ));
        assert!(matches!(
            hll_multiway_merge(&[a, c]),
            Err(WireError::Incompatible { .. })
        ));
    }

    #[test]
    fn ladder_multiway_is_byte_identical_to_pairwise() {
        use crate::quantiles::QuantilesSketch;
        let images: Vec<Bytes> = (0..4u64)
            .map(|node| {
                let mut q = QuantilesSketch::<u64>::with_seed(32, node).unwrap();
                for i in (node..40_000).step_by(4) {
                    q.update(i);
                }
                q.ladder().to_wire_bytes()
            })
            .collect();
        let pairwise: QuantilesLadder<u64> = merge_wire_images(&images).unwrap();
        let multiway: QuantilesLadder<u64> = ladder_multiway_concat(&images).unwrap();
        assert_eq!(multiway.to_wire_bytes(), pairwise.to_wire_bytes());
    }

    #[test]
    fn mg_multiway_matches_pairwise_in_exact_mode() {
        let images: Vec<Bytes> = (0..4u64)
            .map(|node| {
                let mut mg = MisraGriesSketch::<u64>::new(64).unwrap();
                for i in 0..5_000u64 {
                    mg.update((node * 7 + i) % 20); // 20 distinct « k
                }
                mg.to_wire_bytes()
            })
            .collect();
        let mut pairwise: MisraGriesSketch<u64> =
            MisraGriesSketch::from_wire_bytes(&images[0]).unwrap();
        for image in &images[1..] {
            let part = MisraGriesSketch::<u64>::from_wire_bytes(image).unwrap();
            crate::wire::WireMerge::wire_merge_from(&mut pairwise, &part).unwrap();
        }
        let multiway: MisraGriesSketch<u64> = mg_multiway_merge(&images).unwrap();
        assert_eq!(multiway.n(), pairwise.n());
        assert_eq!(multiway.max_error(), pairwise.max_error());
        assert_eq!(multiway.to_wire_bytes(), pairwise.to_wire_bytes());
    }

    #[test]
    fn mg_multiway_rejects_k_mismatch() {
        let mut a = MisraGriesSketch::<u64>::new(4).unwrap();
        let mut b = MisraGriesSketch::<u64>::new(8).unwrap();
        a.update(1);
        b.update(1);
        assert!(matches!(
            mg_multiway_merge::<u64, _>(&[a.to_wire_bytes(), b.to_wire_bytes()]),
            Err(WireError::Incompatible { .. })
        ));
    }
}
