//! Compact wire format for HLL sketches.
//!
//! Layout (little-endian):
//! `magic(u16) | version(u8) | lg_m(u8) | pad(u32) | seed(u64) | registers…`
//! with exactly `2^lg_m` register bytes.

use super::{HllSketch, MAX_LG_M, MIN_LG_M};
use crate::error::{Result, SketchError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0xFC11;
const VERSION: u8 = 1;

impl HllSketch {
    /// Serialises the sketch into its compact wire format.
    pub fn to_bytes(&self) -> Bytes {
        let regs = self.registers();
        let mut buf = BytesMut::with_capacity(16 + regs.len());
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.lg_m());
        buf.put_u32_le(0);
        buf.put_u64_le(self.seed());
        buf.put_slice(regs);
        buf.freeze()
    }

    /// Deserialises a sketch produced by [`HllSketch::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Corrupt`] on bad magic/version, truncation,
    /// or register values exceeding the maximum possible rank.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self> {
        if data.len() < 16 {
            return Err(SketchError::corrupt("preamble truncated"));
        }
        let magic = data.get_u16_le();
        if magic != MAGIC {
            return Err(SketchError::corrupt(format!("bad magic {magic:#x}")));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(SketchError::corrupt(format!("unknown version {version}")));
        }
        let lg_m = data.get_u8();
        if !(MIN_LG_M..=MAX_LG_M).contains(&lg_m) {
            return Err(SketchError::corrupt(format!("lg_m {lg_m} out of range")));
        }
        let _pad = data.get_u32_le();
        let seed = data.get_u64_le();
        let m = 1usize << lg_m;
        if data.remaining() < m {
            return Err(SketchError::corrupt("register array truncated"));
        }
        let max_rho = 64 - lg_m + 1;
        let mut sketch = HllSketch::new(lg_m, seed)?;
        let regs = sketch.registers_mut();
        for slot in regs.iter_mut() {
            let r = data.get_u8();
            if r > max_rho {
                return Err(SketchError::corrupt(format!(
                    "register value {r} exceeds max rank {max_rho}"
                )));
            }
            *slot = r;
        }
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut h = HllSketch::new(10, 77).unwrap();
        for i in 0..50_000u64 {
            h.update(i);
        }
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), 16 + 1024);
        let back = HllSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.estimate(), h.estimate());
    }

    #[test]
    fn empty_round_trip() {
        let h = HllSketch::new(4, 0).unwrap();
        let back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut b = HllSketch::new(4, 0).unwrap().to_bytes().to_vec();
        b[0] ^= 0xFF;
        assert!(HllSketch::from_bytes(&b).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let b = HllSketch::new(6, 0).unwrap().to_bytes();
        assert!(HllSketch::from_bytes(&b[..b.len() - 1]).is_err());
        assert!(HllSketch::from_bytes(&b[..8]).is_err());
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut b = HllSketch::new(4, 0).unwrap().to_bytes().to_vec();
        b[16] = 62; // max rank for lg_m = 4 is 61
        assert!(HllSketch::from_bytes(&b).is_err());
    }

    #[test]
    fn deserialised_sketch_keeps_ingesting() {
        let mut h = HllSketch::new(10, 5).unwrap();
        for i in 0..10_000u64 {
            h.update(i);
        }
        let mut back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        for i in 10_000..20_000u64 {
            back.update(i);
            h.update(i);
        }
        assert_eq!(back, h);
    }
}
