//! Convenience byte-string API for HLL sketches.
//!
//! The actual codec lives in the unified [`crate::wire`] module (HLL
//! family): a 16-byte envelope header followed by
//! `lg_m(u8) | pad(7×u8) | seed(u64) | 2^lg_m register bytes`. The
//! methods here are thin aliases kept for callers that do not need the
//! trait machinery.

use super::HllSketch;
use crate::error::Result;
use crate::wire::{WireDecode, WireEncode};
use bytes::Bytes;

impl HllSketch {
    /// Serialises the sketch into the unified wire format (HLL family).
    /// Alias of [`WireEncode::to_wire_bytes`].
    pub fn to_bytes(&self) -> Bytes {
        self.to_wire_bytes()
    }

    /// Deserialises a sketch produced by [`HllSketch::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns the [`crate::wire::WireDecode`] failure folded into
    /// [`crate::error::SketchError`]: `Corrupt` on bad magic/version,
    /// truncation, or register values exceeding the maximum possible
    /// rank. Callers that need the precise corruption class should use
    /// [`WireDecode::from_wire_bytes`] directly.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut h = HllSketch::new(10, 77).unwrap();
        for i in 0..50_000u64 {
            h.update(i);
        }
        let bytes = h.to_bytes();
        // 16-byte envelope + 16-byte fixed payload + 2^10 registers.
        assert_eq!(bytes.len(), 16 + 16 + 1024);
        let back = HllSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.estimate(), h.estimate());
    }

    #[test]
    fn empty_round_trip() {
        let h = HllSketch::new(4, 0).unwrap();
        let back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut b = HllSketch::new(4, 0).unwrap().to_bytes().to_vec();
        b[0] ^= 0xFF;
        assert!(HllSketch::from_bytes(&b).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let b = HllSketch::new(6, 0).unwrap().to_bytes();
        assert!(HllSketch::from_bytes(&b[..b.len() - 1]).is_err());
        assert!(HllSketch::from_bytes(&b[..8]).is_err());
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut b = HllSketch::new(4, 0).unwrap().to_bytes().to_vec();
        // First register: 16-byte envelope + lg_m/pad/seed (16 bytes).
        b[32] = 62; // max rank for lg_m = 4 is 61
        assert!(HllSketch::from_bytes(&b).is_err());
    }

    #[test]
    fn deserialised_sketch_keeps_ingesting() {
        let mut h = HllSketch::new(10, 5).unwrap();
        for i in 0..10_000u64 {
            h.update(i);
        }
        let mut back = HllSketch::from_bytes(&h.to_bytes()).unwrap();
        for i in 10_000..20_000u64 {
            back.update(i);
            h.update(i);
        }
        assert_eq!(back, h);
    }
}
