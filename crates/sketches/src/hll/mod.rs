//! HyperLogLog distinct-count sketch.
//!
//! The paper's artifact appendix lists HLL among the evaluated algorithms
//! and §8 points to "other sketches" as future work for the concurrent
//! framework; we implement a standard HLL (Flajolet et al. 2007 estimator
//! with the linear-counting small-range correction of HLL++) so that
//! `fcds-core` can demonstrate the framework's genericity on a third,
//! structurally different sketch (register maxima instead of sample sets).
//!
//! Registers are plain `u8` values; merging is register-wise max, which is
//! exactly the commutative, idempotent merge the composable-sketch
//! interface needs.

use crate::error::{Result, SketchError};
use crate::hash::Hashable;

mod wire;

/// Minimum `lg_m` (number of registers = 2^lg_m ≥ 16).
pub const MIN_LG_M: u8 = 4;
/// Maximum `lg_m` (2²¹ registers = 2 MiB of state).
pub const MAX_LG_M: u8 = 21;

/// HyperLogLog sketch with `m = 2^lg_m` one-byte registers.
///
/// # Examples
///
/// ```
/// use fcds_sketches::hll::HllSketch;
///
/// let mut h = HllSketch::new(12, 9001).unwrap(); // 4096 registers
/// for i in 0..500_000u64 {
///     h.update(i);
/// }
/// let est = h.estimate();
/// assert!((est - 500_000.0).abs() / 500_000.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HllSketch {
    lg_m: u8,
    seed: u64,
    registers: Vec<u8>,
}

impl HllSketch {
    /// Creates an empty HLL sketch with `2^lg_m` registers and the given
    /// hash seed.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `lg_m` is outside
    /// `MIN_LG_M..=MAX_LG_M`.
    pub fn new(lg_m: u8, seed: u64) -> Result<Self> {
        if !(MIN_LG_M..=MAX_LG_M).contains(&lg_m) {
            return Err(SketchError::invalid(
                "lg_m",
                format!("must be in {MIN_LG_M}..={MAX_LG_M}, got {lg_m}"),
            ));
        }
        Ok(HllSketch {
            lg_m,
            seed,
            registers: vec![0; 1 << lg_m],
        })
    }

    /// The number of registers `m`.
    pub fn m(&self) -> usize {
        1 << self.lg_m
    }

    /// The configured `lg_m`.
    pub fn lg_m(&self) -> u8 {
        self.lg_m
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read-only view of the registers (used by snapshots and merges).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Mutable register access for deserialisation (crate-internal).
    pub(crate) fn registers_mut(&mut self) -> &mut [u8] {
        &mut self.registers
    }

    /// Processes one stream item.
    #[inline]
    pub fn update<T: Hashable>(&mut self, item: T) {
        self.update_hash(item.hash_with_seed(self.seed));
    }

    /// Processes a pre-hashed item; returns `true` iff a register grew.
    #[inline]
    pub fn update_hash(&mut self, hash: u64) -> bool {
        let idx = (hash >> (64 - self.lg_m)) as usize;
        // Rank of the first 1-bit in the remaining (64 − lg_m) bits.
        let tail = hash << self.lg_m;
        let rho = if tail == 0 {
            (64 - self.lg_m as u32) + 1
        } else {
            tail.leading_zeros() + 1
        } as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
            true
        } else {
            false
        }
    }

    /// Distinct-count estimate: the HLL harmonic-mean estimator with the
    /// linear-counting correction for small cardinalities.
    pub fn estimate(&self) -> f64 {
        estimate_from_registers(&self.registers)
    }

    /// Merges another HLL sketch into this one (register-wise max).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] if `lg_m` or the seed differ.
    pub fn merge(&mut self, other: &HllSketch) -> Result<()> {
        if other.lg_m != self.lg_m {
            return Err(SketchError::incompatible(format!(
                "lg_m mismatch: {} vs {}",
                self.lg_m, other.lg_m
            )));
        }
        if other.seed != self.seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                self.seed, other.seed
            )));
        }
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if b > *a {
                *a = b;
            }
        }
        Ok(())
    }

    /// Resets all registers to zero.
    pub fn clear(&mut self) {
        self.registers.iter_mut().for_each(|r| *r = 0);
    }

    /// Returns `true` if no item has ever been retained.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// The theoretical relative standard error of HLL: `1.04/√m`.
    pub fn rse(&self) -> f64 {
        1.04 / (self.m() as f64).sqrt()
    }
}

/// The HLL harmonic-mean estimator with the linear-counting correction,
/// computed over a bare register array (`m = registers.len()`, which must
/// be a power of two). This is `HllSketch::estimate` without the sketch:
/// the wire fan-in kernel estimates straight off its borrowed
/// accumulator, never materialising an owned sketch.
pub fn estimate_from_registers(registers: &[u8]) -> f64 {
    let m = registers.len() as f64;
    let alpha = match registers.len() {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        m => 0.7213 / (1.0 + 1.079 / m as f64),
    };
    let sum: f64 = registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
    let raw = alpha * m * m / sum;
    let zeros = registers.iter().filter(|&&r| r == 0).count();
    if raw <= 2.5 * m && zeros > 0 {
        // Linear counting is more accurate in the small range.
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_lg_m() {
        assert!(HllSketch::new(3, 0).is_err());
        assert!(HllSketch::new(22, 0).is_err());
        assert!(HllSketch::new(4, 0).is_ok());
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HllSketch::new(10, 0).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_range_is_nearly_exact() {
        // Linear counting regime.
        let mut h = HllSketch::new(12, 1).unwrap();
        for i in 0..100u64 {
            h.update(i);
        }
        let est = h.estimate();
        assert!((est - 100.0).abs() < 5.0, "est = {est}");
    }

    #[test]
    fn duplicates_do_not_grow_estimate() {
        let mut h = HllSketch::new(10, 1).unwrap();
        for _ in 0..100 {
            for i in 0..50u64 {
                h.update(i);
            }
        }
        let est = h.estimate();
        assert!((est - 50.0).abs() < 5.0, "est = {est}");
    }

    #[test]
    fn large_range_within_rse() {
        let mut h = HllSketch::new(12, 42).unwrap();
        let n = 1_000_000u64;
        for i in 0..n {
            h.update(i);
        }
        let rel = (h.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * h.rse(), "relative error {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HllSketch::new(11, 7).unwrap();
        let mut b = HllSketch::new(11, 7).unwrap();
        let mut whole = HllSketch::new(11, 7).unwrap();
        for i in 0..200_000u64 {
            whole.update(i);
            if i < 120_000 {
                a.update(i);
            }
            if i >= 80_000 {
                b.update(i);
            }
        }
        a.merge(&b).unwrap();
        // Register-wise max of sub-streams == registers of the union.
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = HllSketch::new(10, 1).unwrap();
        let b = HllSketch::new(11, 1).unwrap();
        assert!(a.merge(&b).is_err());
        let c = HllSketch::new(10, 2).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = HllSketch::new(10, 1).unwrap();
        for i in 0..10_000u64 {
            a.update(i);
        }
        let before = a.clone();
        let copy = a.clone();
        a.merge(&copy).unwrap();
        assert_eq!(a, before);
    }

    #[test]
    fn clear_resets() {
        let mut h = HllSketch::new(10, 1).unwrap();
        for i in 0..1000u64 {
            h.update(i);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn rho_uses_post_index_bits() {
        // A hash of all-zeros after the index bits must yield the maximum
        // rho rather than panicking or wrapping.
        let mut h = HllSketch::new(4, 0).unwrap();
        assert!(h.update_hash(0));
        assert_eq!(h.registers()[0], 61); // 64-4+1
    }
}
