//! Θ sketches for distinct counting.
//!
//! A Θ sketch summarises a stream by retaining the hashes that fall below a
//! threshold Θ. Because hashes are uniform in the hash domain, the number
//! of distinct items is estimated as `retained / Θ` (with Θ expressed as a
//! fraction of the domain). Two families are provided:
//!
//! * [`KmvThetaSketch`] — the K-Minimum-Values sketch of Bar-Yossef et al.,
//!   exactly the running example of the paper's Algorithm 1: keep the `k`
//!   smallest hashes, let Θ be the largest retained one, and estimate
//!   `(k−1)/Θ`.
//! * [`QuickSelectThetaSketch`] — the `HeapQuickSelectSketch` family of
//!   Apache DataSketches, which the paper's evaluation actually measures
//!   (§7.1): a hash table holding between `k` and ~`2k` hashes, pruned by
//!   quick-select when full, with the unbiased estimator `retained/Θ`.
//!
//! Both expose the same read interface ([`ThetaRead`]) and can be frozen
//! into an immutable, sorted [`CompactThetaSketch`] that the set operations
//! in [`setops`] consume.
//!
//! ## Hash domain
//!
//! Θ lives in the unsigned 64-bit domain: `u64::MAX` plays the role of the
//! real value 1.0 and a hash is retained iff `hash < Θ`. The hash value `0`
//! is reserved as the hash-table empty marker, so item hashes are
//! normalised with [`normalize_hash`] (the induced bias is 2⁻⁶⁴ and is
//! ignored, as in DataSketches).

pub mod blocks;
pub mod compact;
pub mod jaccard;
pub mod kmv;
pub mod quickselect;
pub mod setops;

pub use blocks::{BlockSnapshot, HashBlocks, THETA_BLOCK_CAPACITY};
pub use compact::CompactThetaSketch;
pub use jaccard::{jaccard, jaccard_via_setops, JaccardEstimate};
pub use kmv::KmvThetaSketch;
pub use quickselect::QuickSelectThetaSketch;
pub use setops::{
    untrimmed_union, untrimmed_union_unsorted, ThetaANotB, ThetaIntersection, ThetaUnion,
};

/// Θ value representing 1.0: nothing is filtered, the sketch is exact.
pub const THETA_MAX: u64 = u64::MAX;

/// Converts an integer Θ into the fraction of the hash domain it covers,
/// i.e., the real-valued Θ ∈ (0, 1] used throughout the paper's analysis.
#[inline]
pub fn theta_to_fraction(theta: u64) -> f64 {
    theta as f64 / 18_446_744_073_709_551_616.0 // 2^64
}

/// Converts a fraction in `(0, 1]` into the integer hash-domain threshold.
///
/// Values outside the range are clamped.
#[inline]
pub fn fraction_to_theta(fraction: f64) -> u64 {
    if fraction >= 1.0 {
        THETA_MAX
    } else if fraction <= 0.0 {
        1
    } else {
        (fraction * 18_446_744_073_709_551_616.0) as u64
    }
}

/// Normalises a raw 64-bit hash into the sketch hash domain: the value `0`
/// is reserved as the empty-slot marker of open-addressed tables, so it is
/// mapped to `1`.
#[inline]
pub fn normalize_hash(h: u64) -> u64 {
    if h == 0 {
        1
    } else {
        h
    }
}

/// Read-side interface shared by every Θ sketch variant.
///
/// The trait captures exactly the state the paper's analysis talks about:
/// the threshold Θ, the set of retained hashes below it, and the induced
/// estimate. Set operations and the concurrent framework are generic over
/// it.
pub trait ThetaRead {
    /// The current threshold Θ in the integer hash domain.
    fn theta(&self) -> u64;

    /// The hash seed selecting the hash function (drawn from the oracle).
    fn seed(&self) -> u64;

    /// Number of retained hashes (all strictly below Θ).
    fn retained(&self) -> usize;

    /// Iterates over the retained hashes in unspecified order.
    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_>;

    /// `true` once the sketch is in estimation mode (Θ < 1), `false` while
    /// it still holds the exact distinct set.
    fn is_estimation_mode(&self) -> bool {
        self.theta() != THETA_MAX
    }

    /// The distinct-count estimate. The default is the unbiased
    /// quick-select estimator `retained / Θ`; the KMV sketch overrides it
    /// with `(k−1)/Θ` per Algorithm 1.
    fn estimate(&self) -> f64 {
        if self.is_estimation_mode() {
            self.retained() as f64 / theta_to_fraction(self.theta())
        } else {
            self.retained() as f64
        }
    }

    /// An upper confidence bound on the distinct count at `num_std`
    /// standard deviations (Gaussian approximation; see [`rse`]).
    fn upper_bound(&self, num_std: f64) -> f64 {
        if !self.is_estimation_mode() {
            return self.retained() as f64;
        }
        let est = self.estimate();
        est * (1.0 + num_std * rse_for_retained(self.retained()))
    }

    /// A lower confidence bound on the distinct count at `num_std`
    /// standard deviations (Gaussian approximation; see [`rse`]).
    fn lower_bound(&self, num_std: f64) -> f64 {
        if !self.is_estimation_mode() {
            return self.retained() as f64;
        }
        let est = self.estimate();
        (est * (1.0 - num_std * rse_for_retained(self.retained()))).max(0.0)
    }
}

/// The Relative Standard Error bound of a KMV Θ sketch with `k` samples:
/// `RSE ≤ 1/√(k−2)` (§3, citing Bar-Yossef et al.).
///
/// # Panics
///
/// Panics if `k <= 2`.
#[inline]
pub fn rse(k: usize) -> f64 {
    assert!(k > 2, "RSE bound requires k > 2");
    1.0 / ((k - 2) as f64).sqrt()
}

/// RSE approximation used for confidence bounds when the number of
/// retained samples is not exactly `k` (e.g., after set operations):
/// `1/√(retained−2)`, clamped for tiny sketches.
#[inline]
pub fn rse_for_retained(retained: usize) -> f64 {
    if retained <= 3 {
        1.0
    } else {
        1.0 / ((retained - 2) as f64).sqrt()
    }
}

/// The relaxation-aware RSE bound of the *concurrent* Θ sketch under the
/// weak adversary (§6.1): `√(1/(k−2)) + r/(k−2)`; whenever `r ≤ √(k−2)`
/// this is at most twice the sequential bound [`rse`].
#[inline]
pub fn relaxed_rse(k: usize, r: usize) -> f64 {
    assert!(k > 2, "RSE bound requires k > 2");
    let km2 = (k - 2) as f64;
    (1.0 / km2).sqrt() + r as f64 / km2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_round_trip() {
        for &t in &[1u64, 1 << 20, 1 << 40, 1 << 62, THETA_MAX / 2] {
            let f = theta_to_fraction(t);
            let back = fraction_to_theta(f);
            // f64 has 53 bits of mantissa; allow proportional slack.
            let err = (back as f64 - t as f64).abs() / (t as f64).max(1.0);
            assert!(err < 1e-9, "t={t} back={back}");
        }
    }

    #[test]
    fn theta_max_is_fraction_one() {
        assert!((theta_to_fraction(THETA_MAX) - 1.0).abs() < 1e-15);
        assert_eq!(fraction_to_theta(1.0), THETA_MAX);
        assert_eq!(fraction_to_theta(2.0), THETA_MAX);
    }

    #[test]
    fn fraction_to_theta_clamps_low() {
        assert_eq!(fraction_to_theta(0.0), 1);
        assert_eq!(fraction_to_theta(-1.0), 1);
    }

    #[test]
    fn normalize_hash_reserves_zero() {
        assert_eq!(normalize_hash(0), 1);
        assert_eq!(normalize_hash(1), 1);
        assert_eq!(normalize_hash(42), 42);
        assert_eq!(normalize_hash(THETA_MAX), THETA_MAX);
    }

    #[test]
    fn rse_matches_paper_table1() {
        // Table 1 uses k = 2^10: sequential RSE ≤ 1/√1022 ≈ 3.13%.
        let bound = rse(1 << 10);
        assert!((bound - 0.03128).abs() < 1e-4, "bound = {bound}");
    }

    #[test]
    fn relaxed_rse_at_most_twice_sequential_when_r_small() {
        // §6.1: whenever r ≤ √(k−2), relaxed RSE ≤ 2 · sequential RSE.
        for &(k, r) in &[(1024usize, 8usize), (4096, 16), (256, 15)] {
            assert!(r as f64 <= ((k - 2) as f64).sqrt());
            assert!(relaxed_rse(k, r) <= 2.0 * rse(k) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "k > 2")]
    fn rse_panics_on_tiny_k() {
        let _ = rse(2);
    }
}
