//! Jaccard similarity estimation on Θ sketches.
//!
//! The Jaccard index `J(A, B) = |A∩B| / |A∪B|` falls out of the Θ set
//! algebra: intersect and union the sketches, divide the estimates. As in
//! Apache DataSketches, the ratio estimator is computed against the joint
//! Θ so that numerator and denominator are measured on the same sample.

use super::{CompactThetaSketch, ThetaIntersection, ThetaRead, ThetaUnion};
use crate::error::{Result, SketchError};
use std::collections::HashSet;

/// A Jaccard similarity estimate with crude confidence bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaccardEstimate {
    /// Point estimate of `|A∩B| / |A∪B|`.
    pub estimate: f64,
    /// Lower bound (2 standard errors on the sampled ratio).
    pub lower_bound: f64,
    /// Upper bound (2 standard errors on the sampled ratio).
    pub upper_bound: f64,
    /// Number of union samples the ratio was measured on.
    pub union_retained: usize,
}

/// Estimates the Jaccard similarity of the streams summarised by two Θ
/// sketches.
///
/// Both sketches must share a hash seed. The computation samples both
/// retained sets below the joint Θ, so the ratio is a binomial proportion
/// over the union's retained samples; bounds use the normal
/// approximation `p ± 2√(p(1−p)/m)`.
///
/// # Errors
///
/// Returns [`SketchError::Incompatible`] on hash-seed mismatch.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{jaccard, QuickSelectThetaSketch};
///
/// let mut a = QuickSelectThetaSketch::new(12, 9001).unwrap();
/// let mut b = QuickSelectThetaSketch::new(12, 9001).unwrap();
/// for i in 0..100_000u64 { a.update(i); }
/// for i in 50_000..150_000u64 { b.update(i); }
/// let j = jaccard(&a, &b).unwrap();
/// // True Jaccard: 50k / 150k = 1/3.
/// assert!((j.estimate - 1.0 / 3.0).abs() < 0.05);
/// ```
pub fn jaccard<A, B>(a: &A, b: &B) -> Result<JaccardEstimate>
where
    A: ThetaRead + ?Sized,
    B: ThetaRead + ?Sized,
{
    if a.seed() != b.seed() {
        return Err(SketchError::incompatible(format!(
            "hash seed mismatch: {} vs {}",
            a.seed(),
            b.seed()
        )));
    }
    // Sample both retained sets below the joint Θ — an unbiased uniform
    // sample of A∪B on which membership in A∩B is exact.
    let theta = a.theta().min(b.theta());
    let a_set: HashSet<u64> = a.hashes().filter(|&h| h < theta).collect();
    let mut union_count = a_set.len();
    let mut inter_count = 0usize;
    let mut b_seen = HashSet::with_capacity(b.retained());
    for h in b.hashes().filter(|&h| h < theta) {
        if !b_seen.insert(h) {
            continue;
        }
        if a_set.contains(&h) {
            inter_count += 1;
        } else {
            union_count += 1;
        }
    }
    if union_count == 0 {
        // Both empty below Θ: identical (empty) streams.
        return Ok(JaccardEstimate {
            estimate: 1.0,
            lower_bound: 1.0,
            upper_bound: 1.0,
            union_retained: 0,
        });
    }
    let p = inter_count as f64 / union_count as f64;
    let se = (p * (1.0 - p) / union_count as f64).sqrt();
    Ok(JaccardEstimate {
        estimate: p,
        lower_bound: (p - 2.0 * se).max(0.0),
        upper_bound: (p + 2.0 * se).min(1.0),
        union_retained: union_count,
    })
}

/// Convenience: Jaccard via explicit set-operation gadgets (identical
/// semantics to [`jaccard`], exercised for cross-validation and useful
/// when the intermediate sketches are wanted too).
pub fn jaccard_via_setops<A, B>(
    lg_k: u8,
    a: &A,
    b: &B,
) -> Result<(JaccardEstimate, CompactThetaSketch, CompactThetaSketch)>
where
    A: ThetaRead + ?Sized,
    B: ThetaRead + ?Sized,
{
    let mut u = ThetaUnion::new(lg_k, a.seed())?;
    u.update(a)?;
    u.update(b)?;
    let union = u.result();
    let mut ix = ThetaIntersection::new(a.seed());
    ix.update(a)?;
    ix.update(b)?;
    let inter = ix.result()?;
    let est = if union.estimate() == 0.0 {
        1.0
    } else {
        inter.estimate() / union.estimate()
    };
    let j = JaccardEstimate {
        estimate: est,
        lower_bound: (est - 0.1).max(0.0),
        upper_bound: (est + 0.1).min(1.0),
        union_retained: union.retained(),
    };
    Ok((j, union, inter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::QuickSelectThetaSketch;

    fn filled(range: std::ops::Range<u64>) -> QuickSelectThetaSketch {
        let mut s = QuickSelectThetaSketch::new(11, 1).unwrap();
        for i in range {
            s.update(i);
        }
        s
    }

    #[test]
    fn identical_streams_have_jaccard_one() {
        let a = filled(0..100_000);
        let b = filled(0..100_000);
        let j = jaccard(&a, &b).unwrap();
        assert!((j.estimate - 1.0).abs() < 1e-9, "estimate {}", j.estimate);
    }

    #[test]
    fn disjoint_streams_have_jaccard_zero() {
        let a = filled(0..80_000);
        let b = filled(80_000..160_000);
        let j = jaccard(&a, &b).unwrap();
        assert!(j.estimate < 0.01, "estimate {}", j.estimate);
    }

    #[test]
    fn half_overlap() {
        // |A∩B| = 50k, |A∪B| = 150k ⇒ J = 1/3.
        let a = filled(0..100_000);
        let b = filled(50_000..150_000);
        let j = jaccard(&a, &b).unwrap();
        assert!(
            (j.estimate - 1.0 / 3.0).abs() < 0.05,
            "estimate {}",
            j.estimate
        );
        assert!(j.lower_bound <= j.estimate && j.estimate <= j.upper_bound);
    }

    #[test]
    fn exact_mode_is_exact() {
        let a = filled(0..600);
        let b = filled(300..900);
        let j = jaccard(&a, &b).unwrap();
        assert!((j.estimate - 300.0 / 900.0).abs() < 1e-9);
    }

    #[test]
    fn seed_mismatch_rejected() {
        let a = filled(0..100);
        let mut b = QuickSelectThetaSketch::new(11, 2).unwrap();
        b.update(1u64);
        assert!(jaccard(&a, &b).is_err());
    }

    #[test]
    fn empty_sketches_are_identical() {
        let a = QuickSelectThetaSketch::new(11, 1).unwrap();
        let b = QuickSelectThetaSketch::new(11, 1).unwrap();
        let j = jaccard(&a, &b).unwrap();
        assert_eq!(j.estimate, 1.0);
    }

    #[test]
    fn setops_variant_agrees() {
        let a = filled(0..100_000);
        let b = filled(50_000..150_000);
        let direct = jaccard(&a, &b).unwrap();
        let (via, union, inter) = jaccard_via_setops(11, &a, &b).unwrap();
        assert!((direct.estimate - via.estimate).abs() < 0.05);
        assert!(union.estimate() > inter.estimate());
    }

    #[test]
    fn asymmetric_sizes() {
        // Small A inside big B: J = |A|/|B| = 0.1.
        let a = filled(0..20_000);
        let b = filled(0..200_000);
        let j = jaccard(&a, &b).unwrap();
        assert!((j.estimate - 0.1).abs() < 0.03, "estimate {}", j.estimate);
    }
}
