//! The K-Minimum-Values Θ sketch — the paper's Algorithm 1.
//!
//! The sketch keeps the `k` smallest distinct hashes seen so far in a
//! max-heap (`sampleSet`), with Θ equal to the largest retained hash once
//! the heap is full. An update whose hash is ≥ Θ is ignored; otherwise it
//! enters the sample set and the largest sample is evicted, which
//! monotonically lowers Θ. The estimate is `(k−1)/Θ` (unbiased, RSE ≤
//! `1/√(k−2)`).
//!
//! ## Threshold convention
//!
//! Algorithm 1's Θ is *inclusive*: `Θ = max(sampleSet)` is itself a
//! retained sample. The [`ThetaRead`] contract (shared with the
//! quick-select family and the set operations) is *strict*: every
//! reported hash is `< theta()`. Working in the integer hash domain makes
//! the two views interchangeable — the inclusive threshold `m` equals the
//! exclusive bound `m + 1` — so this implementation stores the exclusive
//! bound internally. This is what makes cross-family merges exact: a KMV
//! boundary sample is never silently dropped by a strict `< Θ` filter.

use super::{theta_to_fraction, ThetaRead, THETA_MAX};
use crate::error::{Result, SketchError};
use crate::hash::Hashable;
use std::collections::{BinaryHeap, HashSet};

/// Sequential KMV Θ sketch (Algorithm 1 of the paper).
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{KmvThetaSketch, ThetaRead};
///
/// let mut sketch = KmvThetaSketch::new(1024, 9001).unwrap();
/// for i in 0..100_000u64 {
///     sketch.update(i);
/// }
/// let est = sketch.estimate();
/// assert!((est - 100_000.0).abs() / 100_000.0 < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct KmvThetaSketch {
    k: usize,
    seed: u64,
    /// Max-heap of the retained hashes; `heap.peek()` is the largest
    /// retained sample — Algorithm 1's inclusive Θ once the sketch is
    /// full.
    heap: BinaryHeap<u64>,
    /// Mirror of `heap` for O(1) duplicate detection.
    set: HashSet<u64>,
    /// The *exclusive* retention bound: every retained hash is `< theta`
    /// and no future hash `≥ theta` can be retained. Equals
    /// `max(sampleSet) + 1` once the sample set is full (Algorithm 1's
    /// inclusive Θ plus one), or the adopted joint bound after a merge.
    theta: u64,
}

impl KmvThetaSketch {
    /// Creates an empty sketch retaining the `k` minimum hash values,
    /// using `seed` to select the hash function (the oracle's coin flips,
    /// §4).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `k < 3` (the estimator
    /// `(k−1)/Θ` and its RSE bound `1/√(k−2)` need `k ≥ 3`).
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k < 3 {
            return Err(SketchError::invalid("k", format!("must be ≥ 3, got {k}")));
        }
        Ok(KmvThetaSketch {
            k,
            seed,
            heap: BinaryHeap::with_capacity(k + 1),
            set: HashSet::with_capacity(k * 2),
            theta: THETA_MAX,
        })
    }

    /// The configured number of minimum values retained.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Processes one stream item (`S.update(a)` of §3).
    pub fn update<T: Hashable>(&mut self, item: T) {
        self.update_hash(super::normalize_hash(item.hash_with_seed(self.seed)));
    }

    /// Processes a pre-hashed item. Returns `true` iff the sketch state
    /// changed (the hash was below Θ and not a duplicate).
    ///
    /// This is the entry point used by merges and by the concurrent
    /// framework, where hashing happens once on the local thread.
    pub fn update_hash(&mut self, hash: u64) -> bool {
        if hash >= self.theta {
            return false;
        }
        if !self.set.insert(hash) {
            return false;
        }
        self.heap.push(hash);
        if self.heap.len() > self.k {
            let evicted = self.heap.pop().expect("heap non-empty");
            self.set.remove(&evicted);
            // Θ ← max(sampleSet) (line 12), stored as the exclusive
            // bound max + 1 (saturating: a retained hash of u64::MAX has
            // probability 2⁻⁶⁴ and would merely pin the sketch in exact
            // mode).
            let max = *self.heap.peek().expect("heap holds k ≥ 1 items");
            self.theta = max.saturating_add(1).min(self.theta);
        }
        true
    }

    /// Merges another Θ sketch into this one (`S.merge(S')` of §3): after
    /// the call, `self` summarises the concatenation of both streams.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] if the hash seeds differ —
    /// hashes from different hash functions cannot be mixed.
    pub fn merge<S: ThetaRead + ?Sized>(&mut self, other: &S) -> Result<()> {
        if other.seed() != self.seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                self.seed,
                other.seed()
            )));
        }
        // Θ is the minimum of both thresholds; prune our samples first so
        // that `update_hash`'s filter is applied against the joint Θ.
        if other.theta() < self.theta {
            self.theta = other.theta();
            self.prune_to_theta();
        }
        for h in other.hashes() {
            self.update_hash(h);
        }
        Ok(())
    }

    /// Drops retained samples that are no longer below Θ (after a merge
    /// lowered it).
    fn prune_to_theta(&mut self) {
        let theta = self.theta;
        if self.heap.iter().all(|&h| h < theta) {
            return;
        }
        let survivors: Vec<u64> = self.heap.iter().copied().filter(|&h| h < theta).collect();
        self.set.retain(|&h| h < theta);
        self.heap = BinaryHeap::from(survivors);
    }

    /// Resets the sketch to the empty state, keeping `k` and the seed.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.set.clear();
        self.theta = THETA_MAX;
    }

    /// Returns `true` if no items have been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Freezes the sketch into an immutable compact form.
    pub fn compact(&self) -> super::CompactThetaSketch {
        super::CompactThetaSketch::from_read(self)
    }
}

impl ThetaRead for KmvThetaSketch {
    fn theta(&self) -> u64 {
        self.theta
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn retained(&self) -> usize {
        self.heap.len()
    }

    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        Box::new(self.heap.iter().copied())
    }

    /// Algorithm 1's estimator: `est ← (|sampleSet|−1)/Θ` once in
    /// estimation mode (Θ being the inclusive threshold, i.e. the largest
    /// retained sample); the exact distinct count before that.
    ///
    /// When a merge has left fewer than `k` samples under a lowered Θ, the
    /// unbiased `retained/Θ` estimator is used instead (the `(k−1)/Θ` form
    /// assumes a full sample set).
    fn estimate(&self) -> f64 {
        if !self.is_estimation_mode() {
            return self.heap.len() as f64;
        }
        if self.heap.len() == self.k {
            let inclusive = *self.heap.peek().expect("full heap");
            (self.k as f64 - 1.0) / theta_to_fraction(inclusive)
        } else {
            self.heap.len() as f64 / theta_to_fraction(self.theta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::rse;

    #[test]
    fn rejects_tiny_k() {
        assert!(KmvThetaSketch::new(2, 0).is_err());
        assert!(KmvThetaSketch::new(3, 0).is_ok());
    }

    #[test]
    fn exact_below_k() {
        let mut s = KmvThetaSketch::new(64, 1).unwrap();
        for i in 0..50u64 {
            s.update(i);
        }
        assert!(!s.is_estimation_mode());
        assert_eq!(s.estimate(), 50.0);
        assert_eq!(s.retained(), 50);
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut s = KmvThetaSketch::new(64, 1).unwrap();
        for _ in 0..10 {
            for i in 0..30u64 {
                s.update(i);
            }
        }
        assert_eq!(s.estimate(), 30.0);
    }

    #[test]
    fn theta_is_exclusive_bound_above_largest_sample_once_full() {
        let mut s = KmvThetaSketch::new(16, 7).unwrap();
        for i in 0..1000u64 {
            s.update(i);
        }
        assert!(s.is_estimation_mode());
        let max_retained = s.hashes().max().unwrap();
        // Exclusive convention: Θ = max(sampleSet) + 1, all hashes < Θ.
        assert_eq!(s.theta(), max_retained + 1);
        assert!(s.hashes().all(|h| h < s.theta()));
        assert_eq!(s.retained(), 16);
    }

    #[test]
    fn theta_monotonically_decreases() {
        let mut s = KmvThetaSketch::new(32, 7).unwrap();
        let mut last = s.theta();
        for i in 0..10_000u64 {
            s.update(i);
            assert!(s.theta() <= last);
            last = s.theta();
        }
    }

    #[test]
    fn retains_exactly_the_k_smallest_hashes() {
        use crate::hash::Hashable;
        let k = 32;
        let seed = 99;
        let mut s = KmvThetaSketch::new(k, seed).unwrap();
        let n = 5_000u64;
        let mut all: Vec<u64> = (0..n)
            .map(|i| crate::theta::normalize_hash(i.hash_with_seed(seed)))
            .collect();
        for i in 0..n {
            s.update(i);
        }
        all.sort_unstable();
        all.dedup();
        let mut got: Vec<u64> = s.hashes().collect();
        got.sort_unstable();
        assert_eq!(got, all[..k].to_vec());
    }

    #[test]
    fn estimate_within_rse_bounds() {
        // With k = 1024 the RSE is ~3.1%; 5 standard errors is a
        // comfortably non-flaky bound.
        let k = 1024;
        let n = 200_000u64;
        let mut s = KmvThetaSketch::new(k, 42).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(k), "relative error {rel}");
    }

    #[test]
    fn merge_equals_concatenation() {
        let k = 256;
        let seed = 5;
        let mut a = KmvThetaSketch::new(k, seed).unwrap();
        let mut b = KmvThetaSketch::new(k, seed).unwrap();
        let mut whole = KmvThetaSketch::new(k, seed).unwrap();
        for i in 0..30_000u64 {
            whole.update(i);
            if i % 2 == 0 {
                a.update(i);
            } else {
                b.update(i);
            }
        }
        a.merge(&b).unwrap();
        // Same k smallest hashes → identical state and estimate.
        let mut ha: Vec<u64> = a.hashes().collect();
        let mut hw: Vec<u64> = whole.hashes().collect();
        ha.sort_unstable();
        hw.sort_unstable();
        assert_eq!(ha, hw);
        assert_eq!(a.theta(), whole.theta());
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let mut a = KmvThetaSketch::new(16, 1).unwrap();
        let b = KmvThetaSketch::new(16, 2).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = KmvThetaSketch::new(16, 1).unwrap();
        for i in 0..100u64 {
            a.update(i);
        }
        let est = a.estimate();
        let b = KmvThetaSketch::new(16, 1).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), est);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = KmvThetaSketch::new(16, 1).unwrap();
        let mut b = KmvThetaSketch::new(16, 1).unwrap();
        for i in 0..5_000u64 {
            b.update(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.theta(), b.theta());
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn clear_resets() {
        let mut s = KmvThetaSketch::new(16, 1).unwrap();
        for i in 0..1_000u64 {
            s.update(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.theta(), THETA_MAX);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn bounds_bracket_estimate() {
        let mut s = KmvThetaSketch::new(128, 3).unwrap();
        for i in 0..50_000u64 {
            s.update(i);
        }
        let est = s.estimate();
        assert!(s.lower_bound(2.0) <= est);
        assert!(s.upper_bound(2.0) >= est);
        assert!(s.lower_bound(2.0) <= 50_000.0);
        assert!(s.upper_bound(2.0) >= 50_000.0 * 0.8);
    }

    #[test]
    fn exact_mode_bounds_are_exact() {
        let mut s = KmvThetaSketch::new(128, 3).unwrap();
        for i in 0..10u64 {
            s.update(i);
        }
        assert_eq!(s.lower_bound(3.0), 10.0);
        assert_eq!(s.upper_bound(3.0), 10.0);
    }
}
