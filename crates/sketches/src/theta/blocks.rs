//! Chunked copy-on-write storage for Θ retained-hash images.
//!
//! The sharded concurrent engine publishes a point-in-time image of each
//! shard's retained set on the propagation path, once per merge. Copying
//! the whole set costs O(retained) per merge (~`retained` u64s every `b`
//! updates), which breaks the paper's O(b)-amortised propagation bound as
//! soon as the sketch saturates. [`HashBlocks`] removes that copy: the
//! retained hashes live in fixed-size blocks behind `Arc`s, a snapshot is
//! two `Arc` clones (O(1)), and mutation copies only what a snapshot
//! actually shares — at most the partial tail block plus, every
//! [`THETA_BLOCK_CAPACITY`] accepted hashes, one spine of block pointers.
//! Steady-state publication therefore costs O(b/chunk) amortised, plus a
//! full [`HashBlocks::rebuild`] whenever the sketch itself rebuilds
//! (Θ drops and evicts), which the quick-select sketch already amortises
//! to O(1) per accepted update.
//!
//! The store is deliberately dumb: it mirrors whatever hash set its owner
//! maintains, in insertion order, with no dedup or Θ-filtering of its
//! own. The owner pushes exactly the newly-retained hashes and calls
//! `rebuild` from the sketch's survivor set whenever Θ moved.

use std::sync::Arc;

/// Hashes per block. 256 u64s = 2 KiB: big enough that the sealed spine
/// stays short (≤ 2k/256 pointers), small enough that the one
/// copy-on-write tail clone per publication is cheap.
pub const THETA_BLOCK_CAPACITY: usize = 256;

type Block = Vec<u64>;

/// Mutable chunked hash store with O(1) copy-on-write snapshots.
///
/// Owned by a single writer (the propagator side of a shard); snapshots
/// ([`HashBlocks::snapshot`]) are immutable and may be shipped to any
/// number of concurrent readers.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::HashBlocks;
///
/// let mut store = HashBlocks::new();
/// for h in 1..=1000u64 {
///     store.push(h);
/// }
/// let snap = store.snapshot(); // O(1): shares the blocks
/// store.push(1001);            // copies only the shared tail block
/// assert_eq!(snap.len(), 1000);
/// assert_eq!(store.len(), 1001);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HashBlocks {
    /// Full blocks of exactly [`THETA_BLOCK_CAPACITY`] hashes. The outer
    /// `Arc` makes sealing (which mutates the spine) copy the pointer
    /// vector at most once per outstanding snapshot.
    sealed: Arc<Vec<Arc<Block>>>,
    /// The partial block currently being filled.
    tail: Arc<Block>,
}

impl HashBlocks {
    /// Creates an empty store.
    pub fn new() -> Self {
        HashBlocks {
            sealed: Arc::new(Vec::new()),
            tail: Arc::new(Vec::new()),
        }
    }

    /// Number of stored hashes.
    pub fn len(&self) -> u64 {
        (self.sealed.len() * THETA_BLOCK_CAPACITY + self.tail.len()) as u64
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Appends one hash. Copies the tail block iff a snapshot still
    /// shares it; seals the tail into the spine when it reaches
    /// [`THETA_BLOCK_CAPACITY`] (copying the spine iff shared).
    pub fn push(&mut self, hash: u64) {
        if self.tail.len() == THETA_BLOCK_CAPACITY {
            let full = std::mem::replace(
                &mut self.tail,
                Arc::new(Vec::with_capacity(THETA_BLOCK_CAPACITY)),
            );
            Arc::make_mut(&mut self.sealed).push(full);
        }
        // Hand-rolled copy-on-write (instead of `Arc::make_mut`) so the
        // fresh tail keeps a full block's capacity.
        if Arc::get_mut(&mut self.tail).is_none() {
            let mut fresh = Vec::with_capacity(THETA_BLOCK_CAPACITY);
            fresh.extend_from_slice(&self.tail);
            self.tail = Arc::new(fresh);
        }
        Arc::get_mut(&mut self.tail)
            .expect("tail is uniquely owned after the copy-on-write check")
            .push(hash);
    }

    /// Replaces the contents with `hashes`, in fresh blocks. O(n) — the
    /// owner calls this when its retained set changed wholesale (a Θ
    /// rebuild evicted hashes), never on the plain append path.
    pub fn rebuild(&mut self, hashes: impl IntoIterator<Item = u64>) {
        let mut sealed: Vec<Arc<Block>> = Vec::new();
        let mut tail: Block = Vec::with_capacity(THETA_BLOCK_CAPACITY);
        for h in hashes {
            if tail.len() == THETA_BLOCK_CAPACITY {
                let full = std::mem::replace(&mut tail, Vec::with_capacity(THETA_BLOCK_CAPACITY));
                sealed.push(Arc::new(full));
            }
            tail.push(h);
        }
        self.sealed = Arc::new(sealed);
        self.tail = Arc::new(tail);
    }

    /// Empties the store (fresh blocks; outstanding snapshots are
    /// unaffected).
    pub fn clear(&mut self) {
        self.sealed = Arc::new(Vec::new());
        self.tail = Arc::new(Vec::new());
    }

    /// An immutable O(1) snapshot sharing the current blocks: two `Arc`
    /// clones, no hash is copied.
    pub fn snapshot(&self) -> BlockSnapshot {
        BlockSnapshot {
            sealed: Arc::clone(&self.sealed),
            tail: Arc::clone(&self.tail),
        }
    }
}

/// An immutable point-in-time view of a [`HashBlocks`] store.
///
/// Cheap to clone and `Send + Sync`; later mutations of the owning store
/// copy-on-write around it and are never observed.
#[derive(Debug, Clone, Default)]
pub struct BlockSnapshot {
    sealed: Arc<Vec<Arc<Block>>>,
    tail: Arc<Block>,
}

impl BlockSnapshot {
    /// The empty snapshot.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of hashes in the snapshot.
    pub fn len(&self) -> u64 {
        (self.sealed.len() * THETA_BLOCK_CAPACITY + self.tail.len()) as u64
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Number of blocks (sealed plus the partial tail, if non-empty).
    pub fn block_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.tail.is_empty())
    }

    /// Iterates over the stored hashes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.sealed
            .iter()
            .flat_map(|b| b.iter().copied())
            .chain(self.tail.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_across_block_boundaries() {
        let mut store = HashBlocks::new();
        let n = THETA_BLOCK_CAPACITY as u64 * 3 + 17;
        for h in 1..=n {
            store.push(h);
        }
        assert_eq!(store.len(), n);
        let snap = store.snapshot();
        assert_eq!(snap.len(), n);
        assert_eq!(snap.block_count(), 4);
        let got: Vec<u64> = snap.iter().collect();
        let want: Vec<u64> = (1..=n).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_is_immutable_under_later_pushes() {
        let mut store = HashBlocks::new();
        for h in 1..=100u64 {
            store.push(h);
        }
        let snap = store.snapshot();
        for h in 101..=5_000u64 {
            store.push(h);
        }
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.iter().max(), Some(100));
        assert_eq!(store.len(), 5_000);
    }

    #[test]
    fn snapshot_shares_sealed_blocks() {
        let mut store = HashBlocks::new();
        // One sealed block plus a *partial* tail: pushes below won't seal.
        for h in 1..=(THETA_BLOCK_CAPACITY as u64 + 10) {
            store.push(h);
        }
        let a = store.snapshot();
        let b = store.snapshot();
        // Same spine allocation: snapshots are O(1), not copies.
        assert!(Arc::ptr_eq(&a.sealed, &b.sealed));
        // A push into a partial tail never touches the sealed spine.
        store.push(99_999);
        let c = store.snapshot();
        assert!(Arc::ptr_eq(&a.sealed, &c.sealed));
    }

    #[test]
    fn push_after_snapshot_copies_only_the_tail_block() {
        let mut store = HashBlocks::new();
        for h in 1..=10u64 {
            store.push(h);
        }
        let snap = store.snapshot();
        assert!(Arc::ptr_eq(&snap.tail, &store.tail));
        store.push(11);
        // The tail was shared with the snapshot, so the push re-allocated
        // it (compare raw pointers only — holding an `Arc` clone would
        // itself force the next copy-on-write)…
        assert!(!Arc::ptr_eq(&snap.tail, &store.tail));
        let old_tail = Arc::as_ptr(&store.tail);
        store.push(12);
        // …and an unshared tail is mutated in place.
        assert_eq!(old_tail, Arc::as_ptr(&store.tail));
    }

    #[test]
    fn rebuild_replaces_contents() {
        let mut store = HashBlocks::new();
        for h in 1..=1_000u64 {
            store.push(h);
        }
        let snap = store.snapshot();
        store.rebuild((1..=300u64).map(|h| h * 2));
        assert_eq!(store.len(), 300);
        let mut got: Vec<u64> = store.snapshot().iter().collect();
        got.sort_unstable();
        assert_eq!(got, (1..=300u64).map(|h| h * 2).collect::<Vec<_>>());
        // The pre-rebuild snapshot still reads the old contents.
        assert_eq!(snap.len(), 1_000);
    }

    #[test]
    fn clear_and_empty_snapshot() {
        let mut store = HashBlocks::new();
        assert!(store.is_empty());
        store.push(7);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        let snap = BlockSnapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.block_count(), 0);
        assert_eq!(snap.iter().count(), 0);
    }

    #[test]
    fn sealed_blocks_are_always_full() {
        let mut store = HashBlocks::new();
        store.rebuild(1..=(THETA_BLOCK_CAPACITY as u64 * 2 + 5));
        assert_eq!(store.sealed.len(), 2);
        assert!(store.sealed.iter().all(|b| b.len() == THETA_BLOCK_CAPACITY));
        assert_eq!(store.tail.len(), 5);
    }
}
