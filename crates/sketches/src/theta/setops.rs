//! Θ sketch set operations: union, intersection, and A-not-B.
//!
//! These are what make Θ sketches *mergeable summaries* (§3): the union of
//! sketches over sub-streams summarises the concatenated stream, which is
//! the property both the distributed-processing prior art and the paper's
//! concurrent framework build on. Intersection and A-not-B extend the
//! algebra to general set expressions, as in Apache DataSketches.

use super::{CompactThetaSketch, QuickSelectThetaSketch, ThetaRead};
use crate::error::{Result, SketchError};
use std::collections::HashSet;

/// Streaming union gadget with its own nominal size `k`.
///
/// Feed any number of sketches with [`ThetaUnion::update`]; the running
/// result is a quick-select sketch and can be frozen at any time.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{QuickSelectThetaSketch, ThetaUnion, ThetaRead};
///
/// let mut a = QuickSelectThetaSketch::new(8, 9001).unwrap();
/// let mut b = QuickSelectThetaSketch::new(8, 9001).unwrap();
/// for i in 0..50_000u64 { a.update(i); }
/// for i in 25_000..75_000u64 { b.update(i); }
///
/// let mut u = ThetaUnion::new(8, 9001).unwrap();
/// u.update(&a).unwrap();
/// u.update(&b).unwrap();
/// let est = u.result().estimate();
/// assert!((est - 75_000.0).abs() / 75_000.0 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ThetaUnion {
    gadget: QuickSelectThetaSketch,
}

impl ThetaUnion {
    /// Creates a union gadget with nominal size `k = 2^lg_k` and the given
    /// hash seed.
    pub fn new(lg_k: u8, seed: u64) -> Result<Self> {
        Ok(ThetaUnion {
            gadget: QuickSelectThetaSketch::new(lg_k, seed)?,
        })
    }

    /// Adds a sketch to the union.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] on hash-seed mismatch.
    pub fn update<S: ThetaRead + ?Sized>(&mut self, sketch: &S) -> Result<()> {
        self.gadget.merge(sketch)
    }

    /// Freezes the current union result (trimmed to at most `k` samples).
    pub fn result(&self) -> CompactThetaSketch {
        let mut g = self.gadget.clone();
        g.trim();
        g.compact()
    }

    /// Resets the union to empty.
    pub fn reset(&mut self) {
        self.gadget.clear();
    }
}

/// Unions compact Θ images **without trimming to a nominal `k`**: the
/// result keeps every retained hash below the joint Θ (`min` of the
/// inputs' Θs).
///
/// This is the query-time shard merge of the sharded concurrent engine.
/// Each input summarises one shard's sub-stream; because every retained
/// set is exactly `{h ∈ seen : h < Θ_i}` and the joint Θ is the minimum,
/// the union's retained set is exactly `{h ∈ ∪ seen : h < Θ}` — the state
/// a single sketch with threshold Θ would hold on the concatenated
/// stream. Keeping all samples (up to `K·k`) instead of trimming to `k`
/// only *lowers* the estimator's variance, and it is what makes the merge
/// lossless for the r-relaxation checker.
///
/// # Errors
///
/// Returns [`SketchError::Incompatible`] on hash-seed mismatch and
/// [`SketchError::InvalidParameter`] for an empty input.
pub fn untrimmed_union<'a>(
    parts: impl IntoIterator<Item = &'a CompactThetaSketch>,
) -> Result<CompactThetaSketch> {
    let parts: Vec<&CompactThetaSketch> = parts.into_iter().collect();
    let first = parts
        .first()
        .ok_or_else(|| SketchError::invalid("parts", "union of zero sketches"))?;
    let seed = first.seed();
    let mut theta = super::THETA_MAX;
    for p in &parts {
        if p.seed() != seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                p.seed(),
                seed
            )));
        }
        theta = theta.min(p.theta());
    }
    let mut hashes: Vec<u64> = Vec::new();
    for p in &parts {
        // Inputs are sorted, so everything below the joint Θ is a prefix.
        let below = p.sorted_hashes().partition_point(|&h| h < theta);
        hashes.extend_from_slice(&p.sorted_hashes()[..below]);
    }
    CompactThetaSketch::from_parts(theta, seed, hashes)
}

/// [`untrimmed_union`] over *unsorted* Θ images — the block-aware shard
/// merge of the sharded concurrent engine.
///
/// The engine's per-shard images are chunked, insertion-ordered hash
/// blocks (see [`super::blocks`]): sorting them on the propagation path
/// would defeat the point of publishing them cheaply, so this union
/// accepts any [`ThetaRead`] and filters by the joint Θ with a linear
/// scan, sorting the union once (inside
/// [`CompactThetaSketch::from_parts`]) on the query side.
///
/// # Errors
///
/// Returns [`SketchError::Incompatible`] on hash-seed mismatch and
/// [`SketchError::InvalidParameter`] for an empty input.
pub fn untrimmed_union_unsorted<'a, S: ThetaRead + ?Sized + 'a>(
    parts: impl IntoIterator<Item = &'a S>,
) -> Result<CompactThetaSketch> {
    let parts: Vec<&S> = parts.into_iter().collect();
    let first = parts
        .first()
        .ok_or_else(|| SketchError::invalid("parts", "union of zero sketches"))?;
    let seed = first.seed();
    let mut theta = super::THETA_MAX;
    for p in &parts {
        if p.seed() != seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                p.seed(),
                seed
            )));
        }
        theta = theta.min(p.theta());
    }
    let mut hashes: Vec<u64> = Vec::with_capacity(parts.iter().map(|p| p.retained()).sum());
    for p in &parts {
        hashes.extend(p.hashes().filter(|&h| h < theta));
    }
    CompactThetaSketch::from_parts(theta, seed, hashes)
}

/// Streaming intersection gadget.
///
/// The intersection of Θ sketches: Θ is the minimum of all input Θs and
/// the retained set is the intersection of the inputs' retained sets
/// (filtered by the joint Θ). The estimator `retained/Θ` stays unbiased.
/// Note the well-known caveat: intersections of nearly-disjoint sets can
/// retain very few samples and so carry high relative error.
#[derive(Debug, Clone)]
pub struct ThetaIntersection {
    seed: u64,
    /// `None` until the first update (the identity of intersection — the
    /// "universe" — is not representable).
    state: Option<(u64, HashSet<u64>)>,
}

impl ThetaIntersection {
    /// Creates an intersection gadget bound to a hash seed.
    pub fn new(seed: u64) -> Self {
        ThetaIntersection { seed, state: None }
    }

    /// Intersects another sketch into the running result.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] on hash-seed mismatch.
    pub fn update<S: ThetaRead + ?Sized>(&mut self, sketch: &S) -> Result<()> {
        if sketch.seed() != self.seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                self.seed,
                sketch.seed()
            )));
        }
        match &mut self.state {
            None => {
                let theta = sketch.theta();
                let set: HashSet<u64> = sketch.hashes().collect();
                self.state = Some((theta, set));
            }
            Some((theta, set)) => {
                let new_theta = (*theta).min(sketch.theta());
                let other: HashSet<u64> = sketch.hashes().filter(|&h| h < new_theta).collect();
                set.retain(|h| *h < new_theta && other.contains(h));
                *theta = new_theta;
            }
        }
        Ok(())
    }

    /// Returns `true` if no sketch has been intersected yet.
    pub fn is_identity(&self) -> bool {
        self.state.is_none()
    }

    /// Freezes the current intersection result.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if called before any
    /// update (the universe cannot be represented as a sketch).
    pub fn result(&self) -> Result<CompactThetaSketch> {
        match &self.state {
            None => Err(SketchError::invalid(
                "intersection",
                "result() before first update: the identity is not a sketch",
            )),
            Some((theta, set)) => {
                let hashes: Vec<u64> = set.iter().copied().collect();
                CompactThetaSketch::from_parts(*theta, self.seed, hashes)
            }
        }
    }
}

/// Computes `A \ B` (elements in `A`'s stream but not in `B`'s) as a
/// compact Θ sketch.
///
/// Θ is the minimum of the two input Θs; `A`'s retained hashes below it
/// that are absent from `B` survive.
///
/// # Errors
///
/// Returns [`SketchError::Incompatible`] on hash-seed mismatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThetaANotB;

impl ThetaANotB {
    /// Creates the gadget (stateless; provided for API symmetry with the
    /// Java library).
    pub fn new() -> Self {
        ThetaANotB
    }

    /// Computes the A-not-B result.
    pub fn compute<A, B>(&self, a: &A, b: &B) -> Result<CompactThetaSketch>
    where
        A: ThetaRead + ?Sized,
        B: ThetaRead + ?Sized,
    {
        if a.seed() != b.seed() {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                a.seed(),
                b.seed()
            )));
        }
        let theta = a.theta().min(b.theta());
        let b_set: HashSet<u64> = b.hashes().filter(|&h| h < theta).collect();
        let hashes: Vec<u64> = a
            .hashes()
            .filter(|&h| h < theta && !b_set.contains(&h))
            .collect();
        CompactThetaSketch::from_parts(theta, a.seed(), hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::rse;

    fn filled(lg_k: u8, seed: u64, range: std::ops::Range<u64>) -> QuickSelectThetaSketch {
        let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        for i in range {
            s.update(i);
        }
        s
    }

    #[test]
    fn union_of_disjoint_streams() {
        let a = filled(10, 1, 0..100_000);
        let b = filled(10, 1, 100_000..250_000);
        let mut u = ThetaUnion::new(10, 1).unwrap();
        u.update(&a).unwrap();
        u.update(&b).unwrap();
        let est = u.result().estimate();
        let rel = (est - 250_000.0).abs() / 250_000.0;
        assert!(rel < 5.0 * rse(1024), "relative error {rel}");
    }

    #[test]
    fn union_of_identical_streams_counts_once() {
        let a = filled(10, 1, 0..80_000);
        let b = filled(10, 1, 0..80_000);
        let mut u = ThetaUnion::new(10, 1).unwrap();
        u.update(&a).unwrap();
        u.update(&b).unwrap();
        let est = u.result().estimate();
        let rel = (est - 80_000.0).abs() / 80_000.0;
        assert!(rel < 5.0 * rse(1024), "relative error {rel}");
    }

    #[test]
    fn union_result_trimmed_to_k() {
        let a = filled(6, 1, 0..50_000);
        let b = filled(6, 1, 50_000..100_000);
        let mut u = ThetaUnion::new(6, 1).unwrap();
        u.update(&a).unwrap();
        u.update(&b).unwrap();
        assert!(u.result().retained() <= 64);
    }

    #[test]
    fn union_seed_mismatch_rejected() {
        let a = filled(6, 2, 0..1000);
        let mut u = ThetaUnion::new(6, 1).unwrap();
        assert!(u.update(&a).is_err());
    }

    #[test]
    fn union_reset() {
        let a = filled(6, 1, 0..50_000);
        let mut u = ThetaUnion::new(6, 1).unwrap();
        u.update(&a).unwrap();
        u.reset();
        assert_eq!(u.result().estimate(), 0.0);
    }

    #[test]
    fn union_is_commutative_in_estimate() {
        let a = filled(9, 1, 0..60_000);
        let b = filled(9, 1, 40_000..120_000);
        let mut u1 = ThetaUnion::new(9, 1).unwrap();
        u1.update(&a).unwrap();
        u1.update(&b).unwrap();
        let mut u2 = ThetaUnion::new(9, 1).unwrap();
        u2.update(&b).unwrap();
        u2.update(&a).unwrap();
        let (e1, e2) = (u1.result().estimate(), u2.result().estimate());
        let rel = (e1 - e2).abs() / e1;
        assert!(rel < 0.05, "union not commutative: {e1} vs {e2}");
    }

    #[test]
    fn intersection_of_overlapping_streams() {
        // |A| = 100k (0..100k), |B| = 100k (50k..150k), |A∩B| = 50k.
        let a = filled(11, 1, 0..100_000);
        let b = filled(11, 1, 50_000..150_000);
        let mut ix = ThetaIntersection::new(1);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        let est = ix.result().unwrap().estimate();
        let rel = (est - 50_000.0).abs() / 50_000.0;
        // Intersection error grows with the Jaccard ratio; allow 10%.
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn intersection_of_disjoint_streams_is_empty_estimate() {
        let a = filled(10, 1, 0..50_000);
        let b = filled(10, 1, 50_000..100_000);
        let mut ix = ThetaIntersection::new(1);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        let est = ix.result().unwrap().estimate();
        assert!(est < 2_000.0, "disjoint intersection estimated {est}");
    }

    #[test]
    fn intersection_identity_errors() {
        let ix = ThetaIntersection::new(1);
        assert!(ix.is_identity());
        assert!(ix.result().is_err());
    }

    #[test]
    fn intersection_with_exact_sketches_is_exact() {
        let a = filled(10, 1, 0..500); // exact mode
        let b = filled(10, 1, 250..750);
        let mut ix = ThetaIntersection::new(1);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        assert_eq!(ix.result().unwrap().estimate(), 250.0);
    }

    #[test]
    fn intersection_seed_mismatch_rejected() {
        let a = filled(6, 2, 0..1000);
        let mut ix = ThetaIntersection::new(1);
        assert!(ix.update(&a).is_err());
    }

    #[test]
    fn a_not_b_exact() {
        let a = filled(10, 1, 0..600);
        let b = filled(10, 1, 400..1000);
        let d = ThetaANotB::new().compute(&a, &b).unwrap();
        assert_eq!(d.estimate(), 400.0);
    }

    #[test]
    fn a_not_b_estimation_mode() {
        // |A| = 200k, |B| = upper half + 100k more → |A\B| = 100k.
        let a = filled(11, 1, 0..200_000);
        let b = filled(11, 1, 100_000..300_000);
        let d = ThetaANotB::new().compute(&a, &b).unwrap();
        let rel = (d.estimate() - 100_000.0).abs() / 100_000.0;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn a_not_b_with_self_is_empty() {
        let a = filled(10, 1, 0..50_000);
        let d = ThetaANotB::new().compute(&a, &a).unwrap();
        assert_eq!(d.retained(), 0);
    }

    #[test]
    fn a_not_b_seed_mismatch_rejected() {
        let a = filled(6, 1, 0..100);
        let b = filled(6, 2, 0..100);
        assert!(ThetaANotB::new().compute(&a, &b).is_err());
    }

    #[test]
    fn untrimmed_union_keeps_all_samples_below_joint_theta() {
        let a = filled(8, 1, 0..100_000);
        let b = filled(10, 1, 50_000..200_000);
        let (ca, cb) = (a.compact(), b.compact());
        let u = untrimmed_union([&ca, &cb]).unwrap();
        let theta = ca.theta().min(cb.theta());
        assert_eq!(u.theta(), theta);
        let mut expected: Vec<u64> = ca
            .sorted_hashes()
            .iter()
            .chain(cb.sorted_hashes())
            .copied()
            .filter(|&h| h < theta)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(u.sorted_hashes(), &expected[..]);
        let est = u.estimate();
        let rel = (est - 200_000.0).abs() / 200_000.0;
        // Joint Θ comes from the k = 256 input, but the retained count is
        // larger than 256 — the estimator still applies.
        assert!(rel < 5.0 * rse(256), "relative error {rel}");
    }

    #[test]
    fn untrimmed_union_rejects_seed_mismatch_and_empty() {
        let a = filled(8, 1, 0..1_000).compact();
        let b = filled(8, 2, 0..1_000).compact();
        assert!(untrimmed_union([&a, &b]).is_err());
        assert!(untrimmed_union(std::iter::empty()).is_err());
    }

    #[test]
    fn untrimmed_union_of_exact_mode_sketches_is_exact() {
        let a = filled(12, 7, 0..1_000).compact();
        let b = filled(12, 7, 500..1_500).compact();
        let u = untrimmed_union([&a, &b]).unwrap();
        assert_eq!(u.estimate(), 1_500.0);
    }

    #[test]
    fn inclusion_exclusion_consistency() {
        // est(A∪B) ≈ est(A∩B) + est(A\B) + est(B\A).
        let a = filled(11, 1, 0..120_000);
        let b = filled(11, 1, 60_000..180_000);
        let mut u = ThetaUnion::new(11, 1).unwrap();
        u.update(&a).unwrap();
        u.update(&b).unwrap();
        let mut ix = ThetaIntersection::new(1);
        ix.update(&a).unwrap();
        ix.update(&b).unwrap();
        let anb = ThetaANotB::new().compute(&a, &b).unwrap();
        let bna = ThetaANotB::new().compute(&b, &a).unwrap();
        let lhs = u.result().estimate();
        let rhs = ix.result().unwrap().estimate() + anb.estimate() + bna.estimate();
        let rel = (lhs - rhs).abs() / lhs;
        assert!(rel < 0.1, "inclusion–exclusion violated: {lhs} vs {rhs}");
    }

    #[test]
    fn unsorted_union_matches_sorted_union() {
        // The block-aware union must produce exactly the same compact
        // sketch as the sorted-prefix union over the same inputs — the
        // quick-select sketches iterate their hashes in table order,
        // which is the unsorted case the engine's images present.
        let a = filled(8, 3, 0..40_000);
        let b = filled(8, 3, 20_000..60_000);
        let sorted = untrimmed_union([&a.compact(), &b.compact()]).unwrap();
        let unsorted = untrimmed_union_unsorted([&a, &b] as [&QuickSelectThetaSketch; 2]).unwrap();
        assert_eq!(sorted.theta(), unsorted.theta());
        assert_eq!(sorted.sorted_hashes(), unsorted.sorted_hashes());
        assert_eq!(sorted.estimate(), unsorted.estimate());
    }

    #[test]
    fn unsorted_union_rejects_seed_mismatch_and_empty() {
        let a = filled(8, 1, 0..1_000);
        let b = filled(8, 2, 0..1_000);
        assert!(untrimmed_union_unsorted([&a, &b] as [&QuickSelectThetaSketch; 2]).is_err());
        let none: [&QuickSelectThetaSketch; 0] = [];
        assert!(untrimmed_union_unsorted(none).is_err());
    }
}
