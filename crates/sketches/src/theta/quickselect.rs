//! The quick-select Θ sketch — the `HeapQuickSelectSketch` family of
//! Apache DataSketches, which is both the sequential baseline and the
//! global-sketch core of the paper's evaluation (§7.1).
//!
//! Instead of evicting one sample per update like KMV, the sketch buffers
//! hashes in an open-addressed table of capacity `2k`. When the table
//! passes its fill threshold it is *rebuilt*: quick-select finds the
//! `(k+1)`-th smallest hash, Θ drops to it, and only the `k` smaller
//! hashes survive. Updates therefore cost O(1) amortised with no per-update
//! heap maintenance, which is why the Java library uses this family as its
//! default. The estimator is the unbiased `retained/Θ`.

use super::{ThetaRead, THETA_MAX};
use crate::error::{Result, SketchError};
use crate::hash::Hashable;

/// Minimum `lg_k` accepted (k = 16): below this the estimator variance is
/// useless and the table degenerates.
pub const MIN_LG_K: u8 = 4;
/// Maximum `lg_k` accepted (k = 2²⁶ ≈ 64M samples).
pub const MAX_LG_K: u8 = 26;

/// Sequential quick-select Θ sketch (DataSketches' default family).
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{QuickSelectThetaSketch, ThetaRead};
///
/// let mut sketch = QuickSelectThetaSketch::new(12, 9001).unwrap(); // k = 4096
/// for i in 0..1_000_000u64 {
///     sketch.update(i);
/// }
/// let est = sketch.estimate();
/// assert!((est - 1.0e6).abs() / 1.0e6 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct QuickSelectThetaSketch {
    lg_k: u8,
    seed: u64,
    /// Open-addressed table, capacity `2k`, `0` = empty slot.
    table: Vec<u64>,
    /// Bit mask for table indexing (`capacity − 1`).
    mask: usize,
    /// Number of occupied slots; all values are `< theta`.
    count: usize,
    theta: u64,
    /// Rebuild when `count` reaches this (15/16 of capacity, as in the
    /// Java implementation, keeping probe sequences short).
    rebuild_threshold: usize,
}

impl QuickSelectThetaSketch {
    /// Creates an empty sketch with nominal sample size `k = 2^lg_k`,
    /// using `seed` to select the hash function.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `lg_k` is outside
    /// `MIN_LG_K..=MAX_LG_K`.
    pub fn new(lg_k: u8, seed: u64) -> Result<Self> {
        if !(MIN_LG_K..=MAX_LG_K).contains(&lg_k) {
            return Err(SketchError::invalid(
                "lg_k",
                format!("must be in {MIN_LG_K}..={MAX_LG_K}, got {lg_k}"),
            ));
        }
        let capacity = 1usize << (lg_k + 1); // 2k slots
        Ok(QuickSelectThetaSketch {
            lg_k,
            seed,
            table: vec![0; capacity],
            mask: capacity - 1,
            count: 0,
            theta: THETA_MAX,
            rebuild_threshold: capacity / 16 * 15,
        })
    }

    /// Convenience constructor taking `k` directly; `k` must be a power of
    /// two in range.
    pub fn with_k(k: usize, seed: u64) -> Result<Self> {
        if !k.is_power_of_two() {
            return Err(SketchError::invalid(
                "k",
                format!("must be a power of two, got {k}"),
            ));
        }
        Self::new(k.trailing_zeros() as u8, seed)
    }

    /// Creates a sketch with an *initial sampling probability* `p ∈ (0, 1]`
    /// (DataSketches' `p`-sampling): Θ starts at `p` instead of 1, so
    /// even the early stream is uniformly subsampled. The estimator is
    /// unchanged (`retained/Θ` remains unbiased); exact-mode answers are
    /// traded away for bounded memory on duplicate-heavy streams.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `lg_k` is out of range
    /// or `p` is outside `(0, 1]`.
    pub fn with_sampling(lg_k: u8, seed: u64, p: f64) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(SketchError::invalid(
                "p",
                format!("sampling probability must be in (0, 1], got {p}"),
            ));
        }
        let mut sketch = Self::new(lg_k, seed)?;
        sketch.theta = super::fraction_to_theta(p);
        Ok(sketch)
    }

    /// The nominal sample size `k = 2^lg_k`.
    pub fn k(&self) -> usize {
        1 << self.lg_k
    }

    /// The configured `lg_k`.
    pub fn lg_k(&self) -> u8 {
        self.lg_k
    }

    /// Processes one stream item.
    #[inline]
    pub fn update<T: Hashable>(&mut self, item: T) {
        self.update_hash(super::normalize_hash(item.hash_with_seed(self.seed)));
    }

    /// Processes a pre-hashed item; returns `true` iff the sketch retained
    /// it (below Θ and not a duplicate).
    #[inline]
    pub fn update_hash(&mut self, hash: u64) -> bool {
        debug_assert_ne!(hash, 0, "hash 0 is the empty marker; normalize first");
        if hash >= self.theta {
            return false;
        }
        if !self.insert(hash) {
            return false;
        }
        self.count += 1;
        if self.count >= self.rebuild_threshold {
            self.rebuild();
        }
        true
    }

    /// Folds a batch of pre-hashed items, returning how many were
    /// retained. State-identical to calling [`Self::update_hash`] once
    /// per item — the equivalence the engine's batch/scalar proptests
    /// pin down — but the per-item Θ load and rebuild-threshold check
    /// are hoisted out of the loop, and quick-select is deferred to
    /// chunk boundaries instead of being tested after every insert.
    ///
    /// The hoist is sound because the batch is folded in sub-chunks of
    /// at most `rebuild_threshold − count` hashes: within such a chunk
    /// the table cannot reach its rebuild point (each insert adds at
    /// most one occupant), so Θ is constant and no rebuild can be
    /// missed; the chunk boundary lands exactly where the scalar loop
    /// would have rebuilt, i.e. the moment `count` reaches the
    /// threshold — hence the identical trajectory.
    pub fn update_hashes(&mut self, hashes: &[u64]) -> u64 {
        let mut retained = 0u64;
        let mut rest = hashes;
        while !rest.is_empty() {
            // Invariant: count < rebuild_threshold here (rebuild leaves
            // count = k, far below 15/16 of 2k).
            let slack = self.rebuild_threshold - self.count;
            let take = rest.len().min(slack);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let theta = self.theta;
            for &h in chunk {
                debug_assert_ne!(h, 0, "hash 0 is the empty marker; normalize first");
                if h < theta && self.insert(h) {
                    self.count += 1;
                    retained += 1;
                }
            }
            if self.count >= self.rebuild_threshold {
                self.rebuild();
            }
        }
        retained
    }

    /// Linear-probe insert; returns `false` on duplicate.
    #[inline]
    fn insert(&mut self, hash: u64) -> bool {
        let mut idx = (hash as usize) & self.mask;
        loop {
            let slot = self.table[idx];
            if slot == 0 {
                self.table[idx] = hash;
                return true;
            }
            if slot == hash {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Quick-select rebuild: drop Θ to the `(k+1)`-th smallest retained
    /// hash and keep only the `k` hashes below it.
    fn rebuild(&mut self) {
        let k = self.k();
        debug_assert!(self.count > k, "rebuild requires more than k samples");
        let mut values: Vec<u64> = self.table.iter().copied().filter(|&v| v != 0).collect();
        debug_assert_eq!(values.len(), self.count);
        // After select_nth_unstable(k), values[k] is the (k+1)-th smallest
        // (0-indexed k-th order statistic) and everything before it is
        // smaller. Hashes are distinct, so exactly k survive.
        let (_, &mut pivot, _) = values.select_nth_unstable(k);
        self.theta = pivot;
        self.table.iter_mut().for_each(|s| *s = 0);
        self.count = 0;
        for &v in values.iter() {
            if v < pivot {
                let inserted = self.insert(v);
                debug_assert!(inserted, "rebuild re-inserts distinct values");
                self.count += 1;
            }
        }
        debug_assert_eq!(self.count, k);
    }

    /// Forces a rebuild so that at most `k` samples are retained; used to
    /// produce tight compact images. No-op while in exact mode or when
    /// already at ≤ k samples.
    pub fn trim(&mut self) {
        if self.count > self.k() && self.is_estimation_mode() {
            self.rebuild();
        } else if self.count > self.k() {
            // Exact mode with more than k retained cannot happen: the
            // threshold 15/16·2k > k triggers only via update, which flips
            // the sketch to estimation mode. Guard anyway.
            self.rebuild();
        }
    }

    /// Merges another Θ sketch into this one.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] on hash-seed mismatch.
    pub fn merge<S: ThetaRead + ?Sized>(&mut self, other: &S) -> Result<()> {
        if other.seed() != self.seed {
            return Err(SketchError::incompatible(format!(
                "hash seed mismatch: {} vs {}",
                self.seed,
                other.seed()
            )));
        }
        if other.theta() < self.theta {
            self.theta = other.theta();
            self.prune_to_theta();
        }
        for h in other.hashes() {
            self.update_hash(h);
        }
        Ok(())
    }

    /// Drops retained samples that are no longer below Θ.
    fn prune_to_theta(&mut self) {
        let theta = self.theta;
        let survivors: Vec<u64> = self
            .table
            .iter()
            .copied()
            .filter(|&v| v != 0 && v < theta)
            .collect();
        self.table.iter_mut().for_each(|s| *s = 0);
        self.count = survivors.len();
        for v in survivors {
            let inserted = self.insert(v);
            debug_assert!(inserted);
        }
    }

    /// Resets to the empty state, keeping configuration.
    pub fn clear(&mut self) {
        self.table.iter_mut().for_each(|s| *s = 0);
        self.count = 0;
        self.theta = THETA_MAX;
    }

    /// Returns `true` if no items have been retained.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Freezes the sketch into an immutable compact form (sorted hashes).
    pub fn compact(&self) -> super::CompactThetaSketch {
        super::CompactThetaSketch::from_read(self)
    }
}

impl ThetaRead for QuickSelectThetaSketch {
    fn theta(&self) -> u64 {
        self.theta
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn retained(&self) -> usize {
        self.count
    }

    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        Box::new(self.table.iter().copied().filter(|&v| v != 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::rse;

    #[test]
    fn rejects_out_of_range_lg_k() {
        assert!(QuickSelectThetaSketch::new(3, 0).is_err());
        assert!(QuickSelectThetaSketch::new(27, 0).is_err());
        assert!(QuickSelectThetaSketch::new(4, 0).is_ok());
    }

    #[test]
    fn with_k_requires_power_of_two() {
        assert!(QuickSelectThetaSketch::with_k(1000, 0).is_err());
        let s = QuickSelectThetaSketch::with_k(1024, 0).unwrap();
        assert_eq!(s.k(), 1024);
        assert_eq!(s.lg_k(), 10);
    }

    #[test]
    fn exact_mode_below_threshold() {
        let mut s = QuickSelectThetaSketch::new(8, 1).unwrap(); // k = 256
        for i in 0..200u64 {
            s.update(i);
        }
        assert!(!s.is_estimation_mode());
        assert_eq!(s.estimate(), 200.0);
    }

    #[test]
    fn duplicates_ignored() {
        let mut s = QuickSelectThetaSketch::new(8, 1).unwrap();
        for _ in 0..5 {
            for i in 0..100u64 {
                s.update(i);
            }
        }
        assert_eq!(s.estimate(), 100.0);
    }

    #[test]
    fn retained_between_k_and_2k_in_estimation_mode() {
        let mut s = QuickSelectThetaSketch::new(6, 1).unwrap(); // k = 64
        for i in 0..100_000u64 {
            s.update(i);
            if s.is_estimation_mode() {
                assert!(s.retained() >= s.k(), "retained {} < k", s.retained());
                assert!(s.retained() < 2 * s.k(), "retained {} ≥ 2k", s.retained());
            }
        }
    }

    #[test]
    fn all_retained_below_theta() {
        let mut s = QuickSelectThetaSketch::new(6, 3).unwrap();
        for i in 0..50_000u64 {
            s.update(i);
        }
        let theta = s.theta();
        assert!(s.hashes().all(|h| h < theta));
    }

    #[test]
    fn rebuild_keeps_exactly_k_smallest() {
        use crate::hash::Hashable;
        let lg_k = 5; // k = 32
        let seed = 77;
        let mut s = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        let n = 10_000u64;
        for i in 0..n {
            s.update(i);
        }
        s.trim();
        assert_eq!(s.retained(), s.k());
        // The retained set must be exactly the k smallest normalised
        // hashes of the stream.
        let mut all: Vec<u64> = (0..n)
            .map(|i| crate::theta::normalize_hash(i.hash_with_seed(seed)))
            .collect();
        all.sort_unstable();
        let mut got: Vec<u64> = s.hashes().collect();
        got.sort_unstable();
        assert_eq!(got, all[..s.k()].to_vec());
    }

    #[test]
    fn update_hashes_is_state_identical_to_scalar_updates() {
        use crate::hash::Hashable;
        // Feed the same hash stream one-at-a-time and in awkward batch
        // sizes (empty, singleton, bigger than the table slack, forcing
        // mid-batch rebuilds); Θ trajectory and retained set must agree
        // exactly at every batch boundary.
        let seed = 99;
        let hashes: Vec<u64> = (0..60_000u64)
            .map(|i| crate::theta::normalize_hash(i.hash_with_seed(seed)))
            .collect();
        let mut scalar = QuickSelectThetaSketch::new(6, seed).unwrap(); // k = 64
        let mut batched = QuickSelectThetaSketch::new(6, seed).unwrap();
        let sizes = [0usize, 1, 3, 16, 97, 500, 4096];
        let mut pos = 0usize;
        let mut size_idx = 0usize;
        while pos < hashes.len() {
            let take = sizes[size_idx % sizes.len()].min(hashes.len() - pos);
            size_idx += 1;
            let chunk = &hashes[pos..pos + take];
            pos += take;
            let mut scalar_retained = 0u64;
            for &h in chunk {
                if scalar.update_hash(h) {
                    scalar_retained += 1;
                }
            }
            let batch_retained = batched.update_hashes(chunk);
            assert_eq!(batch_retained, scalar_retained);
            assert_eq!(batched.theta(), scalar.theta(), "Θ diverged at {pos}");
            assert_eq!(batched.retained(), scalar.retained());
        }
        let mut a: Vec<u64> = scalar.hashes().collect();
        let mut b: Vec<u64> = batched.hashes().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "retained sets diverged");
    }

    #[test]
    fn estimate_within_rse_bounds() {
        let mut s = QuickSelectThetaSketch::new(12, 42).unwrap(); // k = 4096
        let n = 1_000_000u64;
        for i in 0..n {
            s.update(i);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * rse(4096), "relative error {rel}");
    }

    #[test]
    fn theta_monotonically_decreases() {
        let mut s = QuickSelectThetaSketch::new(5, 9).unwrap();
        let mut last = s.theta();
        for i in 0..20_000u64 {
            s.update(i);
            assert!(s.theta() <= last);
            last = s.theta();
        }
    }

    #[test]
    fn merge_equals_concatenation_estimate() {
        let seed = 11;
        let mut a = QuickSelectThetaSketch::new(9, seed).unwrap();
        let mut b = QuickSelectThetaSketch::new(9, seed).unwrap();
        let mut whole = QuickSelectThetaSketch::new(9, seed).unwrap();
        for i in 0..200_000u64 {
            whole.update(i);
            if i % 3 == 0 {
                a.update(i);
            } else {
                b.update(i);
            }
        }
        a.merge(&b).unwrap();
        let rel = (a.estimate() - 200_000.0).abs() / 200_000.0;
        assert!(rel < 5.0 * rse(512), "merged relative error {rel}");
        // Disjoint inputs: merged estimate should be close to whole-stream
        // estimate (not identical: Θ trajectories differ).
        let rel2 = (a.estimate() - whole.estimate()).abs() / whole.estimate();
        assert!(rel2 < 0.1, "merge vs whole diverged by {rel2}");
    }

    #[test]
    fn merge_seed_mismatch_rejected() {
        let mut a = QuickSelectThetaSketch::new(5, 1).unwrap();
        let b = QuickSelectThetaSketch::new(5, 2).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_overlapping_counts_once() {
        let seed = 4;
        let mut a = QuickSelectThetaSketch::new(10, seed).unwrap();
        let mut b = QuickSelectThetaSketch::new(10, seed).unwrap();
        for i in 0..60_000u64 {
            a.update(i);
        }
        for i in 30_000..90_000u64 {
            b.update(i);
        }
        a.merge(&b).unwrap();
        let est = a.estimate();
        let rel = (est - 90_000.0).abs() / 90_000.0;
        assert!(rel < 5.0 * rse(1024), "relative error {rel}");
    }

    #[test]
    fn clear_resets() {
        let mut s = QuickSelectThetaSketch::new(5, 1).unwrap();
        for i in 0..10_000u64 {
            s.update(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.theta(), THETA_MAX);
        assert_eq!(s.retained(), 0);
        assert_eq!(s.estimate(), 0.0);
        // Sketch is reusable after clear (stay below the k=32 sketch's
        // rebuild threshold to remain in exact mode).
        for i in 0..40u64 {
            s.update(i);
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn sampling_probability_validated() {
        assert!(QuickSelectThetaSketch::with_sampling(8, 1, 0.0).is_err());
        assert!(QuickSelectThetaSketch::with_sampling(8, 1, 1.5).is_err());
        assert!(QuickSelectThetaSketch::with_sampling(8, 1, 1.0).is_ok());
    }

    #[test]
    fn p_sampling_subsamples_immediately() {
        let mut s = QuickSelectThetaSketch::with_sampling(10, 3, 0.25).unwrap();
        assert!(s.is_estimation_mode(), "p < 1 starts in estimation mode");
        for i in 0..10_000u64 {
            s.update(i);
        }
        // Roughly a quarter retained pre-rebuild; the estimate stays
        // unbiased.
        let rel = (s.estimate() - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn p_sampling_estimate_unbiased_small_stream() {
        // Average over independent seeds: E[est] ≈ n even when n is far
        // below k (every update is subsampled at probability p).
        let n = 2_000u64;
        let trials = 200;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut s = QuickSelectThetaSketch::with_sampling(10, seed, 0.1).unwrap();
            for i in 0..n {
                s.update(i);
            }
            sum += s.estimate();
        }
        let mean = sum / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "mean estimate {mean} vs {n}");
    }

    #[test]
    fn kmv_and_quickselect_agree_on_large_streams() {
        let seed = 21;
        let n = 300_000u64;
        let mut kmv = crate::theta::KmvThetaSketch::new(1024, seed).unwrap();
        let mut qs = QuickSelectThetaSketch::new(10, seed).unwrap();
        for i in 0..n {
            kmv.update(i);
            qs.update(i);
        }
        let (ek, eq) = (kmv.estimate(), qs.estimate());
        let rel = (ek - eq).abs() / n as f64;
        assert!(rel < 0.1, "KMV {ek} vs QS {eq}");
    }
}
