//! Immutable, sorted Θ sketch images.
//!
//! A compact sketch is the frozen form of any updatable Θ sketch: a sorted
//! array of retained hashes plus Θ and the seed. It is the natural result
//! type of set operations, the snapshot type of the concurrent framework's
//! query path, and the unit of (de)serialisation.

use super::{ThetaRead, THETA_MAX};
use crate::error::{Result, SketchError};
use crate::wire::{WireDecode, WireEncode};
use bytes::Bytes;

/// An immutable Θ sketch: sorted retained hashes, Θ, and the hash seed.
///
/// # Examples
///
/// ```
/// use fcds_sketches::theta::{QuickSelectThetaSketch, ThetaRead};
///
/// let mut s = QuickSelectThetaSketch::new(8, 9001).unwrap();
/// for i in 0..10_000u64 { s.update(i); }
/// let c = s.compact();
/// assert_eq!(c.seed(), 9001);
/// assert!((c.estimate() - s.estimate()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactThetaSketch {
    theta: u64,
    seed: u64,
    /// Retained hashes, strictly ascending, all `< theta`.
    hashes: Vec<u64>,
}

impl CompactThetaSketch {
    /// Freezes any readable Θ sketch into compact form.
    pub fn from_read<S: ThetaRead + ?Sized>(src: &S) -> Self {
        let mut hashes: Vec<u64> = src.hashes().collect();
        hashes.sort_unstable();
        hashes.dedup();
        CompactThetaSketch {
            theta: src.theta(),
            seed: src.seed(),
            hashes,
        }
    }

    /// Builds a compact sketch from raw parts. Hashes are sorted and
    /// deduplicated; entries `>= theta` are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if any hash is `0` or
    /// `>= theta`.
    pub fn from_parts(theta: u64, seed: u64, mut hashes: Vec<u64>) -> Result<Self> {
        hashes.sort_unstable();
        hashes.dedup();
        if hashes.contains(&0) {
            return Err(SketchError::invalid("hashes", "hash 0 is reserved"));
        }
        if let Some(&max) = hashes.last() {
            if max >= theta {
                return Err(SketchError::invalid(
                    "hashes",
                    format!("hash {max} not below theta {theta}"),
                ));
            }
        }
        Ok(CompactThetaSketch {
            theta,
            seed,
            hashes,
        })
    }

    /// The empty compact sketch.
    pub fn empty(seed: u64) -> Self {
        CompactThetaSketch {
            theta: THETA_MAX,
            seed,
            hashes: Vec::new(),
        }
    }

    /// The sorted retained hashes.
    pub fn sorted_hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Serialises into the unified wire format (Θ family). Alias of
    /// [`WireEncode::to_wire_bytes`] — see [`crate::wire`] for the
    /// envelope and payload layout.
    pub fn to_bytes(&self) -> Bytes {
        self.to_wire_bytes()
    }

    /// Deserialises a sketch produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns the [`crate::wire::WireDecode`] failure folded into
    /// [`SketchError`]: [`SketchError::Corrupt`] on bad magic, version,
    /// truncation, or invariant violations (unsorted or out-of-range
    /// hashes). Callers that need the precise corruption class should use
    /// [`WireDecode::from_wire_bytes`] directly.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(data)?)
    }

    /// Membership test in the retained set (binary search).
    pub fn contains_hash(&self, hash: u64) -> bool {
        self.hashes.binary_search(&hash).is_ok()
    }
}

impl ThetaRead for CompactThetaSketch {
    fn theta(&self) -> u64 {
        self.theta
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn retained(&self) -> usize {
        self.hashes.len()
    }

    fn hashes(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        Box::new(self.hashes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::{KmvThetaSketch, QuickSelectThetaSketch};

    fn sample_sketch() -> CompactThetaSketch {
        let mut s = QuickSelectThetaSketch::new(6, 9001).unwrap();
        for i in 0..25_000u64 {
            s.update(i);
        }
        s.compact()
    }

    #[test]
    fn compact_preserves_estimate_of_quickselect() {
        let mut s = QuickSelectThetaSketch::new(7, 1).unwrap();
        for i in 0..40_000u64 {
            s.update(i);
        }
        let c = s.compact();
        assert_eq!(c.retained(), s.retained());
        assert_eq!(c.theta(), s.theta());
        assert!((c.estimate() - s.estimate()).abs() < 1e-9);
    }

    #[test]
    fn compact_hashes_sorted_and_below_theta() {
        let c = sample_sketch();
        let h = c.sorted_hashes();
        assert!(h.windows(2).all(|w| w[0] < w[1]));
        assert!(h.iter().all(|&x| x < c.theta()));
    }

    #[test]
    fn kmv_compact_differs_only_in_estimator() {
        // KMV's (k−1)/Θ vs compact's retained/Θ: both within a whisker.
        let mut s = KmvThetaSketch::new(512, 1).unwrap();
        for i in 0..100_000u64 {
            s.update(i);
        }
        let c = s.compact();
        let rel = (c.estimate() - s.estimate()).abs() / s.estimate();
        assert!(rel < 0.01, "estimator families diverged by {rel}");
    }

    #[test]
    fn round_trip_serialisation() {
        let c = sample_sketch();
        let bytes = c.to_bytes();
        let back = CompactThetaSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_round_trip() {
        let c = CompactThetaSketch::empty(9001);
        let back = CompactThetaSketch::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.estimate(), 0.0);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut bytes = sample_sketch().to_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            CompactThetaSketch::from_bytes(&bytes),
            Err(SketchError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample_sketch().to_bytes();
        assert!(CompactThetaSketch::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        assert!(CompactThetaSketch::from_bytes(&bytes[..16]).is_err());
    }

    #[test]
    fn unsorted_payload_rejected() {
        let c = sample_sketch();
        let mut bytes = c.to_bytes().to_vec();
        // Swap the first two 8-byte hash entries: the payload starts at
        // 16 (header) with seed/theta/count, so hashes begin at 40.
        for i in 0..8 {
            bytes.swap(40 + i, 48 + i);
        }
        assert!(CompactThetaSketch::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_parts_validates() {
        assert!(CompactThetaSketch::from_parts(100, 0, vec![1, 2, 3]).is_ok());
        assert!(CompactThetaSketch::from_parts(100, 0, vec![0, 2]).is_err());
        assert!(CompactThetaSketch::from_parts(100, 0, vec![1, 100]).is_err());
        // Duplicates are silently removed.
        let c = CompactThetaSketch::from_parts(100, 0, vec![5, 5, 7]).unwrap();
        assert_eq!(c.retained(), 2);
    }

    #[test]
    fn contains_hash_works() {
        let c = CompactThetaSketch::from_parts(1000, 0, vec![10, 20, 30]).unwrap();
        assert!(c.contains_hash(20));
        assert!(!c.contains_hash(25));
    }
}
