//! The de-randomisation oracle of §4.
//!
//! Sketches are randomised objects and therefore have no sequential
//! specification to relax. The paper resolves this by "capturing their
//! randomness in an external oracle; given the oracle's output, the
//! sketches behave deterministically" (§4). Concretely:
//!
//! * the Θ sketch draws its **hash seed** from the oracle at `init` time
//!   (the seed selects the hash function, i.e., all "coin flips" at once);
//! * the Quantiles sketch draws **one coin flip per compaction** to choose
//!   between keeping the even- or odd-indexed survivors.
//!
//! Fixing the oracle yields the deterministic object whose sequential
//! histories form `SeqSketch`, the specification that Definition 2's
//! r-relaxation and the checker in `fcds-relaxation` are defined against.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Source of all randomness a sketch consumes.
///
/// Implementations must be deterministic functions of their construction
/// parameters so that replaying an oracle replays the sketch behaviour
/// exactly — this is what turns a randomised sketch into a deterministic
/// object with a sequential specification (§4).
pub trait Oracle: Send + Sync {
    /// Draws the hash-function seed (used once, at sketch initialisation).
    fn hash_seed(&mut self) -> u64;

    /// Draws one fair coin flip.
    fn flip(&mut self) -> bool;
}

/// A pseudo-random oracle seeded explicitly: deterministic given its seed,
/// which is exactly the de-randomisation device the paper's model needs.
///
/// # Examples
///
/// ```
/// use fcds_sketches::oracle::{DeterministicOracle, Oracle};
///
/// let mut a = DeterministicOracle::new(7);
/// let mut b = DeterministicOracle::new(7);
/// assert_eq!(a.hash_seed(), b.hash_seed());
/// assert_eq!(a.flip(), b.flip());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicOracle {
    rng: SmallRng,
}

impl DeterministicOracle {
    /// Creates an oracle whose entire output stream is a function of
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        DeterministicOracle {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Oracle for DeterministicOracle {
    fn hash_seed(&mut self) -> u64 {
        self.rng.random()
    }

    fn flip(&mut self) -> bool {
        self.rng.random()
    }
}

/// An oracle backed by the operating system's entropy source; used in
/// production where de-randomisation is not needed.
#[derive(Debug)]
pub struct EntropyOracle {
    rng: SmallRng,
}

impl EntropyOracle {
    /// Creates an oracle seeded from OS entropy.
    pub fn new() -> Self {
        EntropyOracle {
            rng: SmallRng::from_os_rng(),
        }
    }
}

impl Default for EntropyOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle for EntropyOracle {
    fn hash_seed(&mut self) -> u64 {
        self.rng.random()
    }

    fn flip(&mut self) -> bool {
        self.rng.random()
    }
}

/// An oracle that replays a pre-recorded script of outputs. Used by the
/// relaxation checker and by tests that need full control over every coin.
///
/// When the script runs out the oracle falls back to a deterministic PRNG
/// (so tests may script only the prefix they care about).
#[derive(Debug, Clone)]
pub struct ScriptedOracle {
    seeds: VecDeque<u64>,
    coins: VecDeque<bool>,
    fallback: SmallRng,
}

impl ScriptedOracle {
    /// Creates a scripted oracle from explicit seed and coin sequences.
    pub fn new(seeds: impl Into<VecDeque<u64>>, coins: impl Into<VecDeque<bool>>) -> Self {
        ScriptedOracle {
            seeds: seeds.into(),
            coins: coins.into(),
            fallback: SmallRng::seed_from_u64(0xFCD5),
        }
    }

    /// Number of scripted coins not yet consumed.
    pub fn coins_remaining(&self) -> usize {
        self.coins.len()
    }
}

impl Oracle for ScriptedOracle {
    fn hash_seed(&mut self) -> u64 {
        self.seeds
            .pop_front()
            .unwrap_or_else(|| self.fallback.random())
    }

    fn flip(&mut self) -> bool {
        self.coins
            .pop_front()
            .unwrap_or_else(|| self.fallback.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_oracle_replays() {
        let mut a = DeterministicOracle::new(123);
        let mut b = DeterministicOracle::new(123);
        let fa: Vec<bool> = (0..64).map(|_| a.flip()).collect();
        let fb: Vec<bool> = (0..64).map(|_| b.flip()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicOracle::new(1);
        let mut b = DeterministicOracle::new(2);
        let fa: Vec<bool> = (0..64).map(|_| a.flip()).collect();
        let fb: Vec<bool> = (0..64).map(|_| b.flip()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn scripted_oracle_replays_script_then_falls_back() {
        let mut o = ScriptedOracle::new(vec![42u64], vec![true, false, true]);
        assert_eq!(o.hash_seed(), 42);
        assert!(o.flip());
        assert!(!o.flip());
        assert!(o.flip());
        assert_eq!(o.coins_remaining(), 0);
        // Fallback keeps producing coins without panicking.
        let _ = o.flip();
    }

    #[test]
    fn coins_are_roughly_fair() {
        let mut o = DeterministicOracle::new(7);
        let heads = (0..10_000).filter(|_| o.flip()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn entropy_oracle_is_usable() {
        let mut o = EntropyOracle::new();
        let _ = o.hash_seed();
        let _ = o.flip();
    }
}
