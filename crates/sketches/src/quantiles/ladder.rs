//! Persistent (copy-on-write) snapshots of the Quantiles level ladder.
//!
//! The concurrent engine publishes a point-in-time image of its Quantiles
//! sketch on the propagation path, once per merge. Rebuilding the flat
//! sorted reader there costs O(retained · log retained) per merge, which
//! breaks the paper's O(b)-amortised propagation bound exactly the way
//! the pre-block Θ image copy did. [`QuantilesLadder`] removes that cost:
//! the sketch keeps every compaction level as an immutable `Arc`'d sorted
//! run, so taking a ladder snapshot is one `Arc` clone per level plus a
//! sort of the (≤ 2k, parameter-bounded) base buffer — independent of how
//! many levels the stream has accumulated. The expensive flattening into
//! a [`QuantilesReader`](super::QuantilesReader) moves to the query side,
//! where the engine memoises it per publication version: it runs once per
//! *republication observed by a query*, not once per merge.
//!
//! Queries can also run directly on a ladder: a k-way heap merge walks
//! the per-level runs in item order, weighting each run by its level
//! (`2^(level+1)`, base weight 1).

use super::sketch::{quantile_from_weighted, QuantilesReader};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One immutable sorted run of the ladder: `items` all carry `weight`.
#[derive(Debug, Clone)]
struct LadderRun<T> {
    items: Arc<Vec<T>>,
    weight: u64,
}

/// An immutable point-in-time snapshot of a Quantiles sketch's level
/// ladder: one sorted weight-1 run for the base buffer plus one sorted
/// run per non-empty compaction level (weight `2^(level+1)`).
///
/// Cheap to take (`Arc` clone per level — the runs are shared with the
/// sketch, copy-on-write) and cheap to clone; later sketch mutations
/// replace whole runs and are never observed by an outstanding ladder.
///
/// # Examples
///
/// ```
/// use fcds_sketches::quantiles::QuantilesSketch;
///
/// let mut q = QuantilesSketch::<u64>::with_seed(64, 1).unwrap();
/// for i in 0..100_000u64 {
///     q.update(i);
/// }
/// let ladder = q.ladder(); // O(levels), not O(retained·log retained)
/// let median = ladder.quantile(0.5).unwrap();
/// assert!((median as f64 - 50_000.0).abs() < 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct QuantilesLadder<T: Ord + Clone> {
    /// Non-empty sorted runs. Snapshots of one sketch hold them in
    /// ascending weight (base first); ladders produced by
    /// [`Self::concat`] may interleave weights — no query depends on
    /// run order.
    runs: Vec<LadderRun<T>>,
    n: u64,
    min_item: Option<T>,
    max_item: Option<T>,
}

impl<T: Ord + Clone> Default for QuantilesLadder<T> {
    fn default() -> Self {
        QuantilesLadder {
            runs: Vec::new(),
            n: 0,
            min_item: None,
            max_item: None,
        }
    }
}

impl<T: Ord + Clone> QuantilesLadder<T> {
    /// The empty ladder (summarises the empty stream).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Assembles a ladder from its parts (crate-internal; the sketch is
    /// the only producer). `base` must be sorted; `levels[i]` holds the
    /// (sorted) level-`i` run, empty levels skipped by the caller passing
    /// an empty `Vec` behind the `Arc`.
    pub(crate) fn from_parts(
        base: Vec<T>,
        levels: &[Arc<Vec<T>>],
        n: u64,
        min_item: Option<T>,
        max_item: Option<T>,
    ) -> Self {
        debug_assert!(base.windows(2).all(|w| w[0] <= w[1]), "base must be sorted");
        let mut runs = Vec::with_capacity(levels.len() + 1);
        if !base.is_empty() {
            runs.push(LadderRun {
                items: Arc::new(base),
                weight: 1,
            });
        }
        for (level, items) in levels.iter().enumerate() {
            if !items.is_empty() {
                runs.push(LadderRun {
                    items: Arc::clone(items),
                    weight: 1u64 << (level + 1),
                });
            }
        }
        QuantilesLadder {
            runs,
            n,
            min_item,
            max_item,
        }
    }

    /// Rebuilds a ladder from decoded wire runs (crate-internal; the
    /// wire codec has already validated per-run sortedness and the
    /// weight invariant `Σ len·weight = n`).
    pub(crate) fn from_wire_runs(
        runs: Vec<(Vec<T>, u64)>,
        n: u64,
        min_item: Option<T>,
        max_item: Option<T>,
    ) -> Self {
        QuantilesLadder {
            runs: runs
                .into_iter()
                .map(|(items, weight)| LadderRun {
                    items: Arc::new(items),
                    weight,
                })
                .collect(),
            n,
            min_item,
            max_item,
        }
    }

    /// Iterates the sorted runs as `(items, weight)` pairs in stored
    /// order (crate-internal; the wire codec is the only consumer).
    pub(crate) fn wire_runs(&self) -> impl Iterator<Item = (&[T], u64)> {
        self.runs.iter().map(|r| (r.items.as_slice(), r.weight))
    }

    /// Merges another ladder into this one by run-list concatenation:
    /// `O(runs)` `Arc` clones, no item is touched. The combined ladder
    /// summarises the concatenation of both streams — the k-way merge
    /// over runs happens lazily at query time, exactly as it does for a
    /// single sketch's ladder. This is the Quantiles merge of the
    /// wire tier ([`crate::wire::WireMerge`]).
    pub fn concat(&mut self, other: &Self) {
        self.runs.extend(other.runs.iter().cloned());
        self.n += other.n;
        if let Some(om) = &other.min_item {
            if self.min_item.as_ref().is_none_or(|m| om < m) {
                self.min_item = Some(om.clone());
            }
        }
        if let Some(om) = &other.max_item {
            if self.max_item.as_ref().is_none_or(|m| om > m) {
                self.max_item = Some(om.clone());
            }
        }
    }

    /// Total stream length this snapshot summarises.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of sorted runs (non-empty levels plus the base run).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of retained samples across all runs.
    pub fn retained(&self) -> usize {
        self.runs.iter().map(|r| r.items.len()).sum()
    }

    /// The exact minimum item of the summarised stream, if any.
    pub fn min_item(&self) -> Option<&T> {
        self.min_item.as_ref()
    }

    /// The exact maximum item of the summarised stream, if any.
    pub fn max_item(&self) -> Option<&T> {
        self.max_item.as_ref()
    }

    /// Iterates the retained `(item, weight)` pairs in item order by
    /// heap-merging the per-level runs — O(retained · log run_count)
    /// for a full walk, no allocation proportional to `retained`.
    pub fn iter_weighted(&self) -> WeightedMerge<'_, T> {
        WeightedMerge::new(std::iter::once(self))
    }

    /// Flattens into the classic sorted reader. O(retained · log
    /// run_count) — cheaper than re-sorting from scratch, but still the
    /// cost the engine memoises away from the per-merge path.
    pub fn flatten(&self) -> QuantilesReader<T> {
        QuantilesReader::from_ladders([self])
    }

    /// Returns an element whose rank approximates `phi·n` (φ ∈ [0, 1]);
    /// `None` on an empty snapshot. `phi = 0` returns the exact minimum
    /// and `phi = 1` the exact maximum. Same selection rule as
    /// [`QuantilesReader::quantile`], over the heap merge instead of the
    /// flat vector.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        quantile_from_weighted(
            self.iter_weighted(),
            self.n,
            self.min_item.as_ref(),
            self.max_item.as_ref(),
            phi,
        )
    }

    /// The approximate normalised rank of `item`: the fraction of stream
    /// elements strictly smaller than it. Sums per-run prefix weights via
    /// binary search — O(run_count · log k), no merge walk.
    pub fn rank(&self, item: &T) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let below: u64 = self
            .runs
            .iter()
            .map(|r| r.items.partition_point(|v| v < item) as u64 * r.weight)
            .sum();
        below as f64 / self.n as f64
    }
}

/// A heap-based k-way merge over the sorted runs of one or more ladders,
/// yielding `(item, weight)` in item order (ties broken arbitrarily but
/// deterministically).
#[derive(Debug)]
pub struct WeightedMerge<'a, T: Ord> {
    /// Min-heap keyed on `(item, run_id, position)`.
    heap: BinaryHeap<Reverse<MergeCursor<'a, T>>>,
}

#[derive(Debug)]
struct MergeCursor<'a, T> {
    item: &'a T,
    /// Run identity for deterministic tie-breaks.
    run: usize,
    pos: usize,
    items: &'a [T],
    weight: u64,
}

impl<T: Ord> PartialEq for MergeCursor<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<T: Ord> Eq for MergeCursor<'_, T> {}

impl<T: Ord> PartialOrd for MergeCursor<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for MergeCursor<'_, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.item
            .cmp(other.item)
            .then(self.run.cmp(&other.run))
            .then(self.pos.cmp(&other.pos))
    }
}

impl<'a, T: Ord + Clone> WeightedMerge<'a, T> {
    pub(crate) fn new(ladders: impl IntoIterator<Item = &'a QuantilesLadder<T>>) -> Self {
        let mut heap = BinaryHeap::new();
        let mut run_id = 0usize;
        for ladder in ladders {
            for run in &ladder.runs {
                if let Some(first) = run.items.first() {
                    heap.push(Reverse(MergeCursor {
                        item: first,
                        run: run_id,
                        pos: 0,
                        items: &run.items,
                        weight: run.weight,
                    }));
                }
                run_id += 1;
            }
        }
        WeightedMerge { heap }
    }
}

impl<'a, T: Ord + Clone> Iterator for WeightedMerge<'a, T> {
    type Item = (&'a T, u64);

    fn next(&mut self) -> Option<(&'a T, u64)> {
        let Reverse(cursor) = self.heap.pop()?;
        let out = (cursor.item, cursor.weight);
        let next_pos = cursor.pos + 1;
        if let Some(next) = cursor.items.get(next_pos) {
            self.heap.push(Reverse(MergeCursor {
                item: next,
                run: cursor.run,
                pos: next_pos,
                items: cursor.items,
                weight: cursor.weight,
            }));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::quantiles::{epsilon_for_k, QuantilesLadder, QuantilesReader, QuantilesSketch};
    use std::sync::Arc;

    fn filled(k: usize, seed: u64, n: u64) -> QuantilesSketch<u64> {
        let mut q = QuantilesSketch::with_seed(k, seed).unwrap();
        for i in 0..n {
            q.update(i);
        }
        q
    }

    #[test]
    fn ladder_agrees_with_flat_reader() {
        // The ladder and the full-rebuild reader are two views of the
        // same retained multiset: identical n, identical answers.
        for n in [0u64, 1, 100, 255, 256, 10_000, 123_457] {
            let q = filled(64, 5, n);
            let ladder = q.ladder();
            let reader = q.reader();
            assert_eq!(ladder.n(), reader.n());
            assert_eq!(
                ladder.retained() as u64,
                ladder.iter_weighted().count() as u64
            );
            for phi in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
                assert_eq!(
                    ladder.quantile(phi),
                    reader.quantile(phi),
                    "n={n} phi={phi}"
                );
            }
            if n > 0 {
                for probe in [0, n / 3, n / 2, n - 1, n + 7] {
                    assert_eq!(
                        ladder.rank(&probe),
                        reader.rank(&probe),
                        "n={n} probe={probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn flatten_equals_full_rebuild() {
        let q = filled(32, 9, 50_000);
        let flat = q.ladder().flatten();
        let rebuilt = q.reader();
        assert_eq!(flat.n(), rebuilt.n());
        for phi in [0.0, 0.2, 0.5, 0.8, 1.0] {
            assert_eq!(flat.quantile(phi), rebuilt.quantile(phi));
        }
        for probe in [0u64, 10_000, 49_999] {
            assert_eq!(flat.rank(&probe), rebuilt.rank(&probe));
        }
    }

    #[test]
    fn iter_weighted_is_sorted_and_carries_total_weight() {
        let q = filled(16, 3, 37_123);
        let ladder = q.ladder();
        let merged: Vec<(u64, u64)> = ladder.iter_weighted().map(|(v, w)| (*v, w)).collect();
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0), "not sorted");
        let total: u64 = merged.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 37_123);
    }

    #[test]
    fn ladder_is_immutable_under_later_updates() {
        let mut q = filled(32, 1, 10_000);
        let ladder = q.ladder();
        let before = ladder.quantile(0.5);
        for i in 10_000..200_000u64 {
            q.update(i);
        }
        // The snapshot still summarises the first 10k items only.
        assert_eq!(ladder.n(), 10_000);
        assert_eq!(ladder.quantile(0.5), before);
        assert_eq!(ladder.max_item(), Some(&9_999));
        assert_eq!(q.ladder().n(), 200_000);
    }

    #[test]
    fn snapshot_shares_level_runs() {
        // Taking a ladder is O(levels) Arc clones: a second snapshot of
        // an unchanged sketch shares every level allocation.
        let q = filled(32, 2, 100_000);
        let a = q.ladder();
        let b = q.ladder();
        assert!(a.run_count() >= 3, "stream should span several levels");
        // Base runs (weight 1) are rebuilt per snapshot; all level runs
        // must be pointer-identical.
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.weight, rb.weight);
            if ra.weight > 1 {
                assert!(Arc::ptr_eq(&ra.items, &rb.items), "level run was copied");
            }
        }
    }

    #[test]
    fn merged_ladders_summarise_concatenated_stream() {
        let k = 64;
        let mut ladders = Vec::new();
        for shard in 0..4u64 {
            let mut q = QuantilesSketch::<u64>::with_seed(k, shard).unwrap();
            for i in (shard..200_000).step_by(4) {
                q.update(i);
            }
            ladders.push(q.ladder());
        }
        let merged = QuantilesReader::from_ladders(ladders.iter());
        assert_eq!(merged.n(), 200_000);
        assert_eq!(merged.quantile(0.0), Some(0));
        assert_eq!(merged.quantile(1.0), Some(199_999));
        let eps = epsilon_for_k(k);
        for phi in [0.25, 0.5, 0.75] {
            let v = merged.quantile(phi).unwrap() as f64 / 200_000.0;
            assert!((v - phi).abs() <= 4.0 * eps, "phi={phi} got rank {v}");
        }
    }

    #[test]
    fn empty_ladder_queries() {
        let ladder = QuantilesLadder::<u64>::empty();
        assert!(ladder.is_empty());
        assert_eq!(ladder.quantile(0.5), None);
        assert_eq!(ladder.rank(&5), 0.0);
        assert_eq!(ladder.run_count(), 0);
        assert_eq!(ladder.iter_weighted().count(), 0);
        let flat = ladder.flatten();
        assert!(flat.is_empty());
    }

    #[test]
    fn rank_error_within_epsilon_through_the_ladder() {
        let k = 128;
        let n = 200_000u64;
        let ladder = filled(k, 7, n).ladder();
        let eps = epsilon_for_k(k);
        for phi in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let v = ladder.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64;
            assert!(
                (true_rank - phi).abs() <= 3.0 * eps,
                "phi={phi} got rank {true_rank}"
            );
        }
    }
}
