//! The mergeable Quantiles sketch of Agarwal et al. (PODS 2012) — the
//! paper's second instantiation (§6.2).
//!
//! The sketch approximates rank queries: a query for quantile φ over a
//! stream of `n` elements returns an element whose rank is within
//! `(φ ± ε)·n` with probability at least `1 − δ` (a PAC guarantee, §3).
//! The paper proves that an r-relaxation of such a sketch returns an
//! element whose rank is within `(φ ± ε_r)·n`, where
//! `ε_r = ε − rε/n + r/n` (§6.2) — so the relaxation penalty vanishes as
//! the stream grows.
//!
//! ## Structure
//!
//! The classic mergeable design: a *base buffer* of `2k` incoming items
//! plus a ladder of *levels*, each either empty or holding `k` sorted
//! items with weight `2^level`. When the base buffer fills it is sorted
//! and *compacted* — every other item survives, the parity chosen by a
//! coin flip from the [oracle](crate::oracle) — and the `k` survivors
//! carry-propagate up the ladder exactly like binary addition. The coin
//! flips are the randomness that §4's de-randomisation oracle captures
//! ("In the Quantiles sketch, a coin flip is provided with every update").
//!
//! The levels are stored as immutable `Arc`'d runs, so
//! [`QuantilesSketch::ladder`] yields a persistent copy-on-write
//! [`QuantilesLadder`] snapshot in O(levels) — the publication primitive
//! the concurrent engine uses on its propagation path.

mod ladder;
mod sketch;
mod wire;

pub use ladder::{QuantilesLadder, WeightedMerge};
pub use sketch::{QuantilesReader, QuantilesSketch};
pub use wire::WireItem;

/// Total-order wrapper for `f64` keys (quantile sketches need `Ord`).
///
/// Ordering follows `f64::total_cmp`, so NaNs are ordered after +∞ rather
/// than poisoning comparisons.
///
/// # Examples
///
/// ```
/// use fcds_sketches::quantiles::TotalF64;
///
/// let mut v = vec![TotalF64(2.0), TotalF64(1.0)];
/// v.sort();
/// assert_eq!(v[0].0, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

impl From<TotalF64> for f64 {
    fn from(v: TotalF64) -> Self {
        v.0
    }
}

/// Empirical normalised-rank-error bound ε for a classic Quantiles sketch
/// with parameter `k` (single-rank queries).
///
/// This is the DataSketches empirical fit (`~1.76/k^0.93`); e.g. k = 128
/// gives ε ≈ 1.93%. It is an approximation adequate for sizing buffers
/// and for the adaptation-point computation of §5.3, not a proven bound.
pub fn epsilon_for_k(k: usize) -> f64 {
    assert!(k >= 2, "k must be ≥ 2");
    1.76 / (k as f64).powf(0.93)
}

/// Smallest `k` (rounded up to a power of two) whose [`epsilon_for_k`]
/// does not exceed `eps`.
pub fn k_for_epsilon(eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    let raw = (1.76 / eps).powf(1.0 / 0.93);
    (raw.ceil() as usize).next_power_of_two().max(2)
}

/// The relaxed error bound of §6.2: an r-relaxed PAC quantiles sketch
/// answers with rank error at most `ε_r = ε − rε/n + r/n` (with the same
/// failure probability δ).
///
/// As `n → ∞` this tends to ε: the relaxation penalty is transient.
pub fn relaxed_epsilon(eps: f64, r: u64, n: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let (r, n) = (r as f64, n as f64);
    eps - r * eps / n + r / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_f64_orders_nan_last() {
        let mut v = [TotalF64(f64::NAN), TotalF64(1.0), TotalF64(f64::INFINITY)];
        v.sort();
        assert_eq!(v[0].0, 1.0);
        assert!(v[1].0.is_infinite());
        assert!(v[2].0.is_nan());
    }

    #[test]
    fn total_f64_round_trips() {
        let x: TotalF64 = 3.5.into();
        let y: f64 = x.into();
        assert_eq!(y, 3.5);
    }

    #[test]
    fn epsilon_decreases_with_k() {
        assert!(epsilon_for_k(256) < epsilon_for_k(128));
        assert!(epsilon_for_k(128) < epsilon_for_k(64));
    }

    #[test]
    fn epsilon_k128_near_two_percent() {
        let e = epsilon_for_k(128);
        assert!(e > 0.01 && e < 0.03, "eps(128) = {e}");
    }

    #[test]
    fn k_for_epsilon_inverts() {
        for &eps in &[0.05, 0.02, 0.01, 0.005] {
            let k = k_for_epsilon(eps);
            assert!(epsilon_for_k(k) <= eps, "k={k} eps={}", epsilon_for_k(k));
            assert!(k.is_power_of_two());
        }
    }

    #[test]
    fn relaxed_epsilon_limits() {
        let eps = 0.01;
        // Tiny stream: dominated by r/n.
        assert!(relaxed_epsilon(eps, 64, 128) > 0.5 * (64.0 / 128.0));
        // Huge stream: tends to eps.
        let big = relaxed_epsilon(eps, 64, 100_000_000);
        assert!((big - eps).abs() < 1e-5);
        // Empty stream degenerates to 1.
        assert_eq!(relaxed_epsilon(eps, 8, 0), 1.0);
    }

    #[test]
    fn relaxed_epsilon_monotone_in_r() {
        let eps = 0.02;
        let n = 10_000;
        assert!(relaxed_epsilon(eps, 0, n) <= relaxed_epsilon(eps, 10, n));
        assert!(relaxed_epsilon(eps, 10, n) <= relaxed_epsilon(eps, 100, n));
    }
}
